"""Figure 14: the performance matrix of a healthy run.

CG with 128 processes: the computation matrix shows near-best performance
everywhere — scattered light dots from background noise are fine, but no
durable white block.  The matrix is exported as PGM/CSV the way the
tool's visualizer would render it.
"""

import numpy as np

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig
from repro.viz import ascii_heatmap, matrix_to_csv, summarize_matrix, write_pgm
from repro.workloads import get_workload

N_RANKS = 128


def test_fig14_healthy_matrix(benchmark, out_dir):
    source = get_workload("CG").source(scale=2)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=16)

    run = once(
        benchmark,
        lambda: run_vsensor(source, machine, window_us=20_000, batch_period_us=20_000),
    )

    comp = run.report.matrices[SensorType.COMPUTATION]
    stats = summarize_matrix(comp)
    print(f"\nFig. 14 — CG {N_RANKS} ranks, healthy run, {run.sim.total_time / 1e6:.2f}s")
    print(ascii_heatmap(comp, max_rows=32, max_cols=70))
    print(
        f"cells={stats['cells']} mean_perf={stats['mean']:.3f} "
        f"min_perf={stats['min']:.3f} low_fraction={stats['low_fraction']:.2%}"
    )

    write_pgm(comp, f"{out_dir}/fig14_matrix.pgm")
    matrix_to_csv(comp, f"{out_dir}/fig14_matrix.csv", window_us=20_000)

    assert comp.shape[0] == N_RANKS
    assert stats["mean"] > 0.9, "healthy run must look healthy overall"
    assert stats["low_fraction"] < 0.05, "at most scattered low dots"
    # No *durable* variance region (big connected block).
    big_regions = [
        r
        for r in run.report.regions
        if r.sensor_type is SensorType.COMPUTATION and r.cells >= 8
    ]
    assert big_regions == []
