"""Figures 15-17: sense coverage, duration and interval distributions.

For each workload analogue this collects every sense (one Tick..Tock
execution) on rank 0 and buckets durations (Fig. 16) and the gaps between
consecutive senses (Fig. 17) into the paper's bins.

Shapes: most senses are short (fine-grained snippets — hence the need for
slice aggregation); for most programs no interval exceeds 1 s, so variance
longer than a second cannot be missed; AMG is the outlier with sparse
sensing.
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.sim import MachineConfig
from repro.sim.hooks import RawRecorder
from repro.viz.figures import (
    duration_histogram,
    interval_histogram,
    intervals_between_senses,
    sense_stats,
)
from repro.workloads import all_workloads

PROGRAMS = ["BT", "CG", "FT", "LU", "SP", "AMG", "LULESH", "RAXML"]
N_RANKS = 16


def collect(name):
    source = all_workloads()[name].source(scale=2)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)
    recorder = RawRecorder(ranks={0})
    run = run_vsensor(source, machine, extra_hooks=[recorder])
    starts = np.array([t0 for _r, _s, t0, _t1, _i in recorder.records])
    ends = np.array([t1 for _r, _s, _t0, t1, _i in recorder.records])
    return run, starts, ends


@pytest.mark.parametrize("name", PROGRAMS)
def test_fig16_17_row(benchmark, name):
    run, starts, ends = once(benchmark, lambda: collect(name))

    durations = ends - starts
    gaps = intervals_between_senses(starts, ends)
    stats = sense_stats(starts, ends, run.sim.total_time)

    dur_hist = duration_histogram(durations)
    gap_hist = interval_histogram(gaps)
    print(
        f"\nFig. 16/17 [{name:7s}] senses={stats.sense_count:5d} "
        f"coverage={stats.coverage:7.2%} freq={stats.frequency_mhz:.4f}MHz"
    )
    print(f"  durations: {dur_hist}")
    print(f"  intervals: {gap_hist}")

    assert stats.sense_count > 0
    # Fig. 16 shape: no sense lasts longer than 1 s.
    assert dur_hist[">1s"] == 0
    # Fig. 17 shape: intervals never exceed 1 s at this scale — variance
    # longer than a second cannot slip between senses.
    assert gap_hist[">1s"] == 0


def test_fig16_17_cross_program_shapes():
    coverages = {}
    short_fractions = {}
    for name in ["CG", "AMG", "BT"]:
        run, starts, ends = collect(name)
        stats = sense_stats(starts, ends, run.sim.total_time)
        coverages[name] = stats.coverage
        durations = ends - starts
        short_fractions[name] = float((durations < 10_000).mean())
    print(f"\ncoverage by program: { {k: f'{v:.1%}' for k, v in coverages.items()} }")
    # AMG senses the least (adaptive refinement).
    assert coverages["AMG"] == min(coverages.values())
    # The bulk of senses are fine-grained (well under 10 ms).
    assert all(f > 0.5 for f in short_fractions.values())
