"""IO-component case study (extension beyond the paper's two cases).

The paper defines three sensor components — Computation, Network, IO —
but only demonstrates the first two in Section 6.  This bench completes
the triple: a checkpointing stencil (CHKPT analogue) hit by a shared-
filesystem slowdown mid-run.  Shapes: the IO matrix shows the band
touching all ranks, computation and network stay clean, and a node-local
IO fault localizes to that node's ranks.
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.sensors.model import SensorType
from repro.sim import IoDegradation, MachineConfig
from repro.viz import ascii_heatmap, write_pgm
from repro.workloads import get_workload

N_RANKS = 32


def test_io_degradation_case(benchmark, out_dir):
    source = get_workload("CHKPT").source(scale=2)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)

    def scenario():
        probe = run_vsensor(source, machine)
        span = probe.sim.total_time
        episode = IoDegradation(t0=0.35 * span, t1=0.75 * span, factor=0.15)
        run = run_vsensor(
            source, machine, faults=[episode], window_us=span / 12, batch_period_us=span / 12
        )
        return probe, run, episode, span

    probe, run, episode, span = once(benchmark, scenario)

    io = run.report.matrices[SensorType.IO]
    comp = run.report.matrices[SensorType.COMPUTATION]
    print(f"\nIO case — CHKPT {N_RANKS} ranks, filesystem at 15% for 35-75% of the run")
    print("IO performance matrix (light band = slow filesystem):")
    print(ascii_heatmap(io, max_rows=16, max_cols=64))
    write_pgm(io, f"{out_dir}/io_case.pgm")

    regions = [r for r in run.report.regions if r.sensor_type is SensorType.IO]
    assert regions, "the filesystem slowdown must be detected"
    big = max(regions, key=lambda r: r.cells)
    print("largest IO region: " + big.describe())
    # Fabric-wide (here: FS-wide): every rank affected.
    assert big.rank_lo == 0 and big.rank_hi == N_RANKS - 1
    # Attribution: computation stays healthy.
    assert np.nanmedian(comp) > 0.9
    # The healthy probe run shows no such region.
    probe_io_regions = [
        r for r in probe.report.regions if r.sensor_type is SensorType.IO and r.cells >= 4
    ]
    assert probe_io_regions == []
