"""Interpreter-tier performance trajectory: AST reference vs bytecode VM.

Times uninstrumented and instrumented runs of CG / FT / LULESH at
8 / 32 / 128 ranks under both engine tiers and writes the measurements to
``BENCH_interp.json`` at the repo root — the start of a recorded benchmark
trajectory, so hot-loop regressions show up as data rather than anecdotes.

The shape this pins: the bytecode tier wins everywhere, and by ≥3× on the
128-rank CG configuration (the Fig. 21 bad-node scale).  Noise-draw caches
are cleared before every timed run so neither tier benefits from the
other's warm-up.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_payload

from repro.api import run_uninstrumented, run_vsensor
from repro.sim import noise
from repro.workloads import all_workloads

PROGRAMS = ["CG", "FT", "LULESH"]
RANK_COUNTS = [8, 32, 128]
ENGINES = ["ast", "bytecode"]
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_interp.json")


def _timed(fn) -> float:
    # Fresh noise caches per measurement: the draws are deterministic, so a
    # warm cache from a previous run would understate the second tier's cost.
    noise._JITTER_CACHE.clear()
    noise._SPIKE_CACHE.clear()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.slow
def test_interp_tier_trajectory():
    rows = []
    for name in PROGRAMS:
        workload = all_workloads()[name]
        source = workload.source()
        for n_ranks in RANK_COUNTS:
            machine = workload.machine(n_ranks=n_ranks)
            for engine in ENGINES:
                seconds = _timed(
                    lambda: run_uninstrumented(source, machine, engine=engine)
                )
                rows.append(
                    {"workload": name, "ranks": n_ranks, "mode": "uninstrumented",
                     "engine": engine, "seconds": round(seconds, 4)}
                )
                seconds = _timed(
                    lambda: run_vsensor(source, machine, engine=engine)
                )
                rows.append(
                    {"workload": name, "ranks": n_ranks, "mode": "instrumented",
                     "engine": engine, "seconds": round(seconds, 4)}
                )

    def seconds_of(name, ranks, mode, engine):
        for row in rows:
            if (row["workload"], row["ranks"], row["mode"], row["engine"]) == (
                name, ranks, mode, engine
            ):
                return row["seconds"]
        raise KeyError((name, ranks, mode, engine))

    speedups = {}
    for name in PROGRAMS:
        for n_ranks in RANK_COUNTS:
            for mode in ("uninstrumented", "instrumented"):
                ast_s = seconds_of(name, n_ranks, mode, "ast")
                bc_s = seconds_of(name, n_ranks, mode, "bytecode")
                speedups[f"{name}@{n_ranks}/{mode}"] = round(ast_s / bc_s, 2)

    payload = {
        "benchmark": "interpreter tier: AST reference vs bytecode VM",
        "unit": "wall-clock seconds per full simulation",
        "results": rows,
        "speedups": speedups,
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'config':<28s} {'ast':>8s} {'bytecode':>9s} {'speedup':>8s}")
    for key, speedup in speedups.items():
        name, rest = key.split("@")
        ranks, mode = rest.split("/")
        ast_s = seconds_of(name, int(ranks), mode, "ast")
        bc_s = seconds_of(name, int(ranks), mode, "bytecode")
        print(f"{key:<28s} {ast_s:>8.2f} {bc_s:>9.2f} {speedup:>7.2f}x")

    # The acceptance gate: ≥3× on the 128-rank CG configuration.
    assert speedups["CG@128/uninstrumented"] >= 3.0
    # And the bytecode tier should win every configuration outright.
    assert all(s > 1.0 for s in speedups.values())


if __name__ == "__main__":
    test_interp_tier_trajectory()
