"""Interpreter-tier performance trajectory: AST vs bytecode vs lockstep.

Times uninstrumented and instrumented runs of CG / FT / LULESH at
8 / 32 / 128 ranks under all three engine tiers and writes the measurements
to ``BENCH_interp.json`` at the repo root — the start of a recorded
benchmark trajectory, so hot-loop regressions show up as data rather than
anecdotes.

The shape this pins: the bytecode tier beats the AST reference everywhere,
and by ≥3× on the 128-rank CG configuration (the Fig. 21 bad-node scale);
the lockstep SIMD-over-ranks tier beats bytecode by ≥5× on that same
configuration, where one fetch serves 128 lanes.  Noise-draw caches are
cleared before every timed run so no tier benefits from another's warm-up.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_payload

from repro.api import run_uninstrumented, run_vsensor
from repro.sim import noise
from repro.workloads import all_workloads

PROGRAMS = ["CG", "FT", "LULESH"]
RANK_COUNTS = [8, 32, 128]
ENGINES = ["ast", "bytecode", "lockstep"]
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_interp.json")


def _timed(fn) -> float:
    # Fresh noise caches per measurement: the draws are deterministic, so a
    # warm cache from a previous run would understate the second tier's cost.
    noise._JITTER_CACHE.clear()
    noise._SPIKE_CACHE.clear()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.mark.slow
def test_interp_tier_trajectory():
    rows = []
    for name in PROGRAMS:
        workload = all_workloads()[name]
        source = workload.source()
        for n_ranks in RANK_COUNTS:
            machine = workload.machine(n_ranks=n_ranks)
            for engine in ENGINES:
                seconds = _timed(
                    lambda: run_uninstrumented(source, machine, engine=engine)
                )
                rows.append(
                    {"workload": name, "ranks": n_ranks, "mode": "uninstrumented",
                     "engine": engine, "seconds": round(seconds, 4)}
                )
                seconds = _timed(
                    lambda: run_vsensor(source, machine, engine=engine)
                )
                rows.append(
                    {"workload": name, "ranks": n_ranks, "mode": "instrumented",
                     "engine": engine, "seconds": round(seconds, 4)}
                )

    def seconds_of(name, ranks, mode, engine):
        for row in rows:
            if (row["workload"], row["ranks"], row["mode"], row["engine"]) == (
                name, ranks, mode, engine
            ):
                return row["seconds"]
        raise KeyError((name, ranks, mode, engine))

    speedups = {}
    lockstep_speedups = {}
    for name in PROGRAMS:
        for n_ranks in RANK_COUNTS:
            for mode in ("uninstrumented", "instrumented"):
                ast_s = seconds_of(name, n_ranks, mode, "ast")
                bc_s = seconds_of(name, n_ranks, mode, "bytecode")
                ls_s = seconds_of(name, n_ranks, mode, "lockstep")
                speedups[f"{name}@{n_ranks}/{mode}"] = round(ast_s / bc_s, 2)
                lockstep_speedups[f"{name}@{n_ranks}/{mode}"] = round(bc_s / ls_s, 2)

    payload = {
        "benchmark": "interpreter tier: AST reference vs bytecode VM vs lockstep",
        "unit": "wall-clock seconds per full simulation",
        "results": rows,
        "speedups": speedups,
        "lockstep_speedups": lockstep_speedups,
    }
    write_payload(JSON_PATH, payload)

    print(
        f"\n{'config':<28s} {'ast':>8s} {'bytecode':>9s} {'lockstep':>9s}"
        f" {'bc/ast':>7s} {'ls/bc':>7s}"
    )
    for key in speedups:
        name, rest = key.split("@")
        ranks, mode = rest.split("/")
        ast_s = seconds_of(name, int(ranks), mode, "ast")
        bc_s = seconds_of(name, int(ranks), mode, "bytecode")
        ls_s = seconds_of(name, int(ranks), mode, "lockstep")
        print(
            f"{key:<28s} {ast_s:>8.2f} {bc_s:>9.2f} {ls_s:>9.2f}"
            f" {speedups[key]:>6.2f}x {lockstep_speedups[key]:>6.2f}x"
        )

    # The acceptance gates on the 128-rank CG configuration: bytecode ≥3×
    # over the AST reference, lockstep ≥5× over bytecode.
    assert speedups["CG@128/uninstrumented"] >= 3.0
    assert lockstep_speedups["CG@128/uninstrumented"] >= 5.0
    # And the bytecode tier should beat the AST reference everywhere; the
    # lockstep tier must win wherever the rank axis is wide enough to pay
    # for vectorization (the 128-rank configurations).
    assert all(s > 1.0 for s in speedups.values())
    assert all(
        s > 1.0 for k, s in lockstep_speedups.items() if "@128/" in k
    )


if __name__ == "__main__":
    test_interp_tier_trajectory()
