"""Figure 21 + §6.5 bad-node case study.

CG with 256 processes on a cluster where one node's memory subsystem runs
at 55% (the fault the paper found on Tianhe-2).  Shapes to reproduce:

* the computation matrix shows a persistent light line on that node's
  ranks for the whole execution;
* the flagged ranks all map to one node;
* resubmitting without the bad node improves the job time by a double-
  digit percentage (the paper measured 21%: 80.04 s -> 66.05 s).
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_uninstrumented, run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig, SlowMemoryNode
from repro.viz import ascii_heatmap, write_pgm
from repro.workloads import get_workload

N_RANKS = 256
PER_NODE = 16
BAD_NODE = 6  # ranks 96-111


def machine():
    return MachineConfig(n_ranks=N_RANKS, ranks_per_node=PER_NODE, mem_fraction=0.5)


def test_fig21_bad_node_line(benchmark, out_dir):
    source = get_workload("CG").source(scale=1)
    faults = [SlowMemoryNode(node_id=BAD_NODE, mem_factor=0.55)]

    run = once(
        benchmark,
        lambda: run_vsensor(source, machine(), faults=faults, window_us=10_000, batch_period_us=10_000),
    )

    comp = run.report.matrices[SensorType.COMPUTATION]
    print(f"\nFig. 21 — CG {N_RANKS} ranks; node {BAD_NODE} memory at 55%")
    print(ascii_heatmap(comp, max_rows=32, max_cols=64))
    write_pgm(comp, f"{out_dir}/fig21_badnode.pgm")

    suspects = run.report.suspect_ranks(SensorType.COMPUTATION, threshold=0.92)
    nodes = sorted({r // PER_NODE for r in suspects})
    print(f"persistently slow ranks: {suspects} -> node(s) {nodes}")

    assert suspects == list(range(BAD_NODE * PER_NODE, (BAD_NODE + 1) * PER_NODE))
    assert nodes == [BAD_NODE]

    # The line is persistent: the bad ranks are degraded in (almost) every
    # time window, not just an episode.
    bad_rows = comp[BAD_NODE * PER_NODE : (BAD_NODE + 1) * PER_NODE, :]
    finite = np.isfinite(bad_rows)
    degraded = (bad_rows < 0.9) & finite
    assert degraded.sum() / max(finite.sum(), 1) > 0.8


def test_fig21_resubmission_speedup(benchmark):
    source = get_workload("CG").source(scale=1)
    faults = [SlowMemoryNode(node_id=BAD_NODE, mem_factor=0.55)]

    def scenario():
        with_bad = run_uninstrumented(source, machine(), faults=faults)
        without_bad = run_uninstrumented(source, machine())
        return with_bad, without_bad

    with_bad, without_bad = once(benchmark, scenario)
    gain = 1.0 - without_bad.total_time / with_bad.total_time
    print(
        f"\n§6.5 — job time with bad node {with_bad.total_time / 1e3:.1f} ms, "
        f"after replacing it {without_bad.total_time / 1e3:.1f} ms "
        f"(improvement {gain:.0%}; paper observed 21%)"
    )
    assert 0.10 < gain < 0.45, "replacing the node must give a double-digit win"
