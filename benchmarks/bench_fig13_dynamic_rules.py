"""Figure 13: online detection with and without a dynamic rule.

The paper's worked example: ten records with wall times
[3,3,7,3,5,3,7,3,3,3] where the 7s coincide with high cache-miss readings.

* Case 1 (cache miss expected constant): records 2, 4 and 6 are variances.
* Case 2 (cache miss as a dynamic rule): the high-miss records form their
  own group and stop looking anomalous; only record 4 (slow *within* the
  low-miss group) remains.
"""

from benchmarks.conftest import once
from repro.runtime.detector import DetectorConfig, RankDetector
from repro.runtime.dynrules import NoGrouping, ThresholdMiss
from repro.runtime.records import SensorRecord
from repro.sensors.model import SensorType

WALLS = [3.0, 3.0, 7.0, 3.0, 5.0, 3.0, 7.0, 3.0, 3.0, 3.0]
MISSES = [0.1, 0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1]


def run_detector(rule):
    detector = RankDetector(
        rank=0,
        config=DetectorConfig(slice_us=10.0, threshold=0.7, min_duration_us=0.0),
        rule=rule,
    )
    t = 0.0
    for wall, miss in zip(WALLS, MISSES):
        t += 10.0  # one record per slice, as in the paper's example
        detector.add(
            SensorRecord(
                rank=0,
                sensor_id=1,
                sensor_type=SensorType.COMPUTATION,
                t_start=t - wall,
                t_end=t,
                instructions=30.0,
                cache_miss_rate=miss,
            )
        )
    detector.finish()
    return detector.events


def _record_ids(events):
    # Record i ends at t = (i+1)*10, landing in slice i+1.
    return sorted(int(e.t_start // 10.0) - 1 for e in events)


def test_fig13_case1_constant_expectation(benchmark):
    events = once(benchmark, lambda: run_detector(NoGrouping()))
    records = _record_ids(events)
    print(f"\nFig. 13 case 1 — variances at records {records} (paper: 2, 4, 6)")
    assert records == [2, 4, 6]


def test_fig13_case2_dynamic_rule(benchmark):
    events = once(benchmark, lambda: run_detector(ThresholdMiss(0.5)))
    records = _record_ids(events)
    groups = {e.group for e in events}
    print(f"\nFig. 13 case 2 — variances at records {records} in groups {groups} (paper: record 4, low-miss group)")
    assert records == [4]
    assert groups == {"L"}


def test_fig13_scaled_stream(benchmark):
    """The same contrast on a 10,000-record generated stream."""
    import numpy as np

    rng = np.random.default_rng(42)

    def build_events(rule):
        detector = RankDetector(
            rank=0,
            config=DetectorConfig(slice_us=100.0, threshold=0.7, min_duration_us=0.0),
            rule=rule,
        )
        t = 0.0
        for i in range(10_000):
            high_miss = rng.random() < 0.2
            wall = 7.0 if high_miss else 3.0
            wall *= 1.0 + 0.02 * rng.random()
            miss = 0.9 if high_miss else 0.1
            t += 100.0
            detector.add(
                SensorRecord(
                    rank=0,
                    sensor_id=1,
                    sensor_type=SensorType.COMPUTATION,
                    t_start=t - wall,
                    t_end=t,
                    instructions=30.0,
                    cache_miss_rate=miss,
                )
            )
        detector.finish()
        return detector.events

    ungrouped = build_events(NoGrouping())
    grouped = once(benchmark, lambda: build_events(ThresholdMiss(0.5)))
    print(
        f"\nFig. 13 at scale — false alarms without rule: {len(ungrouped)}, "
        f"with cache-miss rule: {len(grouped)}"
    )
    # Without the rule every high-miss record is an "anomaly"; with it the
    # stream is clean.
    assert len(ungrouped) > 1000
    assert len(grouped) == 0
