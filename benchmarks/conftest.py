"""Shared benchmark plumbing.

Each bench module regenerates one table or figure of the paper: it runs
the scenario (timed under pytest-benchmark with a single round — these are
simulations, not microbenchmarks), prints the same rows/series the paper
reports, writes figure data under ``out/``, and asserts the paper's
*shape* (who wins, roughly by how much, where the crossovers fall).
"""

from __future__ import annotations

import json
import os
import random
import sys

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "out")

#: every bench run is reproducible; override with BENCH_SEED=<int>
BENCH_SEED = int(os.environ.get("BENCH_SEED", "20180224"))


@pytest.fixture(autouse=True)
def _seed_everything():
    """Pin both global RNGs before every bench, so scenario order can't
    change results (simulator seeds are explicit, but machine-noise and
    ad-hoc sampling fall back on the globals)."""
    random.seed(BENCH_SEED)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        pass
    else:
        np.random.seed(BENCH_SEED)


def write_payload(path: str, payload: dict) -> None:
    """Write a figure/table payload with sorted keys and a stable layout,
    so the JSON on disk never depends on dict insertion order."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return os.path.abspath(OUT_DIR)


@pytest.fixture(scope="session", autouse=True)
def _print_header():
    print("\n" + "=" * 72, file=sys.stderr)
    print("vSensor reproduction benchmarks — paper tables and figures", file=sys.stderr)
    print("=" * 72, file=sys.stderr)
    yield


def once(benchmark, fn):
    """Run a heavy scenario exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
