"""Shared benchmark plumbing.

Each bench module regenerates one table or figure of the paper: it runs
the scenario (timed under pytest-benchmark with a single round — these are
simulations, not microbenchmarks), prints the same rows/series the paper
reports, writes figure data under ``out/``, and asserts the paper's
*shape* (who wins, roughly by how much, where the crossovers fall).
"""

from __future__ import annotations

import os
import sys

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "out")


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return os.path.abspath(OUT_DIR)


@pytest.fixture(scope="session", autouse=True)
def _print_header():
    print("\n" + "=" * 72, file=sys.stderr)
    print("vSensor reproduction benchmarks — paper tables and figures", file=sys.stderr)
    print("=" * 72, file=sys.stderr)
    yield


def once(benchmark, fn):
    """Run a heavy scenario exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
