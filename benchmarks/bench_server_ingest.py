"""Analysis-server data-path trajectory: reference vs columnar engine.

Feeds an identical synthetic batch stream — per-rank slice summaries at
32 / 128 ranks — through both analysis engines, in two modes: pure ingest
(one final matrix/detect pass) and the §5.5 online pattern of ingest
**interleaved** with matrix + inter-process queries (what
:class:`~repro.runtime.live.LiveReporter` does every period).  The
reference engine re-sorts and replays the whole keyed store on every
post-ingest query, so the interleaved mode is its quadratic worst case;
the columnar engine's incremental canonical replay keeps queries
amortized.  Results land in ``BENCH_server.json`` at the repo root.

The shape this pins: the engines agree bit-for-bit on every matrix (a
bench that measures a wrong answer measures nothing), the columnar tier
wins every interleaved configuration, and by ≥5× on the 128-rank
interleaved workload — the CI gate.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, write_payload

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType

RANK_COUNTS = [32, 128]
ENGINES = ["reference", "columnar"]
N_SLICES = 48
SLICE_BLOCK = 8          # slices per batch
QUERY_EVERY = 16         # interleaved mode: query cadence in batches
WINDOW_US = 4000.0
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_server.json")

_SENSORS = ((1, SensorType.COMPUTATION), (2, SensorType.NETWORK))


def _batch_stream(n_ranks: int) -> list[tuple[int, list[SliceSummary], int]]:
    """Deterministic per-rank batches in virtual-time order: every rank
    ships SLICE_BLOCK slices per batch, the last rank runs ~40 % slow so
    inter-process detection has real events to find."""
    rng = random.Random(BENCH_SEED + n_ranks)
    stream = []
    seqs = {rank: 0 for rank in range(n_ranks)}
    for block_start in range(0, N_SLICES, SLICE_BLOCK):
        for rank in range(n_ranks):
            skew = 1.4 if rank == n_ranks - 1 else 1.0
            batch = [
                SliceSummary(
                    rank=rank,
                    sensor_id=sensor_id,
                    sensor_type=stype,
                    group="",
                    slice_index=s,
                    t_slice_start=s * 1000.0,
                    mean_duration=(10.0 + rng.random()) * skew,
                    count=4,
                    mean_cache_miss=0.1,
                )
                for s in range(block_start, block_start + SLICE_BLOCK)
                for sensor_id, stype in _SENSORS
            ]
            stream.append((rank, batch, seqs[rank]))
            seqs[rank] += 1
    return stream


def _run(engine: str, n_ranks: int, stream, interleaved: bool) -> AnalysisServer:
    server = AnalysisServer(n_ranks=n_ranks, window_us=WINDOW_US, engine=engine)
    for i, (rank, batch, seq) in enumerate(stream):
        server.receive_batch(rank, batch, seq=seq)
        if interleaved and (i + 1) % QUERY_EVERY == 0:
            server.performance_matrix(SensorType.COMPUTATION)
            server.performance_matrix(SensorType.NETWORK)
            server.detect_inter_process()
    server.detect_inter_process()
    for stype in SensorType:
        server.performance_matrix(stype)
    return server


@pytest.mark.slow
def test_server_ingest_trajectory():
    rows = []
    finals: dict[tuple[int, str, str], AnalysisServer] = {}
    for n_ranks in RANK_COUNTS:
        stream = _batch_stream(n_ranks)
        for mode, interleaved in (("ingest", False), ("interleaved", True)):
            for engine in ENGINES:
                t0 = time.perf_counter()
                server = _run(engine, n_ranks, stream, interleaved)
                seconds = time.perf_counter() - t0
                finals[(n_ranks, mode, engine)] = server
                rows.append(
                    {"ranks": n_ranks, "mode": mode, "engine": engine,
                     "batches": len(stream), "summaries": server.summaries_received,
                     "seconds": round(seconds, 4)}
                )
            # A bench over diverging engines measures nothing: require
            # bit-identical matrices and events before trusting the times.
            ref = finals[(n_ranks, mode, "reference")]
            col = finals[(n_ranks, mode, "columnar")]
            for stype in SensorType:
                assert np.array_equal(
                    ref.performance_matrix(stype),
                    col.performance_matrix(stype),
                    equal_nan=True,
                ), f"engines diverged: {stype} @ {n_ranks} ranks ({mode})"
            assert ref.inter_events == col.inter_events
            assert ref.inter_events, "scenario must produce real events"

    def seconds_of(ranks, mode, engine):
        for row in rows:
            if (row["ranks"], row["mode"], row["engine"]) == (ranks, mode, engine):
                return row["seconds"]
        raise KeyError((ranks, mode, engine))

    speedups = {}
    for n_ranks in RANK_COUNTS:
        for mode in ("ingest", "interleaved"):
            ref_s = seconds_of(n_ranks, mode, "reference")
            col_s = seconds_of(n_ranks, mode, "columnar")
            speedups[f"{n_ranks}/{mode}"] = round(ref_s / col_s, 2)

    payload = {
        "benchmark": "analysis server: reference vs columnar data path",
        "unit": "wall-clock seconds per batch stream (ingest + queries)",
        "results": rows,
        "speedups": speedups,
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'config':<20s} {'reference':>10s} {'columnar':>9s} {'speedup':>8s}")
    for key, speedup in speedups.items():
        ranks, mode = key.split("/")
        ref_s = seconds_of(int(ranks), mode, "reference")
        col_s = seconds_of(int(ranks), mode, "columnar")
        print(f"{key:<20s} {ref_s:>10.3f} {col_s:>9.3f} {speedup:>7.2f}x")

    # The acceptance gate: ≥5× on the 128-rank interleaved workload.
    assert speedups["128/interleaved"] >= 5.0
    # And the columnar tier must win interleaved mode at every scale.
    assert all(
        speedups[f"{n}/interleaved"] > 1.0 for n in RANK_COUNTS
    )


if __name__ == "__main__":
    test_server_ingest_trajectory()
