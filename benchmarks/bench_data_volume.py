"""§6.4 data-volume comparison: vSensor vs full tracing.

In the paper's 128-process, 140 s CG run, ITAC generated 501.5 MB while
vSensor's slice summaries totalled 8.8 MB (~0.5 KB/s per process).  Shape
to reproduce: the tracer's volume exceeds vSensor's by a large factor, and
vSensor's per-process rate stays in the low-KB/s regime regardless of
event rate.
"""

import pytest

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.baselines import EventTracer
from repro.frontend import parse_source
from repro.sim import MachineConfig, Simulator
from repro.workloads import get_workload

N_RANKS = 64


def test_data_volume_vs_tracer(benchmark):
    source = get_workload("CG").source(scale=3)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)

    def scenario():
        tracer = EventTracer()
        Simulator(parse_source(source), machine).run(tracer)
        vrun = run_vsensor(source, machine)
        return tracer.stats(), vrun

    trace_stats, vrun = once(benchmark, scenario)
    vbytes = vrun.report.bytes_to_server
    ratio = trace_stats.bytes / max(vbytes, 1)
    print(
        f"\n§6.4 — CG {N_RANKS} ranks, {vrun.sim.total_time / 1e6:.2f}s:"
        f"\n  tracer : {trace_stats.bytes / 1024:9.1f} KiB ({trace_stats.events} events)"
        f"\n  vSensor: {vbytes / 1024:9.1f} KiB "
        f"({vrun.report.data_rate_kb_per_s():.2f} KB/s/process)"
        f"\n  ratio  : {ratio:.1f}x (paper: 501.5 MB vs 8.8 MB = 57x)"
    )

    # The paper's 57x gap comes from CG sensing at 107 KHz (hundreds of
    # records folded into each slice summary); the analogue's sensors are
    # coarser, so the compression is smaller — but tracing must still cost
    # a multiple of vSensor's volume.
    assert trace_stats.bytes > vbytes * 2, "tracing must cost much more data"


def test_vsensor_volume_scales_with_time_not_events(benchmark):
    """Slice summaries are bounded by wall time: doubling the event rate
    (finer sensors) must not double vSensor's data volume."""
    machine = MachineConfig(n_ranks=8, ranks_per_node=4)

    def run_with_iters(iters):
        src = f"""
        global int N = {iters};
        void q() {{ compute_units(20); }}
        int main() {{
            int i;
            for (i = 0; i < N; i = i + 1) q();
            MPI_Barrier();
            return 0;
        }}
        """
        return run_vsensor(src, machine)

    def scenario():
        return run_with_iters(2000), run_with_iters(4000)

    few, many = once(benchmark, scenario)
    records_ratio = sum(r.sensor_records for r in many.sim.ranks) / max(
        1, sum(r.sensor_records for r in few.sim.ranks)
    )
    bytes_per_s_few = few.report.bytes_to_server / few.sim.total_time
    bytes_per_s_many = many.report.bytes_to_server / many.sim.total_time
    print(
        f"\nvolume-scaling — record ratio {records_ratio:.2f}x, "
        f"data rate {bytes_per_s_few * 1e6 / 1024:.1f} vs {bytes_per_s_many * 1e6 / 1024:.1f} KiB/s"
    )
    assert records_ratio > 1.8
    # Per-second data rate stays flat (within 30%).
    assert abs(bytes_per_s_many - bytes_per_s_few) / bytes_per_s_few < 0.3
