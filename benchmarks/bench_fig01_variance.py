"""Figure 1: run-to-run execution-time variance of FT on fixed nodes.

The paper submits NPB-FT (1024 procs) repeatedly to the same nodes of
Tianhe-2 and sees >3x spread between the fastest and slowest run.  We
submit the FT analogue repeatedly to a fixed simulated cluster whose
ambient conditions (noise stream, occasional congestion from other jobs)
change per submission.

Shape to reproduce: large max/min ratio driven by congestion episodes; a
quiet fabric shows a near-flat series.
"""

import numpy as np

from benchmarks.conftest import once
from repro.baselines import rerun_study
from repro.viz.figures import series_to_csv
from repro.workloads import get_workload

N_RANKS = 16
SUBMISSIONS = 10


def test_fig01_run_to_run_variance(benchmark, out_dir):
    source = get_workload("FT").source(scale=1)

    def scenario():
        stormy = rerun_study(
            source,
            n_ranks=N_RANKS,
            submissions=SUBMISSIONS,
            congestion_probability=0.45,
            congestion_factor=0.15,
            ranks_per_node=8,
        )
        calm = rerun_study(
            source,
            n_ranks=N_RANKS,
            submissions=SUBMISSIONS,
            congestion_probability=0.0,
            ranks_per_node=8,
        )
        return stormy, calm

    stormy, calm = once(benchmark, scenario)

    print("\nFig. 1 — FT execution time per job submission (fixed nodes)")
    print(" submission   time(ms)   [shared system]     time(ms) [quiet system]")
    for i, (s, c) in enumerate(zip(stormy.times_us, calm.times_us)):
        bar = "#" * int(40 * s / max(stormy.times_us))
        print(f"  {i:10d} {s / 1e3:10.1f}   {bar:<42} {c / 1e3:8.1f}")
    print(f"max/min ratio — shared: {stormy.max_over_min:.2f}x, quiet: {calm.max_over_min:.2f}x")
    print("(paper: >3x between fastest and slowest run)")

    series_to_csv(
        f"{out_dir}/fig01_variance.csv",
        {"shared_us": stormy.as_array(), "quiet_us": calm.as_array()},
    )

    assert stormy.max_over_min > 2.0, "congested submissions must spread >2x"
    assert calm.max_over_min < 1.2, "quiet system must be near-flat"
    assert stormy.max_over_min > 3 * (calm.max_over_min - 1) + 1
