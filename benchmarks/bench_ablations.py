"""Ablations of the design choices the paper motivates.

* Smoothing slice length (§5.1): shorter slices leave OS noise in the
  record stream and produce false variance alarms on a healthy machine;
  the 1000 µs default suppresses them.
* max-depth instrumentation cut (§4): deeper cuts select more sensors and
  cost more overhead.
* Runtime shutoff of too-short sensors (§5.3): bounds per-record analysis
  work.
* Probe cost (§4): overhead scales with probe weight — the reason probes
  must stay tiny.
"""

import pytest

from benchmarks.conftest import once
from repro.api import run_uninstrumented, run_vsensor
from repro.runtime.detector import DetectorConfig
from repro.sim import MachineConfig
from repro.workloads import get_workload


def machine(**kw):
    return MachineConfig(n_ranks=16, ranks_per_node=8, **kw)


def test_ablation_smoothing_slice(benchmark):
    """Fine-grained sensors only stop generating jitter alarms once the
    slice is long enough to average many executions (§5.1).  Uses the FWQ
    microkernel: ~12 µs per sense, so a 10 µs slice holds one record while
    a 1000 µs slice averages ~80."""
    from repro.workloads.micro import fwq_source

    source = fwq_source(iterations=8000, quantum_units=10.0)
    fwq_machine = MachineConfig(n_ranks=2, ranks_per_node=2)

    def run_with_slice(slice_us):
        run = run_vsensor(
            source,
            fwq_machine,
            detector=DetectorConfig(slice_us=slice_us, min_duration_us=0.0, threshold=0.8),
        )
        return len(run.runtime.events)

    def scenario():
        return {s: run_with_slice(s) for s in (10.0, 100.0, 1000.0)}

    alarms = once(benchmark, scenario)
    print("\nablation: smoothing slice vs false alarms on a healthy run (FWQ)")
    for s, count in alarms.items():
        print(f"  slice {s:7.0f}us -> {count:5d} variance events")
    assert alarms[10.0] > alarms[1000.0] * 3, "short slices must be much noisier"


def test_ablation_max_depth(benchmark):
    source = get_workload("BT").source(scale=1)

    def scenario():
        rows = {}
        base = run_uninstrumented(source, machine())
        for depth in (1, 2, 4):
            run = run_vsensor(source, machine(), max_depth=depth)
            rows[depth] = (
                len(run.static.plan.selected),
                run.sim.total_time / base.total_time - 1.0,
            )
        return rows

    rows = once(benchmark, scenario)
    print("\nablation: max-depth vs sensors and overhead (BT)")
    for depth, (count, overhead) in rows.items():
        print(f"  max_depth={depth}: sensors={count:3d} overhead={overhead:7.3%}")
    # max_depth=1 rejects the coarse per-phase calls (they sit at depth 1
    # inside the time loop), so selection falls through to the *many small
    # loops* inside the phase functions: more sensors, more records, more
    # overhead.  Deeper cuts let the nested-sensor rule pick the coarse
    # outermost calls instead.
    assert rows[1][0] > rows[2][0]
    assert rows[1][1] > rows[2][1]
    assert all(overhead < 0.04 for _c, overhead in rows.values())


def test_ablation_shutoff(benchmark):
    """Shutoff keeps per-record analysis bounded for too-short sensors."""
    src = """
    global int N = 3000;
    void q() { compute_units(1); }
    int main() {
        int i;
        for (i = 0; i < N; i = i + 1) q();
        MPI_Barrier();
        return 0;
    }
    """

    def run_with(min_duration):
        run = run_vsensor(
            src,
            machine(),
            detector=DetectorConfig(min_duration_us=min_duration, shutoff_after=50),
        )
        processed = sum(d.records_processed for d in run.runtime.detectors.values())
        shutoff = run.report.shutoff_sensors
        return processed, shutoff

    def scenario():
        return run_with(0.0), run_with(10.0)

    (proc_off, shut_off), (proc_on, shut_on) = once(benchmark, scenario)
    print(
        f"\nablation: shutoff off -> processed={proc_off}, sensors shut={shut_off}; "
        f"on -> processed={proc_on}, sensors shut={shut_on}"
    )
    assert shut_off == 0
    assert shut_on >= 16  # the ~1-unit sensor is shut off on every rank
    assert proc_on < proc_off / 10


def test_ablation_probe_cost(benchmark):
    source = get_workload("SP").source(scale=1)

    def scenario():
        out = {}
        for cost in (0.5, 5.0, 25.0):
            m = machine(probe_cost=cost)
            base = run_uninstrumented(source, m)
            run = run_vsensor(source, m)
            out[cost] = run.sim.total_time / base.total_time - 1.0
        return out

    overheads = once(benchmark, scenario)
    print("\nablation: probe cost vs overhead (SP)")
    for cost, overhead in overheads.items():
        print(f"  probe_cost={cost:5.1f} -> overhead {overhead:7.3%}")
    assert overheads[0.5] < overheads[5.0] < overheads[25.0]
    assert overheads[0.5] < 0.04
