"""Table 1: per-program validation of the whole tool chain.

For each of the eight workload analogues this regenerates every column of
the paper's Table 1:

* compile-time: source KLoC, snippet candidates, identified v-sensors,
  instrumented sensors by type;
* runtime: workload max error (PMU instruction-count spread across
  executions, sensors and ranks), instrumentation overhead vs the original
  binary, sense-time coverage, and sense frequency.

Shapes to reproduce: identification filters most candidates; overhead
stays below the paper's 4% bound; AMG has by far the lowest coverage;
workload max error stays within PMU measurement error (<5%).
"""

from collections import defaultdict

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_uninstrumented, run_vsensor
from repro.sim import MachineConfig
from repro.sim.hooks import RawRecorder
from repro.viz.figures import sense_stats
from repro.workloads import all_workloads

N_RANKS = 32
PROGRAMS = ["BT", "CG", "FT", "LU", "SP", "AMG", "LULESH", "RAXML"]


def machine():
    return MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)


def run_program(name):
    workload = all_workloads()[name]
    source = workload.source()
    base = run_uninstrumented(source, machine())
    recorder = RawRecorder()
    run = run_vsensor(source, machine(), extra_hooks=[recorder])
    return workload, source, base, run, recorder


def workload_max_error(records) -> float:
    """Pm - 1 per the paper: max over ranks of max over sensors of
    (max/min instruction count per sensor per rank)."""
    per_key = defaultdict(list)
    for rank, sensor_id, _t0, _t1, instr in records:
        per_key[(rank, sensor_id)].append(instr)
    worst = 1.0
    for counts in per_key.values():
        if len(counts) >= 2:
            worst = max(worst, max(counts) / min(counts))
    return worst - 1.0


def coverage_and_frequency(records, total_time):
    rank0 = [(t0, t1) for rank, _s, t0, t1, _i in records if rank == 0]
    if not rank0:
        return 0.0, 0.0
    starts = np.array([t0 for t0, _ in rank0])
    ends = np.array([t1 for _, t1 in rank0])
    stats = sense_stats(starts, ends, total_time)
    return stats.coverage, stats.frequency_mhz


@pytest.mark.parametrize("name", PROGRAMS)
def test_table1_row(benchmark, name):
    workload, source, base, run, recorder = once(benchmark, lambda: run_program(name))

    ident = run.static.identification
    plan = run.static.plan
    overhead = run.sim.total_time / base.total_time - 1.0
    err = workload_max_error(recorder.records)
    coverage, freq = coverage_and_frequency(recorder.records, run.sim.total_time)

    print(
        f"\nTable 1 [{name:7s}] kloc={workload.kloc():6.3f} "
        f"snippets={ident.snippet_count:4d} vsensors={ident.sensor_count:4d} "
        f"instrumented={plan.summary():14s} max_err={err:6.2%} "
        f"overhead={overhead:6.2%} coverage={coverage:7.2%} freq={freq:.4f}MHz"
    )

    # Paper shapes.
    assert ident.sensor_count <= ident.snippet_count
    assert len(plan.selected) <= ident.sensor_count
    assert err < 0.05, "workload max error must stay within PMU error (<5%)"
    assert overhead < 0.04, "instrumentation overhead must stay below 4%"
    assert coverage > 0.0


def test_table1_cross_program_shapes():
    """Relations the paper's table exhibits across programs."""
    rows = {}
    for name in ["CG", "AMG", "BT"]:
        workload, source, base, run, recorder = run_program(name)
        coverage, freq = coverage_and_frequency(recorder.records, run.sim.total_time)
        rows[name] = {
            "coverage": coverage,
            "sensors": run.static.identification.sensor_count,
            "snippets": run.static.identification.snippet_count,
        }
    # AMG's adaptive refinement yields the smallest sensor fraction and
    # the lowest coverage of the three.
    frac = {n: r["sensors"] / r["snippets"] for n, r in rows.items()}
    assert frac["AMG"] == min(frac.values())
    assert rows["AMG"]["coverage"] == min(r["coverage"] for r in rows.values())
