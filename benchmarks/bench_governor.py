"""Overhead governor: Fig. 18-20 detection quality under a hard cost cap.

The paper caps vSensor's overhead by *construction* — the static module
refuses sensors predicted too hot, and §5.3 shuts off any snippet whose
measured self-cost exceeds its threshold.  Both are one-way doors: once a
sensor is off it never comes back, and the budget is per-sensor, not
global.  The runtime governor replaces that with a closed loop: measure
aggregate probe self-cost per rank each evaluation slice, demote the
cheapest-information sensors to 1-in-N sampling (then suspension) while
over budget, and re-promote everything the moment a sibling rank shows
variance.

This bench runs the §6.4 injection scenario (two CpuContention episodes,
nodes 1 and 3, 32 ranks / 8 per node) on two workloads whose probe
density makes ungoverned instrumentation blow a 2% budget, and gates:

* ungoverned full-rate overhead exceeds the 2% cap (the problem exists),
* at ``overhead_budget=2%``: quiet-run makespan overhead lands under the
  cap AND the golden Fig. 18-20 computation F-score stays 1.0,
* at a stingy 1% budget the governor degrades *gracefully*: precision
  holds at 1.0 (no false regions — it may miss, it must not invent) with
  F >= 0.5, and the quiet overhead is no worse than the 2% run's.

LULESH carries ``InstructionBands`` so its data-dependent snippets group
by measured workload; AMG runs ungrouped.  Probe costs are scenario
parameters chosen so full-rate instrumentation clearly violates the cap
while the sampled steady state fits inside it.  Results land in
``BENCH_governor.json`` at the repo root.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import once, write_payload

from repro.api import run_uninstrumented, run_vsensor
from repro.runtime.dynrules import InstructionBands
from repro.runtime.governor import GovernorConfig
from repro.runtime.quality import score_detection
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig
from repro.workloads import get_workload

N_RANKS = 32
PER_NODE = 8
BUDGET_CAP = 0.02     # the hard cap: quiet overhead must land under this
BUDGET_TIGHT = 0.01   # graceful-degradation point
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_governor.json")

#: (workload, scale, probe_cost, sample_period, rule factory).  Probe
#: costs are calibrated so the ungoverned run clearly violates the 2%
#: cap while a fully-sampled steady state fits inside it — the regime
#: the governor is for.
SCENARIOS = [
    ("LULESH", 4, 25.0, 4, InstructionBands),
    ("AMG", 4, 70.0, 3, None),
]


def _injections(span: float) -> list[CpuContention]:
    return [
        CpuContention(node_ids=(1,), t0=0.25 * span, t1=0.45 * span, cpu_factor=0.35),
        CpuContention(node_ids=(3,), t0=0.60 * span, t1=0.80 * span, cpu_factor=0.35),
    ]


def _run_scenario(name, scale, probe_cost, sample_period, rule_factory):
    source = get_workload(name).source(scale=scale)
    machine = MachineConfig(
        n_ranks=N_RANKS, ranks_per_node=PER_NODE, probe_cost=probe_cost
    )
    base = run_uninstrumented(source, machine).total_time
    span = base
    injections = _injections(span)
    fault_base = run_uninstrumented(source, machine, faults=injections).total_time
    window = dict(window_us=span / 16, batch_period_us=span / 16)

    def rule():
        return rule_factory() if rule_factory is not None else None

    full = run_vsensor(source, machine, rule=rule(), **window)
    full_overhead = (full.report.total_time_us - base) / base

    budgets = {}
    for budget in (BUDGET_CAP, BUDGET_TIGHT):
        quiet = run_vsensor(
            source,
            machine,
            rule=rule(),
            governor=GovernorConfig(overhead_budget=budget, sample_period=sample_period),
            **window,
        )
        quiet_overhead = (quiet.report.total_time_us - base) / base
        fault = run_vsensor(
            source,
            machine,
            faults=injections,
            rule=rule(),
            governor=GovernorConfig(overhead_budget=budget, sample_period=sample_period),
            **window,
        )
        fault_overhead = (fault.report.total_time_us - fault_base) / fault_base
        score = score_detection(
            fault.report, injections, machine,
            sensor_types=(SensorType.COMPUTATION,),
        )
        gov = fault.runtime.governor
        # Coverage bookkeeping must balance: every probe execution is
        # kept, sampled out, or suppressed — nothing double-counted or
        # silently dropped.
        for rank_tables in gov.table._ranks.values():
            for ctl in rank_tables.values():
                assert ctl.executions == ctl.kept + ctl.sampled_out + ctl.suppressed
        budgets[budget] = {
            "quiet_overhead": round(quiet_overhead, 4),
            "fault_overhead": round(fault_overhead, 4),
            "f_score": round(score.f_score, 3),
            "precision": round(score.precision, 3),
            "recall": round(score.recall, 3),
            "decisions": gov.totals(),
            "coverage": round(gov.coverage(), 4),
        }
    return {
        "workload": name,
        "scale": scale,
        "probe_cost": probe_cost,
        "sample_period": sample_period,
        "rule": rule_factory().name if rule_factory is not None else "none",
        "full_rate_overhead": round(full_overhead, 4),
        "budgets": budgets,
    }


@pytest.mark.slow
def test_governor_budget_cap(benchmark):
    rows = once(
        benchmark,
        lambda: [_run_scenario(*scenario) for scenario in SCENARIOS],
    )

    print(f"\n{'workload':<8s} {'full':>7s} | {'b':>5s} {'quiet':>7s} {'fault':>7s}"
          f" {'F':>5s} {'P':>5s} {'R':>5s}")
    for row in rows:
        for budget, stats in row["budgets"].items():
            print(
                f"{row['workload']:<8s} {row['full_rate_overhead']:>7.4f} | "
                f"{budget:>5.2f} {stats['quiet_overhead']:>7.4f} "
                f"{stats['fault_overhead']:>7.4f} {stats['f_score']:>5.2f} "
                f"{stats['precision']:>5.2f} {stats['recall']:>5.2f}"
            )

    payload = {
        "benchmark": "overhead governor: Fig 18-20 F-score under a hard 2% cost cap",
        "scenario": "two CpuContention episodes (nodes 1, 3), 32 ranks / 8 per node",
        "results": rows,
        #: machine-readable gates, judged per workload below
        "gate": {
            "full_rate_exceeds_cap": BUDGET_CAP,
            "hard_cap": {
                "budget": BUDGET_CAP,
                "max_quiet_overhead": BUDGET_CAP,
                "min_f_score": 1.0,
            },
            "graceful": {
                "budget": BUDGET_TIGHT,
                "min_f_score": 0.5,
                "min_precision": 1.0,
            },
        },
    }
    write_payload(JSON_PATH, payload)

    for row in rows:
        name = row["workload"]
        # The problem is real: ungoverned instrumentation blows the cap.
        assert row["full_rate_overhead"] > BUDGET_CAP, (name, row)
        capped = row["budgets"][BUDGET_CAP]
        # Hard cap honored on the quiet run, golden F-score preserved.
        assert capped["quiet_overhead"] <= BUDGET_CAP, (name, capped)
        assert capped["f_score"] == 1.0, (name, capped)
        assert capped["precision"] == 1.0, (name, capped)
        tight = row["budgets"][BUDGET_TIGHT]
        # Graceful degradation: tighter budget may cost recall, never
        # precision, and must not spend more than the looser budget.
        assert tight["quiet_overhead"] <= capped["quiet_overhead"] + 1e-9, (name, tight)
        assert tight["precision"] == 1.0, (name, tight)
        assert tight["f_score"] >= 0.5, (name, tight)
        for stats in row["budgets"].values():
            assert 0.0 < stats["coverage"] <= 1.0, (name, stats)
