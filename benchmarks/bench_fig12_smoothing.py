"""Figure 12: time-slice smoothing filters high-frequency OS noise.

A ~10 µs fixed-work sensor executes back-to-back on a noisy node.  Read at
10 µs resolution the normalized times look chaotic; averaged over 1000 µs
slices the curve is smooth.  Shape: the slice-averaged series' relative
spread is several times smaller than the raw series'.
"""

import numpy as np

from benchmarks.conftest import once
from repro.baselines import run_fwq_probe
from repro.sim import MachineConfig
from repro.viz.figures import series_to_csv


def _slice_average(starts, values, slice_us):
    out = []
    idx = 0
    n = len(starts)
    edge = slice_us
    bucket = []
    for s, v in zip(starts, values):
        if s >= edge:
            if bucket:
                out.append(np.mean(bucket))
            bucket = []
            edge += slice_us
        bucket.append(v)
    if bucket:
        out.append(np.mean(bucket))
    return np.asarray(out)


def test_fig12_smoothing(benchmark, out_dir):
    machine = MachineConfig(n_ranks=1, ranks_per_node=1)

    obs = once(benchmark, lambda: run_fwq_probe(machine, iterations=20_000, quantum_units=10.0))

    raw = obs.times / np.median(obs.times)
    smooth = _slice_average(obs.starts, obs.times, 1000.0)
    smooth = smooth / np.median(smooth)

    raw_spread = float(np.percentile(raw, 99) / np.percentile(raw, 1))
    smooth_spread = float(np.percentile(smooth, 99) / np.percentile(smooth, 1))
    print("\nFig. 12 — normalized sensor time under background noise")
    print(f"  raw (10us resolution)    p99/p1 spread: {raw_spread:6.3f}  ({len(raw)} samples)")
    print(f"  smoothed (1000us slices) p99/p1 spread: {smooth_spread:6.3f}  ({len(smooth)} samples)")

    series_to_csv(
        f"{out_dir}/fig12_smoothing.csv",
        {"raw_norm": raw[:5000], "smooth_norm": smooth},
    )

    assert raw_spread > 1.1, "raw series must look noisy"
    assert smooth_spread < 1.0 + (raw_spread - 1.0) / 2, "smoothing must at least halve the spread"
    # The smoothed curve stays close to 1.0 throughout (no durable variance
    # on a healthy machine; the occasional daemon spike survives smoothing
    # only as a shallow bump).
    assert float(np.max(np.abs(smooth - 1.0))) < 0.35
