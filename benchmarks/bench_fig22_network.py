"""Figure 22 + §6.5 network case study.

FT (alltoall-dominated) hit by a fabric-wide congestion episode mid-run.
Shapes to reproduce:

* the degraded run is several times slower than a normal one (the paper's
  abnormal run: 78.66 s vs 23.31 s = 3.37x);
* the network matrix shows a time band of degraded performance touching
  *all* ranks (a fabric problem, not a node problem);
* the computation matrix stays clean — vSensor attributes the variance to
  the network component.
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_uninstrumented, run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig, NetworkDegradation
from repro.viz import ascii_heatmap, write_pgm
from repro.workloads import get_workload

N_RANKS = 64


def test_fig22_network_degradation(benchmark, out_dir):
    source = get_workload("FT").source(scale=2)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)

    def scenario():
        baseline = run_uninstrumented(source, machine)
        span = baseline.total_time
        episode = NetworkDegradation(t0=0.25 * span, t1=4.0 * span, factor=0.18)
        degraded = run_uninstrumented(source, machine, faults=[episode])
        vrun = run_vsensor(
            source,
            machine,
            faults=[episode],
            window_us=degraded.total_time / 14,
            batch_period_us=degraded.total_time / 28,
        )
        return baseline, degraded, vrun, episode

    baseline, degraded, vrun, episode = once(benchmark, scenario)
    slowdown = degraded.total_time / baseline.total_time
    print(
        f"\nFig. 22 — FT {N_RANKS} ranks: normal {baseline.total_time / 1e3:.1f} ms, "
        f"congested {degraded.total_time / 1e3:.1f} ms ({slowdown:.2f}x; paper saw 3.37x)"
    )

    net = vrun.report.matrices[SensorType.NETWORK]
    comp = vrun.report.matrices[SensorType.COMPUTATION]
    print("network matrix (light band = congestion):")
    print(ascii_heatmap(net, max_rows=16, max_cols=64))
    write_pgm(net, f"{out_dir}/fig22_network.pgm")

    assert 2.0 < slowdown < 6.0, "multi-x slowdown like the paper's 3.37x"

    # The band: in post-onset windows the mean network performance drops
    # hard; pre-onset windows are healthy.
    n_windows = net.shape[1]
    window_means = np.array([np.nanmean(net[:, w]) if np.isfinite(net[:, w]).any() else np.nan for w in range(n_windows)])
    onset_window = int(episode.t0 // (degraded.total_time / 14))
    pre = window_means[: max(onset_window, 1)]
    post = window_means[onset_window + 1 :]
    post = post[np.isfinite(post)]
    assert np.nanmean(pre) > 0.75, "healthy before onset"
    assert post.size and np.nanmean(post) < 0.5, "degraded band after onset"

    # All ranks affected at once: the degraded windows touch every rank.
    worst_window = int(np.nanargmin(window_means))
    column = net[:, worst_window]
    assert (column[np.isfinite(column)] < 0.6).mean() > 0.9

    # Attribution: computation stays clean.
    comp_finite = comp[np.isfinite(comp)]
    assert np.median(comp_finite) > 0.9
