"""Sharded-service ingest scaling: 1 shard vs 4 shards, 16 tenants.

Feeds an identical 16-job batch stream through the multi-tenant
:class:`~repro.service.AnalysisService` at 1 and at 4 shards and compares
ingest makespan on the service's virtual clock (every row enters at t=0,
so the makespan is purely queue/apply cost, not simulated program time).
Two cost models:

* ``deterministic`` — the CI gate.  Each sub-batch costs
  ``base_us + per_row_us * rows`` of virtual time, so the speedup is a
  pure function of how evenly consistent hashing spreads the 256
  (job, rank, sensor) streams over the shards — no wall-clock jitter.
  Gate: ≥3× throughput going 1 → 4 shards.
* ``measured`` — informational + sanity-gated at ≥1.5×.  Each apply is
  billed its real wall-clock microseconds (EWMA-smoothed estimates for
  queueing), so the number reflects actual columnar-ingest cost.

As with every bench here, a result over diverging answers measures
nothing: the 4-shard merged per-job matrices must be bit-identical to
the 1-shard ones before the times are trusted.  Results land in
``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, write_payload

from repro.runtime.records import SliceSummary
from repro.sensors.model import SensorType
from repro.service import AnalysisService, ShardCostModel

N_JOBS = 16
N_RANKS = 8
N_SLICES = 24
SLICE_BLOCK = 8          # slices per batch
SHARD_COUNTS = [1, 4]
WINDOW_US = 4000.0
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")

_SENSORS = ((1, SensorType.COMPUTATION), (2, SensorType.NETWORK))


def _job_stream(job: int) -> list[tuple[int, list[SliceSummary], int]]:
    """One tenant's deterministic batches; t_slice_start pinned to 0 so
    the ingest makespan measures apply cost, not program duration."""
    rng = random.Random(BENCH_SEED + job)
    stream = []
    for rank in range(N_RANKS):
        for seq, block_start in enumerate(range(0, N_SLICES, SLICE_BLOCK)):
            skew = 1.4 if rank == N_RANKS - 1 else 1.0
            batch = [
                SliceSummary(
                    rank=rank,
                    sensor_id=sensor_id,
                    sensor_type=stype,
                    group="",
                    slice_index=s,
                    t_slice_start=0.0,
                    mean_duration=(10.0 + rng.random()) * skew,
                    count=4,
                    mean_cache_miss=0.1,
                    job_id=job,
                )
                for s in range(block_start, block_start + SLICE_BLOCK)
                for sensor_id, stype in _SENSORS
            ]
            stream.append((rank, batch, seq))
    return stream


def _interleaved_stream():
    """All 16 tenants' batches, round-robin interleaved like a shared
    ingest front would see them."""
    per_job = {job: _job_stream(job) for job in range(N_JOBS)}
    events = []
    depth = max(len(s) for s in per_job.values())
    for i in range(depth):
        for job in range(N_JOBS):
            if i < len(per_job[job]):
                rank, batch, seq = per_job[job][i]
                events.append((job, rank, batch, seq))
    return events


def _warmup_events():
    """One row per (job, rank, sensor) stream, far outside the measured
    slice range: touches every shard-side per-job server once so the
    measured phase bills steady-state ingest, not server construction.
    Both shard configs get the identical warm-up, so the bit-identity
    check still compares like with like."""
    events = []
    for job in range(N_JOBS):
        for rank in range(N_RANKS):
            batch = [
                SliceSummary(
                    rank=rank,
                    sensor_id=sensor_id,
                    sensor_type=stype,
                    group="",
                    slice_index=100_000,
                    t_slice_start=0.0,
                    mean_duration=10.0,
                    count=4,
                    mean_cache_miss=0.1,
                    job_id=job,
                )
                for sensor_id, stype in _SENSORS
            ]
            events.append((job, rank, batch, None))
    return events


def _run(n_shards: int, cost: ShardCostModel, events):
    service = AnalysisService(
        n_shards,
        window_us=WINDOW_US,
        queue_limit=1_000_000,
        cost=cost,
    )
    ports = {job: service.register_job(job, N_RANKS) for job in range(N_JOBS)}
    for job, rank, batch, seq in _warmup_events():
        ports[job].receive_batch(rank, list(batch), seq=seq)
    service.finish()
    warm_rows = sum(shard.applied_rows for shard in service.shards)
    for shard in service.shards:
        shard.busy_until = 0.0
    service.clock = 0.0
    t0 = time.perf_counter()
    for job, rank, batch, seq in events:
        ports[job].receive_batch(rank, list(batch), seq=seq)
    service.finish()
    wall_s = time.perf_counter() - t0
    makespan_us = max(shard.busy_until for shard in service.shards)
    rows = sum(shard.applied_rows for shard in service.shards) - warm_rows
    return service, ports, makespan_us, rows, wall_s


@pytest.mark.slow
def test_service_shard_scaling():
    events = _interleaved_stream()
    total_rows = sum(len(batch) for _, _, batch, _ in events)
    results = []
    ports_by_config = {}
    for mode, cost in (
        ("deterministic", ShardCostModel(base_us=20.0, per_row_us=5.0)),
        ("measured", ShardCostModel(measured=True)),
    ):
        for n_shards in SHARD_COUNTS:
            service, ports, makespan_us, rows, wall_s = _run(n_shards, cost, events)
            assert rows == total_rows, "shards lost or duplicated rows"
            ports_by_config[(mode, n_shards)] = ports
            results.append(
                {
                    "mode": mode,
                    "shards": n_shards,
                    "jobs": N_JOBS,
                    "rows": rows,
                    "makespan_us": round(makespan_us, 1),
                    "throughput_rows_per_ms": round(rows / (makespan_us / 1000.0), 2),
                    "wall_seconds": round(wall_s, 4),
                }
            )

    # Sharded answers must match the unsharded ones bit-for-bit before
    # any throughput number means anything.
    for mode in ("deterministic", "measured"):
        solo = ports_by_config[(mode, 1)]
        wide = ports_by_config[(mode, 4)]
        for job in range(0, N_JOBS, 5):
            for stype in SensorType:
                assert np.array_equal(
                    solo[job].performance_matrix(stype),
                    wide[job].performance_matrix(stype),
                    equal_nan=True,
                ), f"job {job} {stype} diverged between 1 and 4 shards"
            assert solo[job].detect_inter_process() == wide[job].detect_inter_process()

    def throughput(mode, shards):
        for row in results:
            if (row["mode"], row["shards"]) == (mode, shards):
                return row["throughput_rows_per_ms"]
        raise KeyError((mode, shards))

    speedups = {
        mode: round(throughput(mode, 4) / throughput(mode, 1), 2)
        for mode in ("deterministic", "measured")
    }
    payload = {
        "benchmark": "sharded multi-tenant service: ingest throughput 1 vs 4 shards",
        "unit": "rows per virtual millisecond (service clock makespan)",
        "jobs": N_JOBS,
        "results": results,
        "speedups": speedups,
        #: machine-readable gate so dashboards show the pass criterion
        #: next to the number it judges (the measured ≥1.5x check is a
        #: jitter sanity bound, not the gate)
        "gate": {"mode": "deterministic", "min": 3.0},
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'mode':<14s} {'shards':>6s} {'makespan_us':>12s} {'rows/ms':>9s}")
    for row in results:
        print(
            f"{row['mode']:<14s} {row['shards']:>6d} "
            f"{row['makespan_us']:>12.1f} {row['throughput_rows_per_ms']:>9.2f}"
        )
    print(f"speedups: {speedups}")

    # The CI gate: virtual-time ingest throughput scales ≥3× from 1 to 4
    # shards under the deterministic cost model (pure placement balance),
    # and the measured mode keeps a clear (≥1.5×) win despite wall jitter.
    assert speedups["deterministic"] >= 3.0, speedups
    assert speedups["measured"] >= 1.5, speedups
