"""Figures 18-20: noise injection — profiler vs vSensor (§6.4).

CG runs with an external noiser stealing CPU from two node groups during
two separate episodes.  The comparison the paper draws:

* Fig. 18/19 (mpiP): all the profiler shows is the per-rank comp/MPI
  split; after injection, the *MPI* column grows (noise is absorbed into
  communication waits) while computation barely moves — the profile
  misleads toward the network and localizes nothing.
* Fig. 20 (vSensor): the computation matrix shows two white blocks at
  exactly the injected node groups and times.
"""

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.baselines import MpiProfiler
from repro.frontend import parse_source
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig, Simulator
from repro.viz import ascii_heatmap, write_pgm
from repro.workloads import get_workload

N_RANKS = 32
PER_NODE = 8


@pytest.fixture(scope="module")
def scenario():
    source = get_workload("CG").source(scale=3)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=PER_NODE)

    clean_profiler = MpiProfiler()
    Simulator(parse_source(source), machine).run(clean_profiler)
    clean = clean_profiler.profile()
    span = max(clean.total_time)

    injections = [
        CpuContention(node_ids=(1,), t0=0.25 * span, t1=0.45 * span, cpu_factor=0.35),
        CpuContention(node_ids=(3,), t0=0.60 * span, t1=0.80 * span, cpu_factor=0.35),
    ]
    noisy_profiler = MpiProfiler()
    Simulator(parse_source(source), machine, faults=tuple(injections)).run(noisy_profiler)
    noisy = noisy_profiler.profile()

    vrun = run_vsensor(
        source, machine, faults=injections, window_us=span / 16, batch_period_us=span / 16
    )
    return clean, noisy, vrun, injections, span


def test_fig18_19_profiler_misleads(benchmark, scenario):
    clean, noisy, _vrun, injections, _span = once(benchmark, lambda: scenario)

    # Ranks on an uninjected node (node 0 = ranks 0-7).
    witness = range(0, PER_NODE)
    clean_mpi = np.mean([clean.mpi_time[r] for r in witness])
    noisy_mpi = np.mean([noisy.mpi_time[r] for r in witness])
    clean_comp = np.mean([clean.comp_time()[r] for r in witness])
    noisy_comp = np.mean([noisy.comp_time()[r] for r in witness])

    print("\nFig. 18/19 — mpiP profile, uninjected ranks 0-7 (mean seconds)")
    print(f"  normal run : comp={clean_comp / 1e6:.3f}s  mpi={clean_mpi / 1e6:.3f}s")
    print(f"  injected   : comp={noisy_comp / 1e6:.3f}s  mpi={noisy_mpi / 1e6:.3f}s")
    print("  -> the injected CPU noise surfaces as *MPI* time on other ranks")

    assert noisy_mpi > clean_mpi * 1.3, "MPI time must absorb the injected noise"
    assert abs(noisy_comp - clean_comp) / clean_comp < 0.15, "computation looks unchanged"


def test_fig20_vsensor_localizes(benchmark, scenario, out_dir):
    _clean, _noisy, vrun, injections, span = once(benchmark, lambda: scenario)

    comp = vrun.report.matrices[SensorType.COMPUTATION]
    print("\nFig. 20 — vSensor computation matrix (two white blocks):")
    print(ascii_heatmap(comp, max_rows=32, max_cols=64))
    write_pgm(comp, f"{out_dir}/fig20_injection.pgm")

    regions = [
        r
        for r in vrun.report.regions
        if r.sensor_type is SensorType.COMPUTATION and r.cells >= 4
    ]
    for region in regions:
        print("  " + region.describe())
    assert len(regions) == 2, "exactly the two injections must appear"

    regions.sort(key=lambda r: r.t_start_us)
    first, second = regions
    # First injection: node 1 = ranks 8-15 at 25-45% of the run.
    assert (first.rank_lo, first.rank_hi) == (8, 15)
    assert first.t_start_us >= 0.15 * span and first.t_end_us <= 0.55 * span
    # Second injection: node 3 = ranks 24-31 at 60-80% of the run.
    assert (second.rank_lo, second.rank_hi) == (24, 31)
    assert second.t_start_us >= 0.50 * span and second.t_end_us <= 0.90 * span


def test_fig20_no_blocks_without_injection(benchmark):
    source = get_workload("CG").source(scale=3)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=PER_NODE)
    vrun = once(benchmark, lambda: run_vsensor(source, machine, window_us=20_000))
    regions = [
        r
        for r in vrun.report.regions
        if r.sensor_type is SensorType.COMPUTATION and r.cells >= 4
    ]
    assert regions == []
