"""Transport robustness sweep: detection F-score vs. channel loss rate.

The Fig 18-20 injection scenario (CG, 32 ranks, two CPU-contention
episodes) is replayed with the rank→server batches routed over a seeded
lossy channel at increasing drop rates, with duplication and reordering
enabled throughout.  Two curves are recorded to ``BENCH_transport.json``:

* **retry** — the real transport (sequenced batches, ack/timeout/backoff
  retransmission, idempotent ingest).  The paper's localization must
  survive: F-score stays at 1.0 through the 10% acceptance point and
  beyond, bought with retransmissions rather than lost telemetry.
* **no-retry** — the same channel with the retry budget cut to a single
  attempt, i.e. what the pipeline looked like before this transport
  existed.  This curve shows what the hardening is worth: coverage decays
  with the drop rate and verdict confidence falls with it.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_payload

from repro.api import run_vsensor
from repro.runtime.quality import score_detection
from repro.runtime.transport import RetryPolicy
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig
from repro.workloads import get_workload

N_RANKS = 32
PER_NODE = 8
SCALE = 2
DROP_RATES = [0.0, 0.05, 0.10, 0.20, 0.30]
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_transport.json")


@pytest.mark.slow
def test_transport_loss_sweep(out_dir):
    source = get_workload("CG").source(scale=SCALE)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=PER_NODE)
    probe = run_vsensor(source, machine)
    span = probe.sim.total_time
    injections = [
        CpuContention(node_ids=(1,), t0=0.25 * span, t1=0.45 * span, cpu_factor=0.35),
        CpuContention(node_ids=(3,), t0=0.60 * span, t1=0.80 * span, cpu_factor=0.35),
    ]

    def run_point(drop: float, retry: bool):
        run = run_vsensor(
            source,
            machine,
            faults=injections,
            window_us=span / 16,
            batch_period_us=span / 16,
            channel=f"drop={drop},dup=0.1,reorder=0.2",
            retry_policy=None if retry else RetryPolicy(max_attempts=1),
        )
        score = score_detection(
            run.report,
            injections,
            machine,
            min_cells=4,
            sensor_types=(SensorType.COMPUTATION,),
        )
        stats = run.channel_stats or {}
        return {
            "drop_rate": drop,
            "retry": retry,
            "f_score": round(score.f_score, 4),
            "recall": round(score.recall, 4),
            "precision": round(score.precision, 4),
            "coverage_confidence": round(run.report.coverage_confidence, 4),
            "degraded_ranks": len(run.report.degraded_ranks),
            "sent": stats.get("sent", 0),
            "dropped": stats.get("dropped", 0),
            "retried": stats.get("retried", 0),
            "deduplicated_batches": run.report.duplicate_batches,
        }

    rows = [run_point(drop, retry) for retry in (True, False) for drop in DROP_RATES]

    payload = {
        "benchmark": "detection F-score vs. channel loss rate (Fig 18-20 scenario)",
        "scenario": f"CG scale={SCALE}, {N_RANKS} ranks, two CPU-contention episodes",
        "channel": "dup=0.1 reorder=0.2, drop swept; seeded deterministic",
        "results": rows,
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'mode':<9s} {'drop':>5s} {'F':>6s} {'cover':>6s} {'degr':>5s} "
          f"{'sent':>5s} {'retried':>8s}")
    for row in rows:
        mode = "retry" if row["retry"] else "no-retry"
        print(
            f"{mode:<9s} {row['drop_rate']:>5.2f} {row['f_score']:>6.2f} "
            f"{row['coverage_confidence']:>6.2f} {row['degraded_ranks']:>5d} "
            f"{row['sent']:>5d} {row['retried']:>8d}"
        )

    with_retry = {r["drop_rate"]: r for r in rows if r["retry"]}
    # The acceptance gate: at 10% drop (+dup+reorder) localization is intact.
    assert with_retry[0.10]["f_score"] == 1.0
    # And the retry transport holds detection through the whole sweep.
    assert all(r["f_score"] == 1.0 for r in with_retry.values())
    assert with_retry[0.30]["retried"] > 0
    # Loss must actually have been exercised.
    assert with_retry[0.30]["dropped"] > 0


if __name__ == "__main__":
    test_transport_loss_sweep(os.path.join(os.path.dirname(__file__), "..", "out"))
