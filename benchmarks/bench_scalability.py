"""Scaling behaviour: overhead and data rate vs process count.

The paper's headline: overhead below 4% with up to 16,384 processes, and
the analysis server's inbound traffic stays small (8 MB/s extrapolated at
16,384 ranks).  We sweep the rank count on CG and check both properties
hold flat — the detection pipeline is O(records) per rank and the server
receives per-slice summaries, so nothing grows superlinearly per rank.
"""

import pytest

from benchmarks.conftest import once
from repro.api import run_uninstrumented, run_vsensor
from repro.sim import MachineConfig
from repro.workloads import get_workload

RANK_COUNTS = [8, 32, 96]


def test_scalability_overhead_and_data_rate(benchmark):
    source = get_workload("CG").source(scale=1)

    def scenario():
        rows = {}
        for n in RANK_COUNTS:
            machine = MachineConfig(n_ranks=n, ranks_per_node=8)
            base = run_uninstrumented(source, machine)
            run = run_vsensor(source, machine)
            overhead = run.sim.total_time / base.total_time - 1.0
            rate = run.report.data_rate_kb_per_s()
            rows[n] = (overhead, rate, run.report.bytes_to_server)
        return rows

    rows = once(benchmark, scenario)
    print("\nscalability — CG, overhead and per-process data rate vs ranks")
    print("  ranks  overhead   KB/s/process   total-KiB")
    for n, (overhead, rate, total) in rows.items():
        print(f"  {n:5d}  {overhead:7.2%}   {rate:10.2f}   {total / 1024:9.1f}")

    for n, (overhead, rate, _total) in rows.items():
        assert overhead < 0.04, f"overhead at {n} ranks"

    # Per-process data rate must stay flat as ranks grow (within 2x),
    # i.e. total server traffic grows linearly, not worse.
    rates = [rows[n][1] for n in RANK_COUNTS]
    assert max(rates) < 2.0 * min(rates)


def test_detection_work_scales_linearly():
    """Per-rank records processed is rank-count independent."""
    source = get_workload("CG").source(scale=1)
    per_rank = {}
    for n in (8, 32):
        run = run_vsensor(source, MachineConfig(n_ranks=n, ranks_per_node=8))
        processed = sum(d.records_processed for d in run.runtime.detectors.values())
        per_rank[n] = processed / n
    assert per_rank[32] == pytest.approx(per_rank[8], rel=0.05)
