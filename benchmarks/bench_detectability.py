"""Detectability sweep: how much slowdown does a fault need to be seen?

Not a paper figure — a characterization the paper implies (its detection
threshold is a normalized-performance cut at runtime).  We sweep the CPU
contention factor on one node and score detection against ground truth:
mild disturbances below the detector threshold stay silent (no false
alarms either), strong ones are detected with full recall/precision.
"""

import pytest

from benchmarks.conftest import once
from repro.api import run_vsensor
from repro.runtime.quality import score_detection
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig
from repro.workloads import get_workload

N_RANKS = 16


def test_detectability_sweep(benchmark):
    source = get_workload("CG").source(scale=2)
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=8)

    def scenario():
        probe = run_vsensor(source, machine)
        span = probe.sim.total_time
        results = {}
        for factor in (0.95, 0.8, 0.5, 0.25):
            faults = [
                CpuContention(node_ids=(1,), t0=0.3 * span, t1=0.7 * span, cpu_factor=factor)
            ]
            run = run_vsensor(
                source,
                machine,
                faults=faults,
                window_us=span / 12,
                batch_period_us=span / 12,
            )
            run.report.regions = [
                r for r in run.report.regions if r.sensor_type is SensorType.COMPUTATION
            ]
            results[factor] = score_detection(run.report, faults, machine)
        return results

    results = once(benchmark, scenario)
    print("\ndetectability — CPU contention factor vs detection score (threshold 0.7)")
    for factor, score in results.items():
        print(f"  cpu_factor={factor:4.2f} (slowdown {1 / factor:4.2f}x): {score.describe()}")

    # A 5% disturbance sits inside noise: silent, and nothing spurious.
    assert results[0.95].detected == []
    # Strong disturbances are fully detected with no false regions.
    for factor in (0.5, 0.25):
        assert results[factor].recall == 1.0, f"factor {factor}"
        assert results[factor].precision == 1.0, f"factor {factor}"
