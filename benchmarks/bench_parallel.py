"""Parallel multi-job runner: 16 jobs at 1 vs 4 workers, bit-identical.

Two numbers, one discipline:

* ``modeled`` — the CI gate (≥3× at 4 workers).  Phase 1 of
  :func:`~repro.api.run_multi_job` is embarrassingly parallel: each
  job's compile+simulate is measured *serially* (that is exactly the
  ``workers=1`` cost), then the pool's deterministic round-robin
  placement (task *i* → worker ``i % N``) gives the parallel makespan as
  ``max over workers of the sum of that worker's task times``.  Like the
  virtual-clock gate of ``BENCH_service.json``, this is a placement/
  balance property, valid on any host — including single-CPU CI runners
  where real processes cannot physically overlap.
* ``wall`` — informational.  Actual wall-clock of ``run_multi_job`` at
  both worker counts, pool spawn and pickle overhead included.  On a
  multi-core host this approaches the modeled number; on a one-core
  runner it hovers near (or below) 1× and is deliberately not gated.

A speedup over diverging answers measures nothing: before any number is
reported, every job's merged matrices and detection F-score at 4 workers
must be bit-identical to the ``workers=1`` run.  Results land in
``BENCH_parallel.json`` at the repo root (picked up by the
``--bench-dogfood`` history scan).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_payload

from repro.api import JobSpec, run_multi_job, run_vsensor
from repro.parallel import JobTask, simulate_job
from repro.runtime.quality import score_detection
from repro.sim import MachineConfig
from repro.sim.faults import CpuContention
from tests.conftest import SIMPLE_MPI_PROGRAM

N_JOBS = 16
N_RANKS = 4
WORKER_COUNTS = [1, 4]
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_parallel.json")


def _machine(seed: int) -> MachineConfig:
    return MachineConfig(n_ranks=N_RANKS, ranks_per_node=2, seed=seed)


def _specs(span: float) -> list[JobSpec]:
    """16 tenants; every fourth one carries a CPU-contention fault so the
    bit-identity check covers detection, not just clean matrices."""
    specs = []
    for job in range(N_JOBS):
        faults = (
            [CpuContention(node_ids=(1,), t0=0.2 * span, t1=0.7 * span, cpu_factor=0.3)]
            if job % 4 == 0
            else []
        )
        specs.append(JobSpec(SIMPLE_MPI_PROGRAM, _machine(100 + job), faults=faults))
    return specs


def _kwargs(span: float) -> dict:
    return dict(n_shards=4, window_us=span / 10, batch_period_us=span / 10, store=None)


def _modeled_makespan(task_seconds: list[float], workers: int) -> float:
    """Round-robin placement makespan: worker w runs tasks w, w+N, ..."""
    return max(
        sum(task_seconds[i] for i in range(w, len(task_seconds), workers))
        for w in range(workers)
    )


@pytest.mark.slow
def test_parallel_runner_scaling():
    span = run_vsensor(SIMPLE_MPI_PROGRAM, _machine(100), store=None).sim.total_time
    specs = _specs(span)
    kw = _kwargs(span)

    # Serial per-job phase-1 cost — the workers=1 baseline, task by task.
    tasks = [
        JobTask(
            job_id=job_id,
            source=spec.source,
            machine=spec.machine,
            faults=tuple(spec.faults),
            detector=spec.detector,
            rule=spec.rule,
            engine=spec.engine,
            max_depth=spec.max_depth,
            batch_period_us=kw["batch_period_us"],
        )
        for job_id, spec in enumerate(specs)
    ]
    simulate_job(tasks[0])  # warm imports/compile machinery untimed, so
    # one-time costs don't masquerade as task-0 imbalance in the model
    task_seconds = []
    for task in tasks:
        t0 = time.perf_counter()
        simulate_job(task)
        task_seconds.append(time.perf_counter() - t0)

    runs = {}
    wall = {}
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        runs[workers] = run_multi_job(specs, workers=workers, **kw)
        wall[workers] = time.perf_counter() - t0

    # Bit-identity first: matrices and F-scores at 4 workers must equal
    # the serial run's, job by job, before any speedup is believed.
    for job_id, spec in enumerate(specs):
        serial_job = runs[1].jobs[job_id]
        fanned_job = runs[4].jobs[job_id]
        assert set(serial_job.report.matrices) == set(fanned_job.report.matrices)
        for stype in serial_job.report.matrices:
            assert np.array_equal(
                serial_job.report.matrices[stype],
                fanned_job.report.matrices[stype],
                equal_nan=True,
            ), f"job {job_id} {stype} matrix differs at 4 workers"
        assert serial_job.report.regions == fanned_job.report.regions
        assert serial_job.report.inter_events == fanned_job.report.inter_events
        score_serial = score_detection(serial_job.report, list(spec.faults), spec.machine)
        score_fanned = score_detection(fanned_job.report, list(spec.faults), spec.machine)
        assert score_serial.f_score == score_fanned.f_score

    modeled = {w: _modeled_makespan(task_seconds, w) for w in WORKER_COUNTS}
    modeled_speedup = round(modeled[1] / modeled[4], 2)
    wall_speedup = round(wall[1] / wall[4], 2)

    payload = {
        "benchmark": "parallel multi-job runner: phase-1 fan-out 1 vs 4 workers",
        "unit": "seconds (phase-1 makespan; modeled = round-robin placement)",
        "jobs": N_JOBS,
        "bit_identical": True,
        "results": [
            {
                "workers": w,
                "modeled_makespan_s": round(modeled[w], 4),
                "wall_seconds": round(wall[w], 4),
            }
            for w in WORKER_COUNTS
        ],
        "speedups": {"modeled": modeled_speedup, "wall": wall_speedup},
        #: the gate judges the placement-balance (modeled) number — wall
        #: clock on a single-CPU CI runner cannot overlap real processes
        "gate": {"mode": "modeled", "min": 3.0},
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'workers':>7s} {'modeled_s':>10s} {'wall_s':>8s}")
    for w in WORKER_COUNTS:
        print(f"{w:>7d} {modeled[w]:>10.4f} {wall[w]:>8.4f}")
    print(f"speedups: modeled {modeled_speedup}x, wall {wall_speedup}x")

    # The CI gate: 16 near-equal jobs over 4 round-robin workers give a
    # ≥3× phase-1 makespan reduction (exactly 4× under perfect balance).
    assert modeled_speedup >= 3.0, payload["speedups"]
