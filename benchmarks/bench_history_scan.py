"""History-scan benchmark: hunter throughput over a synthetic fleet trajectory.

Builds a :class:`~repro.history.RunStore` holding 240 synthetic runs (a
200-run main trajectory with two injected regressions plus a 40-run quiet
side trajectory), times a full :class:`~repro.history.RegressionHunter`
pass over it, and gates on the subsystem's contract rather than raw
speed:

* **deterministic** — two independent scans produce bit-identical
  finding lists (the acceptance criterion of the history subsystem);
* **correct** — both injected steps are recovered within ±1 run and
  nothing in the quiet trajectory is flagged;
* throughput (runs/s, series/s) is recorded as trajectory data in
  ``BENCH_history.json``, not asserted — wall time is hardware.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from benchmarks.conftest import write_payload

from repro.history import (
    EDivisive,
    RegressionHunter,
    RunRecord,
    RunStore,
    SensorBaseline,
)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.json")

MAIN_FP = "a" * 64
QUIET_FP = "b" * 64
N_MAIN = 200
N_QUIET = 40
N_SENSORS = 10
#: injected steps: (run index, series the hunter should flag)
PERF_DROP_AT = 150
TIME_RISE_AT = 80


def _baseline(rng, sensor_id: int, perf: float, jitter: bool = False) -> SensorBaseline:
    # Only the injected sensor carries jitter: constant series are
    # deterministically quiet, so every other sensor is guaranteed noise-free
    # and the payload's finding count stays pinned at the injected steps.
    noise = rng.normal(0.0, 0.004) if jitter else 0.0
    p50 = min(1.0, max(0.0, perf + noise))
    return SensorBaseline(
        sensor_id=sensor_id,
        sensor_type="COMPUTATION" if sensor_id % 3 else "NETWORK",
        median_perf=p50,
        p95_perf=min(1.0, p50 + 0.01),
        count=64,
        standard_us=40.0 + sensor_id,
    )


def _build_store(root: str) -> RunStore:
    rng = np.random.Generator(np.random.PCG64(20180224))
    store = RunStore(root)
    for index in range(N_MAIN):
        sensors = tuple(
            _baseline(
                rng,
                sensor_id,
                0.72 if sensor_id == 3 and index >= PERF_DROP_AT else 0.97,
                jitter=sensor_id == 3,
            )
            for sensor_id in range(N_SENSORS)
        )
        total = 1.0e6 * (1.08 if index >= TIME_RISE_AT else 1.0)
        store.append(
            RunRecord(
                fingerprint=MAIN_FP,
                label=f"run-{index:03d}",
                total_time_us=total + rng.normal(0.0, 1500.0),
                intra_events=int(rng.integers(0, 3)),
                sensors=sensors,
            )
        )
    for index in range(N_QUIET):
        store.append(
            RunRecord(
                fingerprint=QUIET_FP,
                label=f"side-{index:03d}",
                total_time_us=5.0e5 + rng.normal(0.0, 800.0),
                sensors=tuple(
                    _baseline(rng, sensor_id, 0.98) for sensor_id in range(4)
                ),
            )
        )
    return store


def _hunter() -> RegressionHunter:
    return RegressionHunter(
        detector=EDivisive(
            seed=20180224, permutations=199, significance=0.05, min_segment=5
        )
    )


def test_history_scan_throughput():
    with tempfile.TemporaryDirectory() as root:
        store = _build_store(root)
        assert store.total_runs() == N_MAIN + N_QUIET >= 200

        t0 = time.perf_counter()
        scan = _hunter().scan_store(store)
        seconds = time.perf_counter() - t0

        # Gate 1: bit-identical findings from an independent second pass.
        again = _hunter().scan_store(store)
        assert scan.findings == again.findings
        assert scan.runs_scanned == again.runs_scanned

        # Gate 2: both injected steps recovered within +-1 run, on the
        # right trajectory, as regressions.
        perf_hits = [
            f
            for f in scan.regressions
            if f.fingerprint == MAIN_FP and f.series == "sensor[3].median_perf"
        ]
        assert perf_hits and abs(perf_hits[0].change.index - PERF_DROP_AT) <= 1
        time_hits = [
            f
            for f in scan.regressions
            if f.fingerprint == MAIN_FP and f.series == "run.total_time_us"
        ]
        assert time_hits and abs(time_hits[0].change.index - TIME_RISE_AT) <= 1

        # Gate 3: the quiet side trajectory stays quiet.
        assert not [f for f in scan.findings if f.fingerprint == QUIET_FP]

        payload = {
            "benchmark": "history scan: e-divisive hunt over a 240-run store",
            "gate": {
                "deterministic": "two scans bit-identical",
                "injected": {
                    "sensor[3].median_perf": PERF_DROP_AT,
                    "run.total_time_us": TIME_RISE_AT,
                },
                "quiet_trajectory_findings": 0,
            },
            "results": {
                "runs": store.total_runs(),
                "series_scanned": scan.series_scanned,
                "series_skipped": scan.series_skipped,
                "findings": len(scan.findings),
                "regressions": len(scan.regressions),
                "seconds": round(seconds, 4),
                "runs_per_s": round(store.total_runs() / seconds, 1),
                "series_per_s": round(scan.series_scanned / seconds, 1),
            },
        }
        write_payload(JSON_PATH, payload)
        print(
            f"\nhistory scan: {store.total_runs()} runs / "
            f"{scan.series_scanned} series in {seconds:.3f}s "
            f"({store.total_runs() / seconds:.0f} runs/s), "
            f"{len(scan.regressions)} regression(s)"
        )
