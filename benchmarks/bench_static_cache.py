"""Static-compile artifact cache: cold vs warm trajectory.

Times ``compile_and_instrument`` over every bundled workload twice against
one artifact store — a cold compile (every pass executes) and a warm one
(every pass is a content-hash cache hit) — and writes the measurements to
``BENCH_static.json`` at the repo root.

The shape this pins: warm compiles are ≥5× faster than cold in aggregate,
and the cached output is *bit-identical* to a fresh uncached compile —
emitted source and sensor registry alike — including after a targeted
mid-pipeline invalidation (the dataflow artifact is dropped, recomputes,
and every downstream stage still hits because keys derive from content).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_payload

from repro.api import compile_and_instrument
from repro.pipeline import ArtifactStore
from repro.workloads import all_workloads

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_static.json")
REPS = 5


def _compile(source, name, store):
    return compile_and_instrument(source, filename=name, store=store)


def _best(fn) -> tuple[float, object]:
    """Best-of-REPS wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.slow
def test_static_cache_trajectory():
    rows = []
    cold_total = warm_total = 0.0
    for name, workload in sorted(all_workloads().items()):
        source = workload.source(scale=1)

        # Cold: a fresh store per rep, so every pass executes every time.
        def cold_compile():
            return _compile(source, name, ArtifactStore())

        cold_s, cold_static = _best(cold_compile)
        assert cold_static.profile.misses == 7

        # Warm: one primed store; every pass is a cache hit.
        store = ArtifactStore()
        _compile(source, name, store)
        warm_s, warm_static = _best(lambda: _compile(source, name, store))
        assert warm_static.profile.hits == 7

        # Bit-identical proof: warm output == fresh uncached output.
        fresh = _compile(source, name, None)
        assert warm_static.source == fresh.source
        assert sorted(warm_static.program.sensors) == sorted(fresh.program.sensors)

        # Targeted invalidation: dataflow recomputes, downstream still hits,
        # output unchanged.
        store.invalidate_pass("dataflow")
        revalidated = _compile(source, name, store)
        outcome = {t.name: t.cache_hit for t in revalidated.profile.timings}
        assert outcome["dataflow"] is False
        assert outcome["identify"] and outcome["select"] and outcome["instrument"]
        assert revalidated.source == fresh.source

        cold_total += cold_s
        warm_total += warm_s
        rows.append(
            {
                "workload": name,
                "cold_seconds": round(cold_s, 6),
                "warm_seconds": round(warm_s, 6),
                "speedup": round(cold_s / warm_s, 2),
                "bit_identical_to_uncached": True,
                "invalidation_preserves_output": True,
            }
        )

    aggregate = cold_total / warm_total
    payload = {
        "benchmark": "static pipeline: cold compile vs warm artifact cache",
        "unit": "best-of-%d wall-clock seconds per compile_and_instrument" % REPS,
        "results": rows,
        "aggregate": {
            "cold_seconds": round(cold_total, 6),
            "warm_seconds": round(warm_total, 6),
            "speedup": round(aggregate, 2),
        },
    }
    write_payload(JSON_PATH, payload)

    print(f"\n{'workload':<10s} {'cold (ms)':>10s} {'warm (ms)':>10s} {'speedup':>8s}")
    for row in rows:
        print(
            f"{row['workload']:<10s} {row['cold_seconds'] * 1e3:>10.3f} "
            f"{row['warm_seconds'] * 1e3:>10.3f} {row['speedup']:>7.2f}x"
        )
    print(f"{'TOTAL':<10s} {cold_total * 1e3:>10.3f} {warm_total * 1e3:>10.3f} "
          f"{aggregate:>7.2f}x")

    # The acceptance gate: warm ≥5× faster than cold in aggregate.
    assert aggregate >= 5.0


if __name__ == "__main__":
    test_static_cache_trajectory()
