"""Visualizer tests."""

import numpy as np
import pytest

from repro.viz import ascii_heatmap, matrix_to_csv, summarize_matrix, write_pgm


def test_ascii_shape():
    matrix = np.ones((4, 10))
    art = ascii_heatmap(matrix)
    lines = art.splitlines()
    assert len(lines) == 4
    assert all(len(l) == 10 for l in lines)


def test_best_renders_dense_degraded_light():
    matrix = np.array([[1.0, 0.5]])
    art = ascii_heatmap(matrix)
    dense, light = art[0], art[1]
    assert dense == "@"
    assert light == " "


def test_nan_renders_question_mark():
    matrix = np.array([[np.nan, 1.0]])
    assert ascii_heatmap(matrix)[0] == "?"


def test_downsampling_bounds_output():
    matrix = np.ones((200, 500))
    art = ascii_heatmap(matrix, max_rows=20, max_cols=50)
    lines = art.splitlines()
    assert len(lines) <= 20
    assert all(len(l) <= 50 for l in lines)


def test_non_2d_raises():
    with pytest.raises(ValueError):
        ascii_heatmap(np.ones(5))


def test_pgm_export(tmp_path):
    matrix = np.array([[1.0, 0.5], [np.nan, 0.75]])
    path = tmp_path / "matrix.pgm"
    write_pgm(matrix, str(path))
    data = path.read_bytes()
    assert data.startswith(b"P5\n2 2\n255\n")
    pixels = data.split(b"255\n", 1)[1]
    assert len(pixels) == 4
    assert pixels[0] == 0      # perf 1.0 -> dark
    assert pixels[1] == 255    # perf 0.5 -> white
    assert pixels[2] == 128    # NaN -> mid gray


def test_csv_export(tmp_path):
    matrix = np.array([[1.0, np.nan], [0.5, 0.8]])
    path = tmp_path / "matrix.csv"
    matrix_to_csv(matrix, str(path), window_us=200_000.0)
    lines = path.read_text().splitlines()
    assert lines[0] == "rank,0.000,0.200"
    assert lines[1] == "0,1.0000,"
    assert lines[2].startswith("1,0.5000")


def test_summarize_matrix():
    matrix = np.array([[1.0, 0.5, np.nan]])
    stats = summarize_matrix(matrix)
    assert stats["cells"] == 2
    assert stats["min"] == 0.5
    assert stats["low_fraction"] == pytest.approx(0.5)


def test_summarize_empty():
    stats = summarize_matrix(np.full((2, 2), np.nan))
    assert stats["cells"] == 0
