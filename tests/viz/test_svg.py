"""SVG exporter tests."""

import numpy as np
import pytest

from repro.viz.svg import _perf_color, histogram_to_svg, matrix_to_svg


def test_matrix_svg_written(tmp_path):
    path = tmp_path / "m.svg"
    matrix = np.array([[1.0, 0.5], [np.nan, 0.8]])
    matrix_to_svg(matrix, str(path), title="Comp performance")
    text = path.read_text()
    assert text.startswith("<svg")
    assert text.count("<rect") == 4
    assert "Comp performance" in text
    assert "Process ID" in text and "Time progress" in text


def test_perf_color_endpoints():
    assert _perf_color(1.0) != _perf_color(0.5)
    assert _perf_color(float("nan")) == "#d0d0d0"
    # Degraded is lighter (higher red channel) than best.
    best = int(_perf_color(1.0)[1:3], 16)
    worst = int(_perf_color(0.5)[1:3], 16)
    assert worst > best


def test_color_clipped_outside_range():
    assert _perf_color(2.0) == _perf_color(1.0)
    assert _perf_color(0.0) == _perf_color(0.5)


def test_histogram_svg(tmp_path):
    path = tmp_path / "h.svg"
    histogram_to_svg({"<100us": 1000, "100us~10ms": 10, ">1s": 0}, str(path), title="durations")
    text = path.read_text()
    assert text.count("<rect") == 3
    assert "1000" in text and "durations" in text


def test_title_escaped(tmp_path):
    path = tmp_path / "e.svg"
    matrix_to_svg(np.ones((1, 1)), str(path), title="a<b & c>d")
    text = path.read_text()
    assert "a&lt;b &amp; c&gt;d" in text
