"""CSV export and summary of performance matrices, including missing cells."""

import numpy as np
import pytest

from repro.viz.matrix import matrix_to_csv, summarize_matrix


def _read_rows(path):
    lines = path.read_text().splitlines()
    return lines[0].split(","), [line.split(",") for line in lines[1:]]


def test_csv_header_is_window_start_seconds(tmp_path):
    path = tmp_path / "m.csv"
    matrix_to_csv(np.ones((2, 3)), str(path), window_us=200_000.0)
    header, rows = _read_rows(path)
    assert header == ["rank", "0.000", "0.200", "0.400"]
    assert [r[0] for r in rows] == ["0", "1"]


def test_missing_cells_render_as_empty_fields(tmp_path):
    matrix = np.array([[1.0, np.nan, 0.5], [np.nan, np.nan, np.nan]])
    path = tmp_path / "m.csv"
    matrix_to_csv(matrix, str(path), window_us=1e6)
    _, rows = _read_rows(path)
    assert rows[0] == ["0", "1.0000", "", "0.5000"]
    assert rows[1] == ["1", "", "", ""]  # fully-degraded rank: all cells empty


def test_csv_round_trips_through_numpy(tmp_path):
    matrix = np.array([[0.9, np.nan], [0.25, 1.0]])
    path = tmp_path / "m.csv"
    matrix_to_csv(matrix, str(path), window_us=200_000.0)
    back = np.genfromtxt(str(path), delimiter=",", skip_header=1)[:, 1:]
    assert np.allclose(back, matrix, equal_nan=True, atol=1e-4)


def test_infinite_values_render_as_missing(tmp_path):
    matrix = np.array([[np.inf, -np.inf, 0.75]])
    path = tmp_path / "m.csv"
    matrix_to_csv(matrix, str(path), window_us=1e6)
    _, rows = _read_rows(path)
    assert rows[0] == ["0", "", "", "0.7500"]


def test_summary_of_partial_matrix_ignores_missing_cells():
    matrix = np.array([[1.0, np.nan], [0.5, np.nan]])
    summary = summarize_matrix(matrix)
    assert summary["cells"] == 2
    assert summary["mean"] == pytest.approx(0.75)
    assert summary["min"] == pytest.approx(0.5)
    assert summary["low_fraction"] == pytest.approx(0.5)


def test_summary_of_all_missing_matrix():
    summary = summarize_matrix(np.full((3, 4), np.nan))
    assert summary["cells"] == 0
    assert np.isnan(summary["mean"]) and np.isnan(summary["min"])
    assert summary["low_fraction"] == 0.0


def test_summary_of_empty_matrix():
    summary = summarize_matrix(np.zeros((0, 0)))
    assert summary["cells"] == 0
    assert summary["low_fraction"] == 0.0
