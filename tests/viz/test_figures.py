"""Figure-data helper tests (Figs. 12, 15-17)."""

import numpy as np
import pytest

from repro.viz.figures import (
    duration_histogram,
    interval_histogram,
    intervals_between_senses,
    sense_stats,
    series_to_csv,
)


def test_duration_buckets():
    durations = np.array([10.0, 50.0, 500.0, 50_000.0, 2_000_000.0])
    hist = duration_histogram(durations)
    assert hist["<100us"] == 2
    assert hist["100us~10ms"] == 1
    assert hist["10ms~1s"] == 1
    assert hist[">1s"] == 1


def test_interval_buckets_same_scheme():
    hist = interval_histogram(np.array([5.0]))
    assert hist["<100us"] == 1


def test_empty_histogram():
    hist = duration_histogram(np.array([]))
    assert sum(hist.values()) == 0


def test_sense_stats_coverage():
    starts = np.array([0.0, 100.0, 200.0])
    ends = np.array([50.0, 150.0, 250.0])
    stats = sense_stats(starts, ends, total_time_us=300.0)
    assert stats.coverage == pytest.approx(0.5)
    assert stats.frequency_mhz == pytest.approx(3 / 300.0)


def test_sense_stats_merges_overlaps():
    starts = np.array([0.0, 25.0])
    ends = np.array([50.0, 75.0])
    stats = sense_stats(starts, ends, total_time_us=100.0)
    assert stats.sense_time_us == pytest.approx(75.0)


def test_sense_stats_empty():
    stats = sense_stats(np.array([]), np.array([]), total_time_us=100.0)
    assert stats.coverage == 0.0
    assert stats.sense_count == 0


def test_intervals_between_senses():
    starts = np.array([0.0, 100.0, 300.0])
    ends = np.array([50.0, 150.0, 350.0])
    gaps = intervals_between_senses(starts, ends)
    assert list(gaps) == [50.0, 150.0]


def test_intervals_unsorted_input():
    starts = np.array([300.0, 0.0])
    ends = np.array([350.0, 50.0])
    gaps = intervals_between_senses(starts, ends)
    assert list(gaps) == [250.0]


def test_series_to_csv(tmp_path):
    path = tmp_path / "series.csv"
    series_to_csv(str(path), {"a": np.array([1.0, 2.0]), "b": np.array([3.0])})
    lines = path.read_text().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,3"
    assert lines[2] == "2,"
