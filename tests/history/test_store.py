"""RunStore units + the ``run_vsensor(history_store=)`` auto-append wiring."""

from __future__ import annotations

import json

import pytest

from repro.api import run_vsensor
from repro.history import (
    HistoryStoreError,
    RunRecord,
    RunStore,
    SensorBaseline,
    decode_record,
    encode_record,
)
from repro.obs import Obs

FP = "a" * 64


def _record(seq: int = -1, label: str = "") -> RunRecord:
    return RunRecord(
        fingerprint=FP,
        seq=seq,
        label=label,
        total_time_us=1000.0 + seq,
        sensors=(SensorBaseline(7, "COMPUTATION", 0.99, 1.0, 12, 42.0),),
    )


def test_append_assigns_sequential_seq(tmp_path):
    store = RunStore(tmp_path)
    assert store.count(FP) == 0
    first = store.append(_record(label="a"))
    second = store.append(_record(label="b"))
    assert (first.seq, second.seq) == (0, 1)
    # A fresh instance recounts from disk and continues the sequence.
    third = RunStore(tmp_path).append(_record(label="c"))
    assert third.seq == 2
    assert [r.label for r in store.runs(FP)] == ["a", "b", "c"]


def test_encode_is_canonical_and_roundtrips():
    record = _record(seq=3)
    line = encode_record(record)
    doc = json.loads(line)
    assert list(doc) == sorted(doc)  # sorted keys at the top level
    assert decode_record(line) == record
    assert encode_record(decode_record(line)) == line


def test_corrupt_line_raises(tmp_path):
    store = RunStore(tmp_path)
    store.append(_record())
    path = store.path_for(FP)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("{not json\n")
    with pytest.raises(HistoryStoreError, match="corrupt"):
        RunStore(tmp_path).runs(FP)


def test_reordered_trajectory_is_detected(tmp_path):
    store = RunStore(tmp_path)
    store.append(_record())
    store.append(_record())
    path = store.path_for(FP)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(reversed(lines)) + "\n")
    with pytest.raises(HistoryStoreError, match="reordered"):
        RunStore(tmp_path).runs(FP)


def test_newer_schema_is_rejected():
    doc = _record(seq=0).to_json()
    doc["schema"] = 999
    with pytest.raises(HistoryStoreError, match="newer"):
        decode_record(json.dumps(doc))


def test_bad_fingerprint_key_rejected(tmp_path):
    store = RunStore(tmp_path)
    with pytest.raises(HistoryStoreError):
        store.path_for("../escape")
    with pytest.raises(HistoryStoreError):
        store.path_for("")


def test_non_finite_total_time_rejected(tmp_path):
    store = RunStore(tmp_path)
    bad = RunRecord(fingerprint=FP, total_time_us=float("inf"))
    with pytest.raises(HistoryStoreError, match="finite"):
        store.append(bad)


def test_missing_trajectory_is_empty(tmp_path):
    assert RunStore(tmp_path).runs("b" * 64) == []
    assert RunStore(tmp_path).fingerprints() == []


# -- run_vsensor auto-append ----------------------------------------------


def test_run_vsensor_appends_to_history_store(tmp_path, simple_module, small_machine):
    from tests.conftest import SIMPLE_MPI_PROGRAM

    first = run_vsensor(
        SIMPLE_MPI_PROGRAM, small_machine, history_store=tmp_path, history_label="r0"
    )
    second = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        small_machine,
        history_store=RunStore(tmp_path),  # prebuilt store object also accepted
        history_label="r1",
    )
    assert first.history_entry is not None and second.history_entry is not None
    assert first.history_entry.fingerprint == second.history_entry.fingerprint
    assert (first.history_entry.seq, second.history_entry.seq) == (0, 1)
    assert first.history_entry.label == "r0"
    assert first.history_entry.sensors, "instrumented run must carry baselines"
    for baseline in first.history_entry.sensors:
        assert 0.0 < baseline.median_perf <= 1.0
        assert 0.0 < baseline.p95_perf <= 1.0
        assert baseline.count > 0
        assert baseline.standard_us > 0.0
    # Identical deterministic runs produce identical baselines.
    assert first.history_entry.sensors == second.history_entry.sensors

    store = RunStore(tmp_path)
    runs = store.runs(first.history_entry.fingerprint)
    assert [r.label for r in runs] == ["r0", "r1"]


def test_history_fingerprint_splits_on_config(tmp_path, small_machine):
    from repro.sim import MachineConfig
    from repro.sim.noise import NoiseConfig
    from tests.conftest import SIMPLE_MPI_PROGRAM

    other_machine = MachineConfig(
        n_ranks=8,
        ranks_per_node=2,
        noise=NoiseConfig(
            jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0
        ),
    )
    a = run_vsensor(SIMPLE_MPI_PROGRAM, small_machine, history_store=tmp_path)
    b = run_vsensor(SIMPLE_MPI_PROGRAM, other_machine, history_store=tmp_path)
    assert a.history_entry.fingerprint != b.history_entry.fingerprint
    assert len(RunStore(tmp_path).fingerprints()) == 2


def test_history_append_emits_obs_span_and_counter(tmp_path, small_machine):
    from tests.conftest import SIMPLE_MPI_PROGRAM

    obs = Obs.create()
    run_vsensor(SIMPLE_MPI_PROGRAM, small_machine, history_store=tmp_path, obs=obs)
    names = {record.name for record in obs.tracer.buffer}
    assert "history.append" in names
    assert obs.metrics.counter("history.appends").value == 1


def test_no_store_means_no_entry(small_machine):
    from tests.conftest import SIMPLE_MPI_PROGRAM

    run = run_vsensor(SIMPLE_MPI_PROGRAM, small_machine)
    assert run.history_entry is None
