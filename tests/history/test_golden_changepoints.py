"""Golden regression scenarios: pinned e-divisive findings, exactly.

Each scenario is a hand-built run trajectory with a deterministic noise
draw; the detector's full output — indices, p-values, statistics, medians,
to the last bit — is compared against a checked-in JSON document.  When
the detector changes on purpose, regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/history/test_golden_changepoints.py

and commit the diff — drift in change-point output is always a reviewed
change, never an accident.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.history import EDivisive

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"


def _noise(seed: int, n: int, sigma: float) -> np.ndarray:
    return np.random.Generator(np.random.PCG64(seed)).normal(0.0, sigma, n)


def _single_step() -> np.ndarray:
    series = _noise(101, 60, 0.05)
    series[30:] += 1.0
    return series


def _ramp() -> np.ndarray:
    # Gradual drift: e-divisive bisects it somewhere in the middle; the
    # golden pins exactly where, so drift handling is a reviewed choice.
    series = _noise(202, 60, 0.05)
    series += np.linspace(0.0, 1.5, 60)
    return series


def _step_then_recover() -> np.ndarray:
    series = _noise(303, 70, 0.05)
    series[25:45] += 1.2
    return series


def _variance_only() -> np.ndarray:
    # Same mean throughout; only the spread changes.  The energy
    # statistic sees distributions, not just means — this scenario is
    # what distinguishes it from a t-test scan.
    quiet = _noise(404, 40, 0.02)
    loud = _noise(405, 40, 0.6)
    return np.concatenate([quiet, loud])


SCENARIOS = {
    "single_step": _single_step,
    "ramp": _ramp,
    "step_then_recover": _step_then_recover,
    "variance_only": _variance_only,
}


def _detect(series: np.ndarray):
    return EDivisive(
        seed=20180224, permutations=199, significance=0.05, min_segment=5
    ).detect(series)


def _canonical(points) -> list[dict]:
    return [
        {
            "index": cp.index,
            "statistic": cp.statistic,
            "p_value": cp.p_value,
            "before_median": cp.before_median,
            "after_median": cp.after_median,
            "direction": cp.direction,
        }
        for cp in points
    ]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_changepoints(name):
    series = SCENARIOS[name]()
    found = _canonical(_detect(series))
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(found, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not path.exists():
        pytest.fail(
            f"golden file {path.name} missing — regenerate with REPRO_UPDATE_GOLDEN=1"
        )
    with open(path, encoding="utf-8") as fh:
        expected = json.load(fh)
    assert found == expected  # exact floats: JSON repr round-trips doubles


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_two_consecutive_runs_are_bit_identical(name):
    series = SCENARIOS[name]()
    assert _detect(series) == _detect(series)


def test_scenarios_find_the_expected_shapes():
    """Structural sanity independent of the pinned floats, so a golden
    regeneration that silently lost a scenario's point cannot pass."""
    single = _detect(_single_step())
    assert [cp.index for cp in single] == [30]
    assert single[0].direction == "up"

    ramp = _detect(_ramp())
    assert ramp, "a drifting series must split somewhere"
    assert all(cp.direction == "up" for cp in ramp)

    recover = _detect(_step_then_recover())
    directions = [(cp.index, cp.direction) for cp in recover]
    assert any(abs(i - 25) <= 1 and d == "up" for i, d in directions)
    assert any(abs(i - 45) <= 1 and d == "down" for i, d in directions)

    variance = _detect(_variance_only())
    assert any(abs(cp.index - 40) <= 1 for cp in variance)
