"""Hypothesis property suite for the e-divisive change-point detector.

Four statistical-correctness contracts:

* an injected step change of known location and sufficient magnitude is
  recovered within ±1 index, whatever the surrounding noise draw;
* pure-noise series yield no change points at the configured
  significance (pinned seeds — a permutation test has a *designed*
  ~5 % false-positive rate, so the property quantifies over a fixed set
  of draws, not over all of them);
* detection (indices and p-values) is invariant under constant offset
  and power-of-two scaling of the series — exact, not approximate,
  because integer-valued inputs make every float op commute with the
  transform;
* the same seed yields bit-identical :class:`ChangePoint` lists, across
  calls and across detector instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history import EDivisive

#: noise seeds verified quiet at significance 0.05 / 199 permutations for
#: all three series lengths below; regenerate by scanning seeds if the
#: detector's draw order ever changes on purpose
QUIET_SEEDS = (0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15)


def _detector(**overrides) -> EDivisive:
    kwargs = dict(seed=20180224, permutations=199, significance=0.05, min_segment=5)
    kwargs.update(overrides)
    return EDivisive(**kwargs)


# -- step recovery ---------------------------------------------------------


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    before=st.integers(min_value=8, max_value=25),
    after=st.integers(min_value=8, max_value=25),
    magnitude=st.floats(min_value=1.0, max_value=100.0),
    noise_seed=st.integers(min_value=0, max_value=2**31),
)
def test_injected_step_is_recovered_within_one_index(
    before, after, magnitude, noise_seed
):
    rng = np.random.Generator(np.random.PCG64(noise_seed))
    series = rng.normal(0.0, 0.02 * magnitude / 50.0, before + after)
    series[before:] += magnitude
    points = _detector().detect(series)
    assert any(abs(cp.index - before) <= 1 for cp in points), (
        f"step at {before} not recovered: {[cp.index for cp in points]}"
    )
    # The recovered point must also move in the injected direction.
    hit = min(points, key=lambda cp: abs(cp.index - before))
    assert hit.direction == "up"
    assert hit.p_value <= 0.05


# -- pure noise stays quiet ------------------------------------------------


@pytest.mark.parametrize("noise_seed", QUIET_SEEDS)
@pytest.mark.parametrize("length", [40, 80, 120])
def test_pure_noise_yields_no_change_points(noise_seed, length):
    rng = np.random.Generator(np.random.PCG64(noise_seed))
    series = rng.normal(0.0, 1.0, length)
    assert _detector().detect(series) == []


# -- offset / scale invariance ---------------------------------------------


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=12, max_size=60
    ),
    offset=st.integers(min_value=-(10**6), max_value=10**6),
    scale=st.sampled_from([0.25, 0.5, 2.0, 4.0, 1024.0]),
)
def test_detection_invariant_under_offset_and_scale(values, offset, scale):
    base = np.asarray(values, dtype=np.float64)
    transformed = scale * base + offset
    det = _detector()
    got_base = [(cp.index, cp.p_value) for cp in det.detect(base)]
    got_tx = [(cp.index, cp.p_value) for cp in det.detect(transformed)]
    assert got_base == got_tx


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=12, max_size=40
    )
)
def test_negation_flips_direction_but_not_location(values):
    base = np.asarray(values, dtype=np.float64)
    det = _detector()
    forward = det.detect(base)
    mirrored = det.detect(-base)
    assert [cp.index for cp in forward] == [cp.index for cp in mirrored]
    flip = {"up": "down", "down": "up", "flat": "flat"}
    assert [flip[cp.direction] for cp in forward] == [
        cp.direction for cp in mirrored
    ]


# -- seeded determinism ----------------------------------------------------


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    values=st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=10,
        max_size=50,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_same_seed_gives_bit_identical_changepoints(values, seed):
    series = np.asarray(values, dtype=np.float64)
    first = EDivisive(seed=seed, permutations=49, significance=0.05).detect(series)
    again = EDivisive(seed=seed, permutations=49, significance=0.05).detect(series)
    assert first == again  # dataclass equality over exact floats
    # A detector instance is reusable: no RNG state bleeds across calls.
    det = EDivisive(seed=seed, permutations=49, significance=0.05)
    assert det.detect(series) == det.detect(series) == first


# -- configuration guard rails ---------------------------------------------


def test_unreachable_significance_is_rejected_up_front():
    with pytest.raises(ValueError, match="cannot reach"):
        EDivisive(permutations=9, significance=0.05)


def test_non_finite_series_is_rejected():
    with pytest.raises(ValueError, match="finite"):
        _detector().detect([1.0, float("nan"), 2.0])


def test_min_segment_lower_bound():
    with pytest.raises(ValueError, match="min_segment"):
        EDivisive(min_segment=1)
