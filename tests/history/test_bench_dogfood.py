"""Dogfood suite: the hunter over the repo's own ``BENCH_*.json`` payloads.

The clean trajectory (repeated snapshots of the checked-in bench files)
must be quiet — constant series have zero energy divergence, so quietness
is deterministic, not statistical.  A synthetically degraded copy of one
bench metric must be flagged as a regression at exactly the snapshot the
degradation was introduced.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.history import (
    flatten_metrics,
    load_bench_trajectory,
    scan_bench_trajectory,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))

pytestmark = pytest.mark.skipif(
    not BENCH_FILES, reason="no checked-in BENCH_*.json payloads"
)


def _snapshots(tmp_path: Path, name: str, docs) -> list[str]:
    """Write ordered snapshot copies ``s00/<name>, s01/<name>, ...``."""
    paths = []
    for index, doc in enumerate(docs):
        snap_dir = tmp_path / f"s{index:02d}"
        snap_dir.mkdir(exist_ok=True)
        path = snap_dir / name
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        paths.append(str(path))
    return paths


def test_checked_in_payloads_have_metrics():
    for path in BENCH_FILES:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        metrics = flatten_metrics(doc)
        assert metrics, f"{path.name} flattened to no numeric leaves"
        assert all(isinstance(v, float) for v in metrics.values())


def test_single_snapshot_scan_is_quiet():
    """Today's tree: one snapshot per bench -> length-1 series -> quiet.
    This is exactly what the CI dogfood step runs."""
    scan = scan_bench_trajectory([str(p) for p in BENCH_FILES])
    assert scan.findings == []
    assert scan.regressions == []


def test_clean_trajectory_is_quiet(tmp_path):
    """Twelve identical snapshots of every checked-in bench: constant
    series never reach significance, deterministically."""
    paths = []
    for bench in BENCH_FILES:
        with open(bench, encoding="utf-8") as fh:
            doc = json.load(fh)
        paths.extend(_snapshots(tmp_path, bench.name, [doc] * 12))
    scan = scan_bench_trajectory(paths)
    assert scan.runs_scanned == 12 * len(BENCH_FILES)
    assert scan.series_scanned > 0
    assert scan.findings == []


def test_degraded_metric_is_flagged_at_the_right_run(tmp_path):
    with open(REPO_ROOT / "BENCH_interp.json", encoding="utf-8") as fh:
        base = json.load(fh)
    degrade_from = 7
    docs = []
    for index in range(12):
        doc = copy.deepcopy(base)
        if index >= degrade_from:
            doc["results"][0]["seconds"] = round(
                doc["results"][0]["seconds"] * 1.6, 4
            )
        docs.append(doc)
    paths = _snapshots(tmp_path, "BENCH_interp.json", docs)
    scan = scan_bench_trajectory(paths)
    hits = [f for f in scan.regressions if f.series == "results[0].seconds"]
    assert len(hits) == 1, scan.summary()
    assert hits[0].fingerprint == "BENCH_interp.json"
    assert hits[0].change.index == degrade_from
    assert hits[0].change.direction == "up"
    # Nothing else moved, so nothing else may be flagged.
    assert len(scan.findings) == 1


def test_degraded_speedup_is_a_regression_too(tmp_path):
    """Orientation: a *falling* speedup is a regression even though the
    raw number moved down."""
    with open(REPO_ROOT / "BENCH_interp.json", encoding="utf-8") as fh:
        base = json.load(fh)
    key = sorted(base["lockstep_speedups"])[0]
    docs = []
    for index in range(12):
        doc = copy.deepcopy(base)
        if index >= 6:
            doc["lockstep_speedups"][key] = round(
                doc["lockstep_speedups"][key] * 0.5, 4
            )
        docs.append(doc)
    paths = _snapshots(tmp_path, "BENCH_interp.json", docs)
    scan = scan_bench_trajectory(paths)
    hits = [f for f in scan.regressions if key in f.series]
    assert len(hits) == 1
    assert hits[0].change.index == 6
    assert hits[0].change.direction == "down"


def test_metric_missing_from_a_snapshot_is_dropped(tmp_path):
    with open(REPO_ROOT / "BENCH_interp.json", encoding="utf-8") as fh:
        base = json.load(fh)
    altered = copy.deepcopy(base)
    del altered["lockstep_speedups"]
    paths = _snapshots(tmp_path, "BENCH_interp.json", [base, altered, base])
    trajectory = load_bench_trajectory(paths)["BENCH_interp.json"]
    assert not any("lockstep_speedups" in metric for metric in trajectory)
    assert all(len(series) == 3 for series in trajectory.values())


def test_cli_dogfood_gate(tmp_path):
    """The CI gate: exit 0 on the current tree, exit 3 on a degraded one."""
    assert (
        main(["history", "scan", "--bench-dogfood"] + [str(p) for p in BENCH_FILES])
        == 0
    )
    with open(REPO_ROOT / "BENCH_interp.json", encoding="utf-8") as fh:
        base = json.load(fh)
    docs = []
    for index in range(12):
        doc = copy.deepcopy(base)
        if index >= 7:
            doc["results"][0]["seconds"] *= 1.5
        docs.append(doc)
    paths = _snapshots(tmp_path, "BENCH_interp.json", docs)
    assert main(["history", "scan", "--bench-dogfood"] + paths) == 3
