"""RegressionHunter: store scans, classification, obs wiring, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.diagnostics import ReasonCode, Severity
from repro.history import (
    EDivisive,
    HistoryScan,
    RegressionHunter,
    RunRecord,
    RunStore,
    SensorBaseline,
    classify_metric,
    store_series,
)
from repro.obs import Obs

FP = "f" * 64


def _baseline(sensor_id: int, perf: float, standard: float = 5.0) -> SensorBaseline:
    return SensorBaseline(
        sensor_id=sensor_id,
        sensor_type="COMPUTATION",
        median_perf=perf,
        p95_perf=min(1.0, perf + 0.01),
        count=10,
        standard_us=standard,
    )


def _fill_store(store: RunStore, n_runs: int = 40, drop_at: int = 25) -> None:
    for index in range(n_runs):
        perf = 1.0 if index < drop_at else 0.7
        store.append(
            RunRecord(
                fingerprint=FP,
                label=f"commit-{index:03d}",
                total_time_us=1000.0,
                sensors=(_baseline(3, perf), _baseline(5, 0.99)),
            )
        )


def test_scan_store_finds_injected_sensor_regression(tmp_path):
    store = RunStore(tmp_path)
    _fill_store(store)
    scan = RegressionHunter().scan_store(store)
    assert scan.runs_scanned == 40
    hits = [f for f in scan.regressions if f.series == "sensor[3].median_perf"]
    assert len(hits) == 1
    finding = hits[0]
    assert finding.change.index == 25
    assert finding.change.direction == "down"
    assert finding.run_label == "commit-025"
    assert finding.fingerprint == FP
    # The healthy sensor stays quiet.
    assert not any("sensor[5]" in f.series for f in scan.findings)


def test_scan_is_deterministic_across_calls(tmp_path):
    store = RunStore(tmp_path)
    _fill_store(store)
    first = RegressionHunter().scan_store(store)
    second = RegressionHunter().scan_store(store)
    assert first.findings == second.findings  # bit-identical ChangePoints


def test_orientation_classification():
    assert classify_metric("results[0].seconds") == "lower"
    assert classify_metric("lockstep_speedups.CG@128") == "higher"
    assert classify_metric("budgets.0.02.f_score") == "higher"
    assert classify_metric("quiet_overhead") == "lower"
    assert classify_metric("decisions.demote") == "neutral"

    hunter = RegressionHunter()
    down = list(np.concatenate([np.full(20, 2.0), np.full(20, 1.0)]))
    up = list(np.concatenate([np.full(20, 1.0), np.full(20, 2.0)]))
    # seconds going down is an improvement; f_score going down a regression
    assert hunter.scan_series({"x.seconds": down}).improvements
    assert hunter.scan_series({"x.f_score": down}).regressions
    assert hunter.scan_series({"x.seconds": up}).regressions
    assert hunter.scan_series({"x.f_score": up}).improvements
    # unknown orientation: reported, but only as a shift
    shifts = hunter.scan_series({"x.mystery": up})
    assert shifts.of_kind("shift") and not shifts.regressions


def test_store_series_requires_sensor_in_every_run():
    runs = [
        RunRecord(fingerprint=FP, seq=0, sensors=(_baseline(1, 1.0), _baseline(2, 1.0))),
        RunRecord(fingerprint=FP, seq=1, sensors=(_baseline(1, 1.0),)),
    ]
    named = store_series(runs)
    assert "sensor[1].median_perf" in named
    assert not any("sensor[2]" in name for name in named)


def test_short_and_non_finite_series_are_skipped():
    hunter = RegressionHunter()
    scan = hunter.scan_series(
        {
            "too_short": [1.0, 2.0, 3.0],
            "bad": [1.0] * 20 + [float("nan")] * 20,
        }
    )
    assert scan.series_scanned == 0
    assert scan.series_skipped == 2
    assert scan.findings == []


def test_scan_emits_obs_spans_and_counters(tmp_path):
    store = RunStore(tmp_path)
    _fill_store(store)
    obs = Obs.create()
    scan = RegressionHunter(obs=obs).scan_store(store)
    names = [record.name for record in obs.tracer.buffer]
    assert "history.scan" in names
    assert obs.metrics.counter("history.changepoints").value == len(scan.findings)
    assert obs.metrics.counter("history.regressions").value == len(scan.regressions)
    assert obs.metrics.counter("history.runs_scanned").value == 40
    assert obs.metrics.counter("history.series_scanned").value == scan.series_scanned


def test_findings_thread_into_diagnostics(tmp_path):
    store = RunStore(tmp_path)
    _fill_store(store)
    scan = RegressionHunter().scan_store(store)
    diagnostics = scan.diagnostics()
    assert diagnostics
    regression = next(
        d for d in diagnostics if d.code is ReasonCode.PERF_REGRESSION
    )
    assert regression.severity is Severity.WARNING
    assert regression.origin == "history.scan"
    assert "sensor[3].median_perf" in str(regression.span)
    assert str(scan.regressions[0].change.index) in regression.format()


def test_merge_accumulates():
    a = HistoryScan(runs_scanned=3, series_scanned=2, series_skipped=1)
    b = HistoryScan(runs_scanned=4, series_scanned=5, series_skipped=0)
    a.merge(b)
    assert (a.runs_scanned, a.series_scanned, a.series_skipped) == (7, 7, 1)


# -- CLI -------------------------------------------------------------------


def test_cli_scan_exit_codes(tmp_path, capsys):
    store_dir = tmp_path / "hist"
    store = RunStore(store_dir)
    _fill_store(store)
    rc = main(["history", "scan", "--store", str(store_dir), "--explain"])
    out = capsys.readouterr().out
    assert rc == 3  # regression found -> gateable exit status
    assert "regression" in out and "perf-regression" in out

    quiet_dir = tmp_path / "quiet"
    quiet = RunStore(quiet_dir)
    for index in range(20):
        quiet.append(
            RunRecord(fingerprint=FP, total_time_us=1000.0, sensors=(_baseline(1, 0.99),))
        )
    assert main(["history", "scan", "--store", str(quiet_dir)]) == 0


def test_cli_scan_requires_a_source(capsys):
    assert main(["history", "scan"]) == 2
    assert "give --store" in capsys.readouterr().err


def test_cli_show(tmp_path, capsys):
    store_dir = tmp_path / "hist"
    store = RunStore(store_dir)
    _fill_store(store, n_runs=3, drop_at=99)
    assert main(["history", "show", "--store", str(store_dir)]) == 0
    listing = capsys.readouterr().out
    assert "1 trajectory(ies)" in listing and "runs=3" in listing
    assert main(["history", "show", "--store", str(store_dir), "--fingerprint", FP]) == 0
    detail = capsys.readouterr().out
    assert "commit-002" in detail
    assert main(["history", "show", "--store", str(store_dir), "--fingerprint", "0" * 64]) == 0
    assert "no runs" in capsys.readouterr().out


def test_cli_append_and_run_share_fingerprints(tmp_path, capsys):
    from tests.conftest import SIMPLE_MPI_PROGRAM

    program = tmp_path / "prog.vsn"
    program.write_text(SIMPLE_MPI_PROGRAM)
    store_dir = str(tmp_path / "hist")
    args = ["--ranks", "4", "--ranks-per-node", "2"]
    assert (
        main(
            ["history", "append", str(program), "--store", store_dir, "--label", "c0"]
            + args
        )
        == 0
    )
    assert "appended run 0" in capsys.readouterr().out
    # `run --history-store` with the same config extends the same trajectory.
    assert (
        main([
            "run", str(program), "--history-store", store_dir, "--history-label", "c1"
        ] + args)
        == 0
    )
    assert "appended run 1" in capsys.readouterr().out
    store = RunStore(store_dir)
    keys = store.fingerprints()
    assert len(keys) == 1
    assert [r.label for r in store.runs(keys[0])] == ["c0", "c1"]
