"""Property tests for the store key and the store's round-trip.

The history store's whole premise is "runs are only compared against
bit-identical configurations", which rests on two facts this file pins:

* :func:`repro.pipeline.artifacts.fingerprint` is insensitive to dict
  key *insertion order* at every nesting level (hypothesis-generated
  nested dict/list/dataclass configs, permuted recursively);
* :class:`~repro.history.RunStore` round-trips bit-identically — append
  → reopen → scan reproduces equal records, and two stores fed the same
  records are byte-identical files.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history import RunRecord, RunStore, SensorBaseline, run_fingerprint
from repro.pipeline.artifacts import fingerprint
from repro.runtime.detector import DetectorConfig
from repro.sim import MachineConfig

# -- fingerprint stability -------------------------------------------------

_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=16)
)

_configs = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=16,
)


@dataclass(frozen=True)
class _FakeConfig:
    """Stands in for pass configs: a dataclass carrying nested containers."""

    name: str
    depth: int
    options: dict


def _reorder(value, rnd: random.Random):
    """Rebuild ``value`` with every dict's key insertion order shuffled."""
    if isinstance(value, dict):
        keys = list(value)
        rnd.shuffle(keys)
        return {key: _reorder(value[key], rnd) for key in keys}
    if isinstance(value, list):
        return [_reorder(item, rnd) for item in value]
    return value


@settings(max_examples=80, deadline=None)
@given(config=_configs, shuffle_seed=st.integers(min_value=0, max_value=2**31))
def test_fingerprint_ignores_dict_insertion_order(config, shuffle_seed):
    permuted = _reorder(config, random.Random(shuffle_seed))
    assert fingerprint(config) == fingerprint(permuted)


@settings(max_examples=40, deadline=None)
@given(
    name=st.text(max_size=12),
    depth=st.integers(min_value=0, max_value=9),
    options=st.dictionaries(st.text(max_size=8), _configs, max_size=4),
    shuffle_seed=st.integers(min_value=0, max_value=2**31),
)
def test_dataclass_fingerprint_ignores_dict_insertion_order(
    name, depth, options, shuffle_seed
):
    original = _FakeConfig(name=name, depth=depth, options=options)
    permuted = _FakeConfig(
        name=name, depth=depth, options=_reorder(options, random.Random(shuffle_seed))
    )
    assert fingerprint(original) == fingerprint(permuted)


def test_run_fingerprint_separates_configurations():
    machine = MachineConfig(n_ranks=4, ranks_per_node=2)
    base = run_fingerprint("src", machine, DetectorConfig(), engine="bytecode")
    assert base == run_fingerprint("src", machine, DetectorConfig(), engine="bytecode")
    assert base != run_fingerprint("src2", machine, DetectorConfig(), engine="bytecode")
    assert base != run_fingerprint("src", machine, DetectorConfig(), engine="ast")
    assert base != run_fingerprint(
        "src", MachineConfig(n_ranks=8, ranks_per_node=2), DetectorConfig(),
        engine="bytecode",
    )
    assert base != run_fingerprint(
        "src", machine, DetectorConfig(threshold=0.8), engine="bytecode"
    )
    # extra keyword dimensions are order-insensitive (dict fingerprint)
    assert run_fingerprint("s", machine, None, a=1, b=2) == run_fingerprint(
        "s", machine, None, b=2, a=1
    )


# -- store round-trip ------------------------------------------------------

_fingerprints = st.text(alphabet="0123456789abcdef", min_size=8, max_size=16)
_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

_baselines = st.builds(
    SensorBaseline,
    sensor_id=st.integers(min_value=0, max_value=2**31),
    sensor_type=st.sampled_from(["COMPUTATION", "NETWORK", "IO"]),
    median_perf=_finite,
    p95_perf=_finite,
    count=st.integers(min_value=0, max_value=2**31),
    standard_us=_finite,
)

_records = st.builds(
    RunRecord,
    fingerprint=_fingerprints,
    label=st.text(max_size=24),
    workload=st.text(max_size=12),
    total_time_us=_finite,
    intra_events=st.integers(min_value=0, max_value=2**31),
    inter_events=st.integers(min_value=0, max_value=2**31),
    coverage_confidence=_finite,
    sampling_coverage=_finite,
    f_score=st.none() | _finite,
    sensors=st.tuples() | st.tuples(_baselines) | st.tuples(_baselines, _baselines),
)


@settings(max_examples=25, deadline=None)
@given(records=st.lists(_records, min_size=1, max_size=8))
def test_store_roundtrip_is_bit_identical(records):
    with tempfile.TemporaryDirectory() as first_dir, tempfile.TemporaryDirectory() as second_dir:
        first = RunStore(first_dir)
        stamped = [first.append(record) for record in records]

        # Reopen from disk: scan returns records equal to what append stamped.
        reopened = RunStore(first_dir)
        by_key: dict[str, list[RunRecord]] = {}
        for record in stamped:
            by_key.setdefault(record.fingerprint, []).append(record)
        for key, expected in by_key.items():
            assert reopened.runs(key) == expected
        assert reopened.fingerprints() == sorted(by_key)
        assert reopened.total_runs() == len(records)

        # A second store fed the same inputs produces byte-identical files.
        second = RunStore(second_dir)
        for record in records:
            second.append(record)
        for key in by_key:
            first_bytes = (Path(first_dir) / f"{key}.jsonl").read_bytes()
            second_bytes = (Path(second_dir) / f"{key}.jsonl").read_bytes()
            assert first_bytes == second_bytes
