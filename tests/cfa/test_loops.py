"""Natural-loop detection tests."""

from repro.cfa import find_natural_loops
from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source
from repro.ir import lower_module


def loops_of(src, name="main"):
    fn = lower_module(parse_source(src)).function(name)
    return fn, find_natural_loops(fn)


def test_single_for_loop_found():
    fn, info = loops_of("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }")
    assert len(info.loops) == 1
    assert "for.header" in info.loops[0].header.label


def test_while_loop_found():
    fn, info = loops_of("int main() { int x; while (x) x = x - 1; return 0; }")
    assert len(info.loops) == 1


def test_no_loops_in_straight_line():
    fn, info = loops_of("int main() { int x; x = 1; return x; }")
    assert info.loops == []


def test_nested_loops_depths():
    fn, info = loops_of(
        """
        int main() {
            int i; int j; int k;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) {
                    for (k = 0; k < 3; k = k + 1) { }
                }
            }
            return 0;
        }
        """
    )
    depths = sorted(l.depth for l in info.loops)
    assert depths == [0, 1, 2]


def test_sibling_loops_same_depth():
    fn, info = loops_of(
        """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) { }
            for (j = 0; j < 3; j = j + 1) { }
            return 0;
        }
        """
    )
    assert [l.depth for l in info.loops] == [0, 0]
    assert all(l.parent is None for l in info.loops)


def test_nesting_parent_child_links():
    fn, info = loops_of(
        """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) { }
            }
            return 0;
        }
        """
    )
    inner = next(l for l in info.loops if l.depth == 1)
    outer = next(l for l in info.loops if l.depth == 0)
    assert inner.parent is outer
    assert inner in outer.children
    assert inner.ancestors() == [outer]


def test_loop_blocks_subset_of_parent():
    fn, info = loops_of(
        """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) { j = j; }
                i = i;
            }
            return 0;
        }
        """
    )
    inner = next(l for l in info.loops if l.depth == 1)
    outer = next(l for l in info.loops if l.depth == 0)
    assert inner.blocks < outer.blocks


def test_ast_loop_back_link():
    src = "int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }"
    fn, info = loops_of(src)
    ast_loop = info.loops[0].ast_loop
    assert isinstance(ast_loop, A.ForStmt)


def test_loop_of_ast_lookup():
    src = "int main() { int i; while (i) i = i - 1; return 0; }"
    module = parse_source(src)
    fn = lower_module(module).function("main")
    info = find_natural_loops(fn)
    while_stmt = module.function("main").body.stmts[1]
    assert isinstance(while_stmt, A.WhileStmt)
    assert info.loop_of_ast(while_stmt) is info.loops[0]


def test_innermost_containing():
    fn, info = loops_of(
        """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) { j = j; }
            }
            return 0;
        }
        """
    )
    inner = next(l for l in info.loops if l.depth == 1)
    body = next(b for b in inner.blocks if "body" in b.label and b is not inner.header)
    assert info.innermost_containing(body) is inner


def test_back_edges_recorded():
    fn, info = loops_of("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }")
    loop = info.loops[0]
    assert len(loop.back_edges) == 1
    tail, head = loop.back_edges[0]
    assert head is loop.header
    assert tail in loop.blocks


def test_paper_example_loop_count(paper_module):
    module = lower_module(paper_module)
    foo_info = find_natural_loops(module.function("foo"))
    main_info = find_natural_loops(module.function("main"))
    assert len(foo_info.loops) == 2   # i loop, j loop
    assert len(main_info.loops) == 3  # n loop, two k loops
