"""CFA on hand-built CFGs — shapes the frontend cannot produce.

The dominator and natural-loop algorithms are library-grade components;
these tests exercise them on irregular graphs (multiple back edges into
one header, diamonds into loops, nested while-true structures) built
directly from IR blocks.
"""

import pytest

from repro.cfa import compute_dominators, find_natural_loops
from repro.ir import BasicBlock, Branch, ConstInt, IRFunction, Jump, Ret


def make_fn(n_blocks):
    fn = IRFunction(name="synthetic", params=[], ret_type="void")
    blocks = [fn.new_block(f"b{i}") for i in range(n_blocks)]
    return fn, blocks


def jump(src, dst):
    src.append(Jump(ast_node=None, target=dst))


def branch(src, a, b):
    src.append(Branch(ast_node=None, cond=ConstInt(1), true_block=a, false_block=b))


def ret(block):
    block.append(Ret(ast_node=None, value=None))


def test_diamond_dominators():
    fn, (entry, left, right, merge) = make_fn(4)
    branch(entry, left, right)
    jump(left, merge)
    jump(right, merge)
    ret(merge)
    fn.seal()
    dom = compute_dominators(fn)
    assert dom.idom[merge] is entry
    assert dom.strictly_dominates(entry, left)
    assert not dom.dominates(left, merge)


def test_two_back_edges_one_header():
    """A loop with two latches (continue-like structure)."""
    fn, (entry, header, body_a, body_b, exit_block) = make_fn(5)
    jump(entry, header)
    branch(header, body_a, exit_block)
    branch(body_a, header, body_b)  # early back edge
    jump(body_b, header)            # second back edge
    ret(exit_block)
    fn.seal()
    info = find_natural_loops(fn)
    assert len(info.loops) == 1
    loop = info.loops[0]
    assert len(loop.back_edges) == 2
    assert loop.blocks == {header, body_a, body_b}


def test_nested_loops_shared_exit():
    fn, (entry, outer_h, inner_h, inner_b, outer_l, exit_block) = make_fn(6)
    jump(entry, outer_h)
    branch(outer_h, inner_h, exit_block)
    branch(inner_h, inner_b, outer_l)
    jump(inner_b, inner_h)
    jump(outer_l, outer_h)
    ret(exit_block)
    fn.seal()
    info = find_natural_loops(fn)
    assert len(info.loops) == 2
    inner = info.by_header[inner_h]
    outer = info.by_header[outer_h]
    assert inner.parent is outer
    assert inner.depth == 1 and outer.depth == 0
    assert inner.blocks < outer.blocks


def test_while_true_self_loop():
    fn, (entry, spin) = make_fn(2)
    jump(entry, spin)
    jump(spin, spin)
    fn.seal()
    info = find_natural_loops(fn)
    assert len(info.loops) == 1
    assert info.loops[0].blocks == {spin}
    assert info.loops[0].back_edges == [(spin, spin)]


def test_irreducible_like_region_no_false_loop():
    """A forward-only diamond chain has no loops at all."""
    fn, (entry, a, b, c, d) = make_fn(5)
    branch(entry, a, b)
    jump(a, c)
    jump(b, c)
    jump(c, d)
    ret(d)
    fn.seal()
    assert find_natural_loops(fn).loops == []


def test_unreachable_block_dropped_by_seal():
    fn, (entry, reachable, orphan) = make_fn(3)
    jump(entry, reachable)
    ret(reachable)
    ret(orphan)
    fn.seal()
    assert orphan not in fn.blocks
    dom = compute_dominators(fn)
    assert set(dom.idom) == {entry, reachable}


def test_loop_with_two_exits():
    fn, (entry, header, body, exit_a, exit_b) = make_fn(5)
    jump(entry, header)
    branch(header, body, exit_a)
    branch(body, header, exit_b)
    ret(exit_a)
    ret(exit_b)
    fn.seal()
    info = find_natural_loops(fn)
    assert len(info.loops) == 1
    assert info.loops[0].blocks == {header, body}


def test_deep_linear_chain_dominance():
    fn, blocks = make_fn(30)
    for a, b in zip(blocks, blocks[1:]):
        jump(a, b)
    ret(blocks[-1])
    fn.seal()
    dom = compute_dominators(fn)
    for i, block in enumerate(blocks):
        for later in blocks[i:]:
            assert dom.dominates(block, later)
