"""Dominator-tree tests."""

from repro.cfa import compute_dominators, postorder, reverse_postorder
from repro.frontend.parser import parse_source
from repro.ir import lower_module


def fn_of(src, name="main"):
    return lower_module(parse_source(src)).function(name)


def test_entry_dominates_everything(paper_module):
    for fn in lower_module(paper_module).functions.values():
        dom = compute_dominators(fn)
        for block in fn.blocks:
            assert dom.dominates(fn.entry, block)


def test_entry_is_own_idom():
    fn = fn_of("int main() { return 0; }")
    dom = compute_dominators(fn)
    assert dom.idom[fn.entry] is fn.entry


def test_if_branches_dominated_by_condition_block():
    fn = fn_of("int main() { int x; if (x) x = 1; else x = 2; return 0; }")
    dom = compute_dominators(fn)
    then_block = next(b for b in fn.blocks if "if.then" in b.label)
    else_block = next(b for b in fn.blocks if "if.else" in b.label)
    merge = next(b for b in fn.blocks if "if.end" in b.label)
    assert dom.dominates(fn.entry, then_block)
    # Neither branch dominates the merge.
    assert not dom.dominates(then_block, merge)
    assert not dom.dominates(else_block, merge)


def test_loop_header_dominates_body():
    fn = fn_of("int main() { int i; for (i = 0; i < 9; i = i + 1) { i = i; } return 0; }")
    dom = compute_dominators(fn)
    header = next(b for b in fn.blocks if "for.header" in b.label)
    body = next(b for b in fn.blocks if "for.body" in b.label)
    step = next(b for b in fn.blocks if "for.step" in b.label)
    assert dom.strictly_dominates(header, body)
    assert dom.strictly_dominates(header, step)


def test_nested_loop_header_chain():
    fn = fn_of(
        """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) { j = j; }
            }
            return 0;
        }
        """
    )
    dom = compute_dominators(fn)
    headers = [b for b in fn.blocks if "for.header" in b.label]
    assert len(headers) == 2
    outer = min(headers, key=lambda b: b.label)
    inner = max(headers, key=lambda b: b.label)
    assert dom.dominates(outer, inner)
    assert not dom.dominates(inner, outer)


def test_dominators_of_lists_chain():
    fn = fn_of("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }")
    dom = compute_dominators(fn)
    body = next(b for b in fn.blocks if "for.body" in b.label)
    chain = dom.dominators_of(body)
    assert chain[0] is body
    assert chain[-1] is fn.entry


def test_postorder_visits_all_blocks(paper_module):
    for fn in lower_module(paper_module).functions.values():
        po = postorder(fn)
        assert set(po) == set(fn.blocks)


def test_reverse_postorder_starts_at_entry(paper_module):
    for fn in lower_module(paper_module).functions.values():
        rpo = reverse_postorder(fn)
        assert rpo[0] is fn.entry


def test_rpo_predecessor_property():
    """In an acyclic region, all preds appear before a block in RPO."""
    fn = fn_of("int main() { int x; if (x) x = 1; else x = 2; return 0; }")
    rpo = reverse_postorder(fn)
    index = {b: i for i, b in enumerate(rpo)}
    for block in fn.blocks:
        for pred in block.preds:
            # No back edges in this CFG, so property must hold strictly.
            assert index[pred] < index[block]
