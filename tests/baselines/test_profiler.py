"""mpiP-baseline tests (Figs. 18-19 behaviour)."""

import pytest

from repro.baselines import MpiProfiler
from repro.frontend.parser import parse_source
from repro.sim import CpuContention, MachineConfig, Simulator
from repro.sim.noise import NoiseConfig


SRC = """
int main() {
    int i;
    for (i = 0; i < 20; i = i + 1) {
        compute_units(500);
        MPI_Allreduce(32);
    }
    return 0;
}
"""


def machine(n_ranks=4):
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def run_profiled(faults=()):
    profiler = MpiProfiler()
    Simulator(parse_source(SRC), machine(), faults=tuple(faults)).run(profiler)
    return profiler.profile()


def test_profile_splits_comp_and_mpi():
    profile = run_profiled()
    for rank in range(4):
        assert profile.mpi_time[rank] > 0
        assert profile.comp_time()[rank] > 0
        assert profile.total_time[rank] == pytest.approx(
            profile.mpi_time[rank] + profile.comp_time()[rank]
        )


def test_call_counts():
    profile = run_profiled()
    assert profile.call_counts["MPI_Allreduce"] == 20 * 4


def test_rows_format():
    profile = run_profiled()
    rows = profile.rows()
    assert len(rows) == 4
    rank, comp_s, mpi_s = rows[0]
    assert rank == 0 and comp_s > 0 and mpi_s > 0


def test_noise_in_comm_wait_shows_as_mpi_time():
    """The paper's key observation: CPU noise injected on some nodes shows
    up mostly as *MPI* time on the other ranks (they wait longer), which
    misleads profile readers toward the network."""
    clean = run_profiled()
    noisy = run_profiled(faults=[CpuContention(node_ids=(0,), t0=0.0, t1=1e9, cpu_factor=0.3)])
    # Unaffected ranks (2, 3 on node 1) wait for the slowed ranks inside
    # MPI: their MPI time grows while their computation stays put.
    assert noisy.mpi_time[3] > clean.mpi_time[3] * 1.5
    assert noisy.comp_time()[3] == pytest.approx(clean.comp_time()[3], rel=0.2)
