"""Tracer-baseline tests (§6.4 data-volume comparison)."""

from repro.baselines import EventTracer
from repro.baselines.tracer import EVENT_BYTES
from repro.frontend.parser import parse_source
from repro.sim import MachineConfig, Simulator
from repro.sim.noise import NoiseConfig


SRC = """
int main() {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        compute_units(100);
        MPI_Allreduce(8);
    }
    printf("x");
    return 0;
}
"""


def run_traced(keep=False, n_ranks=4):
    tracer = EventTracer(keep_events=keep)
    machine = MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )
    Simulator(parse_source(SRC), machine).run(tracer)
    return tracer


def test_event_count():
    tracer = run_traced()
    # 10 allreduce + 1 printf + the main() enter/exit pair, per rank.
    assert tracer.event_count == 12 * 4


def test_function_tracing_can_be_disabled():
    tracer = EventTracer(trace_functions=False)
    machine = MachineConfig(
        n_ranks=4,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )
    Simulator(parse_source(SRC), machine).run(tracer)
    assert tracer.event_count == 11 * 4


def test_function_events_traced():
    src = "void f() { compute_units(1); } int main() { f(); f(); return 0; }"
    tracer = EventTracer(keep_events=True)
    machine = MachineConfig(n_ranks=1, ranks_per_node=1)
    Simulator(parse_source(src), machine).run(tracer)
    func_events = [e for e in tracer.events if e.op == "func:f"]
    assert len(func_events) == 2
    assert all(e.t_end >= e.t_begin for e in func_events)


def test_bytes_proportional_to_events():
    tracer = run_traced()
    assert tracer.stats().bytes == tracer.event_count * EVENT_BYTES


def test_keep_events_stores_details():
    tracer = run_traced(keep=True)
    assert len(tracer.events) == tracer.event_count
    ops = {e.op for e in tracer.events}
    assert "MPI_Allreduce" in ops and "printf" in ops


def test_counting_mode_stores_nothing():
    tracer = run_traced(keep=False)
    assert tracer.events == []


def test_trace_volume_grows_with_ranks():
    small = run_traced(n_ranks=2).stats()
    large = run_traced(n_ranks=8).stats()
    assert large.bytes > small.bytes


def test_rate_computation():
    stats = run_traced().stats()
    assert stats.rate_kb_per_s_per_rank() > 0
