"""FWQ and rerun baseline tests."""

from repro.baselines import rerun_study, run_fwq_probe
from repro.sim import CpuContention, MachineConfig
from repro.sim.noise import NoiseConfig


def quiet(n_ranks=1):
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=1,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def test_fwq_steady_on_quiet_machine():
    obs = run_fwq_probe(quiet(), iterations=2000)
    assert obs.variance_ratio() < 1.05


def test_fwq_detects_contention():
    machine = quiet()
    total = run_fwq_probe(machine, iterations=2000).total_time
    faults = (CpuContention(node_ids=(0,), t0=total * 0.3, t1=total * 0.7, cpu_factor=0.4),)
    obs = run_fwq_probe(machine, faults=faults, iterations=2000)
    assert obs.variance_ratio() > 1.5


def test_fwq_observation_lengths_match():
    obs = run_fwq_probe(quiet(), iterations=500)
    assert len(obs.times) == len(obs.starts) == 500


def test_rerun_study_collects_all_submissions():
    src = "int main() { int i; for (i = 0; i < 5; i = i + 1) { compute_units(200); MPI_Barrier(); } return 0; }"
    study = rerun_study(src, n_ranks=4, submissions=6, congestion_probability=0.0, ranks_per_node=2)
    assert len(study.times_us) == 6
    assert study.max_over_min >= 1.0


def test_rerun_congestion_widens_spread():
    src = "int main() { int i; for (i = 0; i < 8; i = i + 1) { compute_units(100); MPI_Alltoall(64); } return 0; }"
    calm = rerun_study(src, n_ranks=4, submissions=8, congestion_probability=0.0, ranks_per_node=2)
    stormy = rerun_study(
        src, n_ranks=4, submissions=8, congestion_probability=1.0, congestion_factor=0.15, ranks_per_node=2
    )
    assert stormy.max_over_min > calm.max_over_min
