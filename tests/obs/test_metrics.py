"""Metrics registry: histogram bucket edges, snapshots, deltas, nulls."""

import pytest

from repro.obs import Histogram, MetricsRegistry, NullMetricsRegistry


class TestHistogramEdges:
    """Bucket ``i`` counts ``edges[i-1] < v <= edges[i]`` — pinned exactly."""

    def test_value_on_edge_belongs_to_that_bucket(self):
        h = Histogram("h", edges=(1.0, 10.0, 100.0))
        h.observe(1.0)
        h.observe(10.0)
        h.observe(100.0)
        assert h.counts == [1, 1, 1, 0]

    def test_value_just_above_edge_goes_to_next_bucket(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(1.0000001)
        assert h.counts == [0, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(10.5)
        h.observe(1e9)
        assert h.counts == [0, 0, 2]

    def test_below_first_edge_including_zero_and_negative(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(0.999)
        assert h.counts == [3, 0, 0]

    def test_total_and_sum_track_observations(self):
        h = Histogram("h", edges=(10.0,))
        h.observe(4.0)
        h.observe(6.0)
        assert h.total == 2
        assert h.sum == pytest.approx(10.0)

    def test_unsorted_or_duplicate_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0))


class TestRegistry:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(-2.0)
        assert reg.gauge("g").value == -2.0

    def test_histogram_reregistration_with_same_edges_is_same_instance(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("h", edges=(1.0, 2.0))
        h2 = reg.histogram("h", edges=(1.0, 2.0))
        assert h1 is h2

    def test_histogram_reregistration_with_different_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_as_dict_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        doc = reg.as_dict()
        assert list(doc["counters"]) == ["a", "z"]
        assert doc["counters"] == {"a": 2, "z": 1}
        assert doc["gauges"] == {"g": 7.0}
        assert doc["histograms"]["h"]["counts"] == [1, 0]


class TestSnapshotsAndDeltas:
    def test_snapshot_is_a_point_in_time_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        snap = reg.snapshot("before")
        reg.counter("c").inc(10)
        assert snap["counters"]["c"] == 3
        assert reg.snapshots["before"]["counters"]["c"] == 3

    def test_delta_between_named_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        reg.snapshot("before")
        reg.counter("c").inc(4)
        reg.counter("new").inc()
        reg.histogram("h", edges=(1.0,)).observe(2.0)
        reg.snapshot("after")
        delta = reg.delta("before", "after")
        assert delta["counters"] == {"c": 4, "new": 1}
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["total"] == 1

    def test_delta_accepts_raw_dicts(self):
        reg = MetricsRegistry()
        a = reg.snapshot("a")
        reg.counter("c").inc(2)
        b = reg.snapshot("b")
        assert reg.delta(a, b)["counters"] == {"c": 2}


class TestSelfCost:
    def test_op_count_sums_all_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(5)
        reg.gauge("g").set(1.0)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        assert reg.op_count() == 4

    def test_estimated_cost_zero_when_unused(self):
        assert MetricsRegistry().estimated_cost_s() == 0.0

    def test_estimated_cost_positive_and_small_when_used(self):
        reg = MetricsRegistry()
        for _ in range(100):
            reg.counter("c").inc()
        cost = reg.estimated_cost_s()
        assert 0.0 < cost < 0.01


class TestNullRegistry:
    def test_null_instruments_are_shared_and_inert(self):
        reg = NullMetricsRegistry()
        assert reg.counter("a") is reg.counter("b") is reg.gauge("c") is reg.histogram("d")
        reg.counter("a").inc(100)
        reg.gauge("g").set(5.0)
        reg.histogram("h").observe(1.0)
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.op_count() == 0
        assert reg.estimated_cost_s() == 0.0
        assert reg.enabled is False
