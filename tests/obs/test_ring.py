"""Ring-buffer semantics: ordering, wraparound, drop accounting."""

import pytest

from repro.obs import RingBuffer


def test_append_below_capacity_keeps_everything_in_order():
    ring = RingBuffer(capacity=8)
    for i in range(5):
        ring.append(i)
    assert len(ring) == 5
    assert ring.to_list() == [0, 1, 2, 3, 4]
    assert ring.dropped == 0


def test_wraparound_overwrites_oldest_first():
    ring = RingBuffer(capacity=4)
    for i in range(10):
        ring.append(i)
    assert len(ring) == 4
    assert ring.to_list() == [6, 7, 8, 9]
    assert ring.dropped == 6


def test_exact_capacity_boundary():
    ring = RingBuffer(capacity=3)
    for i in range(3):
        ring.append(i)
    assert ring.to_list() == [0, 1, 2]
    assert ring.dropped == 0
    ring.append(3)
    assert ring.to_list() == [1, 2, 3]
    assert ring.dropped == 1


def test_capacity_one_keeps_latest():
    ring = RingBuffer(capacity=1)
    for i in range(5):
        ring.append(i)
    assert ring.to_list() == [4]
    assert ring.dropped == 4


def test_iteration_matches_to_list_after_multiple_wraps():
    ring = RingBuffer(capacity=5)
    for i in range(23):
        ring.append(i)
    assert list(ring) == ring.to_list() == [18, 19, 20, 21, 22]


def test_clear_resets_everything():
    ring = RingBuffer(capacity=2)
    for i in range(5):
        ring.append(i)
    ring.clear()
    assert len(ring) == 0
    assert ring.to_list() == []
    assert ring.dropped == 0
    ring.append("x")
    assert ring.to_list() == ["x"]


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)
