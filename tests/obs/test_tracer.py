"""Tracer span semantics: nesting, enforcement, attrs, self-cost."""

import pytest

from repro.obs import NullTracer, TraceError, Tracer, canonical_span_tree


class FakeClock:
    """Deterministic injectable µs clock."""

    def __init__(self, step: float = 10.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_nested_spans_record_parent_and_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer") as outer:
        with tracer.span("inner"):
            pass
    records = tracer.records()
    assert [r.name for r in records] == ["inner", "outer"]  # completion order
    inner, outer_rec = records
    assert inner.parent == outer_rec.seq == outer.seq
    assert inner.depth == 1 and outer_rec.depth == 0
    assert outer_rec.parent == -1


def test_exit_ge_enter_with_monotonic_clock():
    tracer = Tracer()
    with tracer.span("s"):
        pass
    (record,) = tracer.records()
    assert record.t_exit >= record.t_enter
    assert record.duration_us >= 0


def test_exit_clamped_for_backwards_clock():
    class Backwards:
        def __init__(self):
            self.values = iter([100.0, 5.0])

        def __call__(self):
            return next(self.values)

    tracer = Tracer(clock=Backwards())
    with tracer.span("s"):
        pass
    (record,) = tracer.records()
    assert record.t_exit == record.t_enter == 100.0


def test_orphan_exit_raises():
    tracer = Tracer()
    with pytest.raises(TraceError, match="orphan"):
        tracer.exit()


def test_out_of_order_exit_raises():
    tracer = Tracer()
    outer = tracer.enter("outer")
    tracer.enter("inner")
    with pytest.raises(TraceError, match="out-of-order"):
        tracer.exit(outer)


def test_attrs_from_enter_and_set():
    tracer = Tracer()
    with tracer.span("s", kind="test") as span:
        span.set("result", 42)
    (record,) = tracer.records()
    assert record.attrs == {"kind": "test", "result": 42}


def test_span_closed_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    assert tracer.open_depth == 0
    assert [r.name for r in tracer.records()] == ["failing"]


def test_emit_records_leaf_under_current_span():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        tracer.emit("leaf", 100.0, 250.0, rank=3)
    leaf = next(r for r in tracer.records() if r.name == "leaf")
    assert leaf.parent == parent.seq
    assert leaf.track == "sim"
    assert (leaf.t_enter, leaf.t_exit) == (100.0, 250.0)
    assert leaf.attrs == {"rank": 3}


def test_emit_clamps_reversed_interval():
    tracer = Tracer()
    record = tracer.emit("leaf", 50.0, 10.0)
    assert record.t_exit == record.t_enter == 50.0


def test_ring_capacity_drops_oldest_spans():
    tracer = Tracer(capacity=3)
    for i in range(6):
        with tracer.span(f"s{i}"):
            pass
    assert [r.name for r in tracer.records()] == ["s3", "s4", "s5"]
    assert tracer.buffer.dropped == 3


def test_self_cost_accumulates_and_overhead_fraction():
    tracer = Tracer()
    for _ in range(100):
        with tracer.span("s"):
            pass
    assert tracer.self_cost_s > 0
    assert tracer.overhead_fraction(1.0) == pytest.approx(tracer.self_cost_s)
    assert tracer.overhead_fraction(0.0) == 0.0


def test_canonical_tree_structure():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("root", phase="x"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            tracer.emit("vleaf", 0.0, 5.0, rank=1)
    tree = canonical_span_tree(tracer)
    assert len(tree) == 1
    root = tree[0]
    assert root["name"] == "root"
    assert root["attrs"] == {"phase": "x"}
    assert [c["name"] for c in root["children"]] == ["a", "b"]
    assert root["children"][1]["children"][0] == {
        "name": "vleaf",
        "track": "sim",
        "attrs": {"rank": 1},
    }
    assert "t_enter" not in repr(tree)  # no timestamps anywhere in canonical form


class TestNullTracer:
    def test_span_returns_shared_inert_object(self):
        tracer = NullTracer()
        s1 = tracer.span("a", x=1)
        s2 = tracer.span("b")
        assert s1 is s2
        with s1:
            s1.set("k", "v")
        assert tracer.records() == []
        assert tracer.self_cost_s == 0.0
        assert tracer.enabled is False

    def test_exit_and_emit_are_noops(self):
        tracer = NullTracer()
        tracer.exit()  # no orphan error on the null path
        tracer.emit("x", 0.0, 1.0)
        assert tracer.records() == []
