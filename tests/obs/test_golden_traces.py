"""Golden-trace regression suite.

Each scenario runs the full pipeline with observability enabled under a
fixed seed and zero simulated noise, canonicalizes the result (span tree
structure + discrete attrs + counter values + histogram bucket counts,
all timestamps scrubbed — see :mod:`repro.obs.golden`) and compares it
**exactly** against a checked-in JSON document.

When instrumentation changes on purpose, regenerate with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

and commit the diff — the point is that span-structure drift is always a
reviewed change, never an accident.  Scenarios run with ``store=None``:
the process-wide artifact store would make ``cache_hit`` attributes
depend on what ran earlier in the test session.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import run_vsensor
from repro.obs import Obs, canonical_obs
from repro.sim import MachineConfig
from repro.sim.noise import NoiseConfig
from repro.workloads import get_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

SIMPLE_SOURCE = """
global int NITER = 6;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Allreduce(16);
    }
    return 0;
}
"""


#: exercises the lockstep tier's full lifecycle deterministically: rank 0
#: takes a data-dependent detour with an MPI rendezvous inside it (diverge →
#: whole-batch drain), and the allreduce after the branch re-fuses the batch,
#: so the golden trace pins nonzero ``sim.lockstep.*`` counters.
LOCKSTEP_SOURCE = """
global int NITER = 4;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n; int r;
    r = MPI_Comm_rank();
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        if (r == 0) {
            compute_units(9);
            MPI_Sendrecv(0, 8);
        }
        MPI_Allreduce(16);
    }
    return 0;
}
"""


def _machine(n_ranks: int = 4) -> MachineConfig:
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def _scenario_simple_bytecode():
    return dict(source=SIMPLE_SOURCE, machine=_machine(), engine="bytecode")


def _scenario_simple_ast():
    return dict(source=SIMPLE_SOURCE, machine=_machine(), engine="ast")


def _scenario_lossy_channel():
    return dict(
        source=SIMPLE_SOURCE,
        machine=_machine(),
        engine="bytecode",
        channel="drop=0.2,dup=0.1,seed=7",
    )


def _scenario_fwq_micro():
    fwq = get_workload("FWQ")
    return dict(source=fwq.source(scale=1), machine=_machine(n_ranks=2), engine="bytecode")


def _scenario_live_interleaved():
    # Interleaved ingest/query: the live reporter pulls matrices while
    # batches are still arriving, so the trace pins the columnar server's
    # per-epoch ``server.replay`` spans and replay-kind counters.
    from repro.runtime.live import LiveReporter

    # Periods tuned to the micro-program's ~1.8 ms virtual runtime so the
    # trace shows both replay kinds (incremental roll-forward and full
    # re-sort) under interleaving.
    return dict(
        source=SIMPLE_SOURCE,
        machine=_machine(),
        engine="bytecode",
        batch_period_us=1000.0,
        live=LiveReporter(period_us=500.0),
    )


def _scenario_lockstep():
    return dict(source=LOCKSTEP_SOURCE, machine=_machine(), engine="lockstep")


def _scenario_governor():
    # Adaptive overhead governor under a deliberately tiny budget + short
    # eval period so the micro-program's ~1.8 ms run produces demotions:
    # the golden pins the ``governor.*`` counters and the per-rank
    # demote/promote attrs on ``runtime.rank_detector`` spans.  Governor
    # decisions are pure virtual-time accounting, so the trace is exactly
    # as deterministic as the ungoverned scenarios.
    from repro.runtime.governor import GovernorConfig

    return dict(
        source=SIMPLE_SOURCE,
        machine=_machine(),
        engine="bytecode",
        governor=GovernorConfig(
            overhead_budget=0.002, eval_period_us=200.0, demote_patience=1
        ),
    )


def _scenario_multi_job_sharded():
    # Two tenants through the sharded service: the trace pins the per-job
    # ``vsensor.simulate``/``vsensor.analyze`` spans, the ``service.ingest``
    # span, per-shard ``service.shard.*.apply`` spans and counters, and the
    # merger's ``service.merge.refresh`` spans — the whole multi-tenant
    # span topology is a reviewed artifact.
    from repro.api import JobSpec, run_multi_job

    def runner(obs):
        specs = [
            JobSpec(SIMPLE_SOURCE, _machine(), job_id=0),
            JobSpec(SIMPLE_SOURCE, _machine(), job_id=1),
        ]
        run_multi_job(
            specs,
            n_shards=2,
            window_us=1000.0,
            batch_period_us=500.0,
            store=None,
            obs=obs,
        )

    return dict(runner=runner)


SCENARIOS = {
    "governor": _scenario_governor,
    "lockstep": _scenario_lockstep,
    "simple_bytecode": _scenario_simple_bytecode,
    "simple_ast": _scenario_simple_ast,
    "lossy_channel": _scenario_lossy_channel,
    "fwq_micro": _scenario_fwq_micro,
    "live_interleaved": _scenario_live_interleaved,
    "multi_job_sharded": _scenario_multi_job_sharded,
}


def _observe(scenario: dict) -> dict:
    obs = Obs.create()
    runner = scenario.pop("runner", None)
    if runner is not None:
        runner(obs=obs)
    else:
        run_vsensor(store=None, obs=obs, **scenario)
    return canonical_obs(obs)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    document = _observe(SCENARIOS[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden file {path.name} missing — regenerate with REPRO_UPDATE_GOLDEN=1"
        )
    expected = json.loads(path.read_text())
    assert document == expected, (
        f"canonical trace for {name!r} drifted from {path.name}; if the "
        "instrumentation change is intentional, regenerate the goldens"
    )


def test_golden_runs_are_deterministic():
    """Two fresh runs of one scenario canonicalize identically."""
    scenario = SCENARIOS["simple_bytecode"]
    assert _observe(scenario()) == _observe(scenario())


def test_no_stray_golden_files():
    """Every checked-in golden corresponds to a scenario (catches renames)."""
    names = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert names == set(SCENARIOS)
