"""The disabled (null) observability path must be a true no-op.

``NULL_OBS`` is the process-wide default wired through every constructor;
these tests pin that using the API without ``obs=`` records nothing,
costs nothing measurable, and leaves the shared bundle pristine.
"""

from repro.api import compile_and_instrument, run_vsensor
from repro.obs import NULL_OBS, NullMetricsRegistry, NullTracer, Obs
from repro.sim import MachineConfig
from repro.sim.noise import NoiseConfig

SOURCE = """
global int NITER = 4;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Barrier();
    }
    return 0;
}
"""


def quiet_machine() -> MachineConfig:
    return MachineConfig(
        n_ranks=2,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def test_null_obs_is_disabled_and_shared():
    assert NULL_OBS.enabled is False
    assert isinstance(NULL_OBS.tracer, NullTracer)
    assert isinstance(NULL_OBS.metrics, NullMetricsRegistry)
    assert NULL_OBS.self_cost_s() == 0.0
    assert NULL_OBS.overhead_fraction(1.0) == 0.0


def test_obs_create_is_enabled():
    obs = Obs.create()
    assert obs.enabled is True
    assert obs.tracer.enabled and obs.metrics.enabled


def test_compile_default_records_nothing():
    compile_and_instrument(SOURCE, store=None)
    assert NULL_OBS.tracer.records() == []
    assert NULL_OBS.metrics.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_run_vsensor_default_records_nothing():
    run = run_vsensor(SOURCE, quiet_machine(), store=None)
    assert run.report is not None
    assert NULL_OBS.tracer.records() == []
    assert NULL_OBS.metrics.op_count() == 0


def test_run_vsensor_with_obs_populates_only_that_bundle():
    obs = Obs.create()
    run_vsensor(SOURCE, quiet_machine(), store=None, obs=obs)
    assert len(obs.tracer.records()) > 0
    assert obs.metrics.op_count() > 0
    assert NULL_OBS.tracer.records() == []
    assert NULL_OBS.metrics.op_count() == 0


def test_detectors_get_no_metrics_when_disabled():
    run = run_vsensor(SOURCE, quiet_machine(), store=None)
    assert all(d.metrics is None for d in run.runtime.detectors.values())


def test_overhead_report_shape():
    obs = Obs.create()
    run_vsensor(SOURCE, quiet_machine(), store=None, obs=obs)
    report = obs.overhead_report(wall_s=1.0)
    assert set(report) >= {
        "tracer_self_s", "metrics_estimated_s", "overhead_fraction", "spans", "metric_ops",
    }
    assert 0.0 <= report["overhead_fraction"] < 1.0
    assert report["spans"] == len(obs.tracer.records())
