"""Self-overhead budget: observability must cost <3% of run wall time.

The paper's whole premise is observation cheap enough to leave on
(<1% for vSensor probes, §6.3); the reproduction holds its *own*
observability to a 3% budget on the micro workloads.  CI runs this as
part of the ``obs`` job.
"""

from __future__ import annotations

import time

import pytest

from repro.api import run_vsensor
from repro.obs import Obs
from repro.sim import MachineConfig
from repro.sim.noise import NoiseConfig
from repro.workloads import get_workload

BUDGET = 0.03


def _measure_once() -> tuple[float, Obs]:
    fwq = get_workload("FWQ")
    machine = MachineConfig(
        n_ranks=2,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )
    obs = Obs.create()
    t0 = time.perf_counter()
    run_vsensor(fwq.source(scale=1), machine, store=None, obs=obs)
    return time.perf_counter() - t0, obs


def test_micro_workload_overhead_under_budget():
    # best-of-2 guards against a one-off scheduler hiccup inflating the
    # self-cost brackets relative to the wall
    fractions = []
    for _ in range(2):
        wall, obs = _measure_once()
        fractions.append(obs.overhead_fraction(wall))
    best = min(fractions)
    assert best < BUDGET, (
        f"observability self-overhead {best:.2%} exceeds the {BUDGET:.0%} budget"
    )


def test_overhead_report_is_consistent():
    wall, obs = _measure_once()
    report = obs.overhead_report(wall)
    assert report["wall_s"] == wall
    assert report["tracer_self_s"] + report["metrics_estimated_s"] == pytest.approx(
        obs.self_cost_s(), rel=0.5
    )
    # the metrics term is re-calibrated per call, so only approximately stable
    assert report["overhead_fraction"] == pytest.approx(
        obs.overhead_fraction(wall), rel=0.5
    )
    assert report["spans"] > 0 and report["metric_ops"] > 0
