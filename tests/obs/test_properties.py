"""Property tests: span trees stay well-formed; observability is neutral.

Two families:

* hypothesis-driven random span scripts — whatever the nesting, the
  recorded tree has no orphan exits, ``exit >= enter``, and every child
  interval lies inside its parent's;
* behaviour neutrality — running the full pipeline with an enabled
  ``Obs`` bundle produces bit-identical reports, matrices and cached
  artifacts to running with the disabled default, across both
  interpreter engines and with/without a lossy channel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_vsensor
from repro.obs import Obs, TraceError, Tracer
from repro.pipeline import ArtifactStore
from repro.sim import MachineConfig
from repro.sim.noise import NoiseConfig

SOURCE = """
global int NITER = 6;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Allreduce(16);
    }
    return 0;
}
"""


def quiet_machine() -> MachineConfig:
    return MachineConfig(
        n_ranks=4,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


# ---------------------------------------------------------------------------
# Well-formed nesting under arbitrary scripts
# ---------------------------------------------------------------------------

# A script is a list of actions replayed against one tracer:
#   "enter"    — open a child span
#   "exit"     — close the innermost open span (skipped when none is open)
#   ("emit", a, b) — record a pre-timed virtual leaf
_action = st.one_of(
    st.just("enter"),
    st.just("exit"),
    st.tuples(
        st.just("emit"),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
)


def _replay(script, capacity=1024) -> Tracer:
    clock = iter(range(1, 10_000))
    tracer = Tracer(capacity=capacity, clock=lambda: float(next(clock)))
    open_count = 0
    for i, action in enumerate(script):
        if action == "enter":
            tracer.enter(f"s{i}", step=i)
            open_count += 1
        elif action == "exit":
            if open_count:
                tracer.exit()
                open_count -= 1
        else:
            _, a, b = action
            tracer.emit(f"e{i}", a, b)
    while open_count:
        tracer.exit()
        open_count -= 1
    return tracer


@given(st.lists(_action, max_size=60))
@settings(max_examples=80, deadline=None)
def test_spans_nest_well_formed(script):
    tracer = _replay(script)
    records = tracer.records()
    by_seq = {r.seq: r for r in records}
    assert tracer.open_depth == 0
    for r in records:
        assert r.t_exit >= r.t_enter
        parent = by_seq.get(r.parent)
        if parent is None:
            continue
        assert parent.depth + 1 == r.depth or r.track == "sim"
        if r.track == "real":
            # real children lie strictly inside their parent's interval
            assert parent.t_enter <= r.t_enter
            assert r.t_exit <= parent.t_exit


@given(st.lists(_action, max_size=60), st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_wraparound_never_corrupts_records(script, capacity):
    tracer = _replay(script, capacity=capacity)
    records = tracer.records()
    assert len(records) <= capacity
    emits = sum(1 for a in script if isinstance(a, tuple))
    enters = sum(1 for a in script if a == "enter")
    assert len(records) + tracer.buffer.dropped == enters + emits
    # completion order is preserved after any number of wraps: real-track
    # exit stamps never decrease, and no two records share a seq
    real_exits = [r.t_exit for r in records if r.track == "real"]
    assert real_exits == sorted(real_exits)
    seqs = [r.seq for r in records]
    assert len(seqs) == len(set(seqs))


@given(st.lists(_action, max_size=40))
@settings(max_examples=40, deadline=None)
def test_orphan_exit_always_raises(script):
    tracer = _replay(script)
    with pytest.raises(TraceError):
        tracer.exit()


# ---------------------------------------------------------------------------
# Behaviour neutrality: obs on == obs off, bit for bit
# ---------------------------------------------------------------------------


def _run(obs, engine, channel, store):
    return run_vsensor(
        SOURCE,
        quiet_machine(),
        engine=engine,
        channel=channel,
        store=store,
        obs=obs,
    )


def _assert_identical(run_a, run_b):
    report_a, report_b = run_a.report, run_b.report
    assert report_a.summary() == report_b.summary()
    assert set(report_a.matrices) == set(report_b.matrices)
    for sensor_type, matrix in report_a.matrices.items():
        assert np.array_equal(matrix, report_b.matrices[sensor_type], equal_nan=True)
    for sensor_type, means in report_a.rank_means.items():
        assert np.array_equal(means, report_b.rank_means[sensor_type], equal_nan=True)
    assert [r.describe() for r in report_a.regions] == [
        r.describe() for r in report_b.regions
    ]
    assert run_a.sim.total_time == run_b.sim.total_time
    assert run_a.sim.mpi_matches == run_b.sim.mpi_matches
    assert run_a.channel_stats == run_b.channel_stats
    assert run_a.static.program.source == run_b.static.program.source


@pytest.mark.parametrize("engine", ["bytecode", "ast"])
@pytest.mark.parametrize("channel", [None, "drop=0.2,dup=0.1,seed=7"])
def test_observability_is_behavior_neutral(engine, channel):
    baseline = _run(None, engine, channel, store=None)
    observed = _run(Obs.create(), engine, channel, store=None)
    _assert_identical(baseline, observed)


def test_cached_artifacts_identical_with_and_without_obs():
    store_off, store_on = ArtifactStore(), ArtifactStore()
    _run(None, "bytecode", None, store=store_off)
    obs = Obs.create()
    _run(obs, "bytecode", None, store=store_on)
    keys_off = sorted(store_off._entries)
    keys_on = sorted(store_on._entries)
    assert keys_off == keys_on  # obs is never part of a cache fingerprint
    # a second observed run over the obs-off store hits every pass
    before = store_off.stats.hits
    run = _run(Obs.create(), "bytecode", None, store=store_off)
    assert store_off.stats.hits > before
    assert run.static.profile.misses == 0
