"""Chrome trace_event export: schema round-trip and flame summary."""

import json

import pytest

from repro.obs import (
    TraceFormatError,
    Tracer,
    chrome_trace,
    flame_summary,
    parse_chrome_trace,
    write_chrome_trace,
)


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 100.0
        return self.now


@pytest.fixture
def traced():
    tracer = Tracer(clock=StepClock())
    with tracer.span("compile", passes=3):
        with tracer.span("parse"):
            pass
    with tracer.span("simulate"):
        tracer.emit("rank", 0.0, 500.0, rank=0)
        tracer.emit("rank", 0.0, 400.0, rank=1)
    return tracer


class TestChromeExport:
    def test_round_trip_through_parser(self, traced):
        doc = chrome_trace(traced)
        spans = parse_chrome_trace(doc)
        assert len(spans) == 5
        # round-trips through JSON text too
        assert parse_chrome_trace(json.dumps(doc)) == spans

    def test_events_carry_names_tracks_and_args(self, traced):
        spans = parse_chrome_trace(chrome_trace(traced))
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["compile"][0]["args"] == {"passes": 3}
        assert by_name["compile"][0]["cat"] == "real"
        ranks = by_name["rank"]
        assert [r["cat"] for r in ranks] == ["sim", "sim"]
        assert sorted(r["args"]["rank"] for r in ranks) == [0, 1]
        # tracks map to distinct tids
        assert {r["tid"] for r in ranks} != {by_name["compile"][0]["tid"]}

    def test_metadata_names_both_tracks(self, traced):
        doc = chrome_trace(traced)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert sorted(m["args"]["name"] for m in meta) == ["real", "sim"]
        assert doc["otherData"]["dropped_spans"] == 0

    def test_dropped_spans_reported(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert chrome_trace(tracer)["otherData"]["dropped_spans"] == 3

    def test_write_and_reload_file(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced, str(path))
        assert len(parse_chrome_trace(path.read_text())) == 5


class TestParserRejections:
    def test_missing_trace_events(self):
        with pytest.raises(TraceFormatError, match="traceEvents"):
            parse_chrome_trace({"foo": []})

    def test_unsupported_phase(self):
        doc = {"traceEvents": [{"ph": "B", "name": "x"}]}
        with pytest.raises(TraceFormatError, match="phase"):
            parse_chrome_trace(doc)

    def test_missing_field(self):
        event = {"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 0, "tid": 0}
        with pytest.raises(TraceFormatError, match="args"):
            parse_chrome_trace({"traceEvents": [event]})

    def test_wrong_type(self):
        event = {
            "name": "x", "ph": "X", "ts": "soon", "dur": 1.0,
            "pid": 0, "tid": 0, "args": {},
        }
        with pytest.raises(TraceFormatError, match="ts"):
            parse_chrome_trace({"traceEvents": [event]})

    def test_negative_duration(self):
        event = {
            "name": "x", "ph": "X", "ts": 0.0, "dur": -1.0,
            "pid": 0, "tid": 0, "args": {},
        }
        with pytest.raises(TraceFormatError, match="negative"):
            parse_chrome_trace({"traceEvents": [event]})


class TestFlameSummary:
    def test_indented_paths_with_counts(self, traced):
        text = flame_summary(traced)
        lines = text.splitlines()
        assert "flame summary (real track)" in lines[0]
        names = [line.split()[-1] for line in lines[1:]]
        assert names == ["compile", "parse", "simulate"]
        parse_line = next(line for line in lines if line.endswith("parse"))
        assert "1x" in parse_line
        # child is indented deeper than its parent
        compile_line = next(line for line in lines if line.endswith("compile"))
        assert parse_line.index("parse") > compile_line.index("compile")

    def test_sim_track_aggregates_repeats(self, traced):
        text = flame_summary(traced, track="sim")
        rank_line = next(line for line in text.splitlines() if line.endswith("rank"))
        assert "2x" in rank_line

    def test_empty_track_message(self):
        assert "no real-track spans" in flame_summary(Tracer())

    def test_siblings_sorted_by_total_time(self):
        tracer = Tracer(clock=StepClock())
        with tracer.span("root"):
            with tracer.span("fast"):
                pass
            with tracer.span("slow"):
                with tracer.span("inner"):
                    pass
        names = [line.split()[-1] for line in flame_summary(tracer).splitlines()[1:]]
        assert names == ["root", "slow", "inner", "fast"]

    def test_wraparound_appends_dropped_note(self):
        tracer = Tracer(capacity=2)
        with tracer.span("outer"):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        text = flame_summary(tracer)
        assert text.splitlines()[-1] == "(+2 dropped by ring wraparound)"
