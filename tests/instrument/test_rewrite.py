"""Tick/Tock rewriting tests (§4, workflow steps 4-5)."""

import pytest

from repro.frontend import ast_nodes as A, format_module, parse_source
from repro.instrument import instrument_module, select_sensors
from repro.instrument.rewrite import TICK, TOCK
from repro.sensors import identify_vsensors


def instrumented(src, max_depth=3):
    mod = parse_source(src)
    result = identify_vsensors(mod)
    plan = select_sensors(result, max_depth=max_depth)
    return instrument_module(mod, plan.selected), plan


SRC = """
global int c = 0;
void kernel() {
    int i;
    for (i = 0; i < 6; i = i + 1) c = c + 1;
}
int main() {
    int n;
    for (n = 0; n < 5; n = n + 1) {
        kernel();
        MPI_Barrier();
    }
    return 0;
}
"""


def test_probe_pairs_inserted():
    prog, plan = instrumented(SRC)
    text = prog.source
    assert text.count(TICK) == len(plan.selected)
    assert text.count(TOCK) == len(plan.selected)


def test_probe_order_tick_before_tock():
    prog, _ = instrumented(SRC)
    text = prog.source
    assert text.index(TICK) < text.index(TOCK)


def test_instrumented_source_reparses():
    prog, _ = instrumented(SRC)
    reparsed = parse_source(prog.source)
    assert reparsed.has_function("main")


def test_sensor_registry_matches_selection():
    prog, plan = instrumented(SRC)
    assert set(prog.sensors) == {s.sensor_id for s in plan.selected}


def test_sensor_info_fields():
    prog, plan = instrumented(SRC)
    for sensor in plan.selected:
        info = prog.sensors[sensor.sensor_id]
        assert info.function == sensor.function
        assert info.sensor_type is sensor.sensor_type
        assert info.line == sensor.loc.line


def test_probe_wraps_carrier_statement():
    prog, _ = instrumented(SRC)
    main = prog.module.function("main")
    loop_body = main.body.stmts[1].body
    texts = [type(s).__name__ for s in loop_body.stmts]
    # tick, kernel-call, tock, tick, barrier, tock
    calls = [
        s.expr.callee
        for s in loop_body.stmts
        if isinstance(s, A.ExprStmt) and isinstance(s.expr, A.CallExpr)
    ]
    assert calls == [TICK, "kernel", TOCK, TICK, "MPI_Barrier", TOCK]


def test_probe_argument_is_sensor_id():
    prog, plan = instrumented(SRC)
    text = prog.source
    for sensor in plan.selected:
        assert f"{TICK}({sensor.sensor_id})" in text
        assert f"{TOCK}({sensor.sensor_id})" in text


def test_multiple_sensors_one_block_order_preserved():
    src = """
    global int c = 0;
    int main() {
        int n; int a; int b;
        for (n = 0; n < 5; n = n + 1) {
            for (a = 0; a < 3; a = a + 1) c = c + 1;
            for (b = 0; b < 4; b = b + 1) c = c + 1;
        }
        return 0;
    }
    """
    prog, plan = instrumented(src)
    assert len(plan.selected) == 2
    reparsed = parse_source(prog.source)
    assert reparsed.has_function("main")


def test_uninstrumentable_snippet_skipped():
    """A call in a for-step can't be wrapped at statement level."""
    src = """
    int tick_fn() { return 1; }
    int main() {
        int n; int x = 0;
        for (n = 0; n < 5; n = n + tick_fn()) x = x + 1;
        return 0;
    }
    """
    mod = parse_source(src)
    result = identify_vsensors(mod)
    # tick_fn call may or may not be a sensor; just exercise the rewrite.
    plan = select_sensors(result)
    prog = instrument_module(mod, plan.selected)
    parse_source(prog.source)  # must stay parseable
