"""Manual-annotation tests."""

import pytest

from repro.frontend.parser import parse_source
from repro.instrument import select_sensors
from repro.instrument.annotations import Annotations, SnippetRef, apply_annotations
from repro.sensors import SensorType, identify_vsensors


SRC = """
global int c = 0;
int main() {
    int n; int k; int m;
    for (n = 0; n < 20; n = n + 1) {
        m = rand() % 4;
        for (k = 0; k < m + 3; k = k + 1) c = c + 1;
        for (k = 0; k < 8; k = k + 1) c = c + 1;
        MPI_Barrier();
    }
    return 0;
}
"""


def lines_of(src):
    """line numbers of the two inner loops and the barrier (7, 8, 9)."""
    return 7, 8, 9


def test_exclude_drops_identified_sensor():
    mod = parse_source(SRC)
    result = identify_vsensors(mod)
    fixed_loop_line = 8
    assert any(s.loc.line == fixed_loop_line for s in result.sensors)
    apply_annotations(result, Annotations(exclude=[SnippetRef("main", fixed_loop_line)]))
    assert not any(s.loc.line == fixed_loop_line for s in result.sensors)


def test_include_forces_rejected_snippet():
    mod = parse_source(SRC)
    result = identify_vsensors(mod)
    variant_loop_line = 7
    assert not any(s.loc.line == variant_loop_line for s in result.sensors)
    apply_annotations(result, Annotations(include=[SnippetRef("main", variant_loop_line)]))
    forced = [s for s in result.sensors if s.loc.line == variant_loop_line]
    assert len(forced) == 1
    assert forced[0].is_global
    assert forced[0].sensor_type is SensorType.COMPUTATION


def test_forced_sensor_is_selectable():
    mod = parse_source(SRC)
    result = identify_vsensors(mod)
    apply_annotations(result, Annotations(include=[SnippetRef("main", 7)]))
    plan = select_sensors(result)
    assert any(s.loc.line == 7 for s in plan.selected)


def test_include_of_already_identified_is_noop():
    mod = parse_source(SRC)
    result = identify_vsensors(mod)
    before = len(result.sensors)
    apply_annotations(result, Annotations(include=[SnippetRef("main", 8)]))
    assert len(result.sensors) == before


def test_include_of_unknown_location_ignored():
    mod = parse_source(SRC)
    result = identify_vsensors(mod)
    before = len(result.sensors)
    apply_annotations(result, Annotations(include=[SnippetRef("main", 999)]))
    assert len(result.sensors) == before


def test_forced_network_snippet_classified():
    src = """
    int main() {
        int n; int sz;
        for (n = 0; n < 5; n = n + 1) {
            sz = rand() % 8;
            MPI_Allreduce(sz + 1);
        }
        return 0;
    }
    """
    mod = parse_source(src)
    result = identify_vsensors(mod)
    # The allreduce's size varies: rejected (rand() itself is a fixed-cost
    # call and legitimately remains a sensor).
    assert not any(s.loc.line == 6 for s in result.sensors)
    apply_annotations(result, Annotations(include=[SnippetRef("main", 6)]))
    forced = [s for s in result.sensors if s.loc.line == 6]
    assert len(forced) == 1
    assert forced[0].sensor_type is SensorType.NETWORK
