"""Selection-rule tests (§4)."""

import pytest

from repro.frontend.parser import parse_source
from repro.instrument import select_sensors
from repro.sensors import SensorType, identify_vsensors


def plan_for(src, max_depth=3):
    result = identify_vsensors(parse_source(src))
    return select_sensors(result, max_depth=max_depth), result


NESTED_SRC = """
global int c = 0;
int main() {
    int a; int b;
    for (a = 0; a < 5; a = a + 1) {
        for (b = 0; b < 4; b = b + 1) c = c + 1;
    }
    return 0;
}
"""


def test_only_global_sensors_selected():
    src = """
    global int c = 0;
    int main() {
        int n; int k; int m;
        for (n = 0; n < 5; n = n + 1) {
            m = n + 1;
            for (k = 0; k < 4; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    plan, result = plan_for(src)
    assert all(s.is_global for s in plan.selected)


def test_nested_prefers_outermost():
    plan, _ = plan_for(NESTED_SRC)
    # Inner loop (depth 1) is global too, but is nested inside... actually
    # the outer loop here is not a sensor of anything (no enclosing loop
    # around it, executes once) — wait: main's a-loop has no enclosing loop
    # and repeats only via nothing: it is NOT a sensor. So only the inner
    # loop is selected.
    assert len(plan.selected) == 1
    assert plan.selected[0].snippet.depth == 1


def test_cross_function_nesting_excluded():
    src = """
    void kernel() {
        int i;
        for (i = 0; i < 4; i = i + 1) compute_units(5);
    }
    int main() {
        int n;
        for (n = 0; n < 5; n = n + 1) kernel();
        return 0;
    }
    """
    plan, _ = plan_for(src)
    spelled = {s.snippet.spelled for s in plan.selected}
    assert spelled == {"call kernel"}
    assert any(s.function == "kernel" for s in plan.rejected_nested)


def test_max_depth_zero_keeps_only_outermost():
    src = """
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 5; n = n + 1) {
            for (k = 0; k < 4; k = k + 1) c = c + 1;
            MPI_Barrier();
        }
        return 0;
    }
    """
    plan, _ = plan_for(src, max_depth=1)
    assert all(s.snippet.depth < 1 for s in plan.selected)
    assert len(plan.rejected_depth) >= 1


def test_tiny_extern_calls_not_selected():
    src = """
    int main() {
        int n; float x = 2.0;
        for (n = 0; n < 5; n = n + 1) x = sqrt(x);
        return 0;
    }
    """
    plan, _ = plan_for(src)
    assert plan.selected == []
    assert len(plan.rejected_tiny) == 1


def test_summary_string_format(simple_module):
    result = identify_vsensors(simple_module)
    plan = select_sensors(result)
    summary = plan.summary()
    assert "Comp" in summary or "Net" in summary


def test_by_type_counts(simple_module):
    result = identify_vsensors(simple_module)
    plan = select_sensors(result)
    counts = plan.by_type()
    assert sum(counts.values()) == len(plan.selected)


def test_selected_flag_set(simple_module):
    result = identify_vsensors(simple_module)
    plan = select_sensors(result)
    for sensor in plan.selected:
        assert sensor.selected


def test_empty_program_empty_plan():
    plan, _ = plan_for("int main() { return 0; }")
    assert plan.selected == []
    assert plan.summary() == "0"
