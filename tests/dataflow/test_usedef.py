"""Use-def chain tests."""

from repro.dataflow import build_use_def_chains
from repro.frontend.parser import parse_source
from repro.ir import BinInstr, Load, Store, lower_module


def chains_for(src, fn="main"):
    module = lower_module(parse_source(src))
    f = module.function(fn)
    return f, build_use_def_chains(f, set(module.globals))


def test_register_def_lookup():
    fn, chains = chains_for("int main() { int x; x = 1 + 2; return x; }")
    bin_instr = next(i for i in fn.instructions() if isinstance(i, BinInstr))
    assert chains.def_of_reg(bin_instr.dest) is bin_instr


def test_every_used_register_has_def(paper_module):
    from repro.ir import Reg, lower_module as lm

    module = lm(paper_module)
    for name, fn in module.functions.items():
        chains = build_use_def_chains(fn, set(module.globals))
        for instr in fn.instructions():
            for op in instr.operands():
                if isinstance(op, Reg):
                    assert chains.def_of_reg(op) is not None


def test_defs_for_load_links_to_store():
    fn, chains = chains_for("int main() { int x; x = 7; return x; }")
    load = next(i for i in fn.instructions() if isinstance(i, Load) and i.var == "x")
    defs = chains.defs_for_load(load)
    assert len(defs) == 1
    assert isinstance(defs[0].instr, Store)


def test_defs_for_array_load():
    fn, chains = chains_for("global int a[4]; int main() { a[0] = 1; return a[2]; }")
    from repro.ir import LoadElem

    load = next(i for i in fn.instructions() if isinstance(i, LoadElem))
    defs = chains.defs_for_load(load)
    assert any(d.is_may for d in defs)


def test_defs_before_arbitrary_instr():
    fn, chains = chains_for("int main() { int x; int y; x = 1; y = 2; return x; }")
    load = next(i for i in fn.instructions() if isinstance(i, Load))
    defs = chains.defs_before(load, "y")
    assert len(defs) >= 1
