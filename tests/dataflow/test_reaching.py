"""Reaching-definition tests."""

from repro.dataflow import compute_reaching_definitions
from repro.frontend.parser import parse_source
from repro.ir import CallInstr, Load, Store, lower_module


def setup(src, fn="main", mods=None):
    module = lower_module(parse_source(src))
    f = module.function(fn)
    reaching = compute_reaching_definitions(
        f, set(module.globals), call_mod_sets=mods
    )
    return module, f, reaching


def load_of(fn, var, occurrence=0):
    loads = [i for i in fn.instructions() if isinstance(i, Load) and i.var == var]
    return loads[occurrence]


def test_straight_line_kill():
    _, fn, reaching = setup("int main() { int x; x = 1; x = 2; return x; }")
    load = load_of(fn, "x")
    defs = reaching.reaching_before(load, "x")
    stores = [d for d in defs if isinstance(d.instr, Store)]
    assert len(stores) == 1  # x=2 killed x=1


def test_branch_merges_definitions():
    _, fn, reaching = setup(
        "int main() { int x; int c; if (c) x = 1; else x = 2; return x; }"
    )
    load = load_of(fn, "x")
    defs = [d for d in reaching.reaching_before(load, "x") if not d.is_entry]
    assert len(defs) == 2


def test_if_without_else_keeps_prior_def():
    _, fn, reaching = setup(
        "int main() { int x; int c; x = 1; if (c) x = 2; return x; }"
    )
    load = load_of(fn, "x")
    defs = [d for d in reaching.reaching_before(load, "x") if not d.is_entry]
    assert len(defs) == 2


def test_loop_back_edge_brings_defs_around():
    _, fn, reaching = setup(
        "int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }"
    )
    # The header's load of i sees both the init and the step definition.
    load = load_of(fn, "i")
    defs = [d for d in reaching.reaching_before(load, "i") if not d.is_entry]
    assert len(defs) == 2


def test_entry_definitions_for_params():
    _, fn, reaching = setup("int f(int p) { return p; }", fn="f")
    load = load_of(fn, "p")
    defs = reaching.reaching_before(load, "p")
    assert len(defs) == 1 and defs[0].is_entry


def test_entry_definitions_for_globals():
    _, fn, reaching = setup("global int G; int main() { return G; }")
    load = load_of(fn, "G")
    defs = reaching.reaching_before(load, "G")
    assert len(defs) == 1 and defs[0].is_entry


def test_global_store_kills_entry():
    _, fn, reaching = setup("global int G; int main() { G = 1; return G; }")
    load = load_of(fn, "G")
    defs = reaching.reaching_before(load, "G")
    assert len(defs) == 1 and not defs[0].is_entry


def test_array_store_is_may_def():
    _, fn, reaching = setup(
        "global int a[4]; int main() { a[0] = 1; return a[1]; }"
    )
    from repro.ir import LoadElem

    load = next(i for i in fn.instructions() if isinstance(i, LoadElem))
    defs = reaching.reaching_before(load, "a")
    # Entry def survives (may-def doesn't kill) plus the element store.
    kinds = sorted(d.is_entry for d in defs)
    assert kinds == [False, True]
    assert any(d.is_may for d in defs)


def test_call_mod_set_injects_may_def():
    src = "global int G; void f() { G = 1; } int main() { f(); return G; }"

    def mods(call: CallInstr):
        return {"G"} if call.callee == "f" else set()

    _, fn, reaching = setup(src, mods=mods)
    load = load_of(fn, "G")
    defs = reaching.reaching_before(load, "G")
    assert any(isinstance(d.instr, CallInstr) and d.is_may for d in defs)
    # Entry def survives because the call def is a may-def.
    assert any(d.is_entry for d in defs)


def test_no_call_mods_by_default():
    src = "global int G; void f() { G = 1; } int main() { f(); return G; }"
    _, fn, reaching = setup(src)
    load = load_of(fn, "G")
    defs = reaching.reaching_before(load, "G")
    assert all(not isinstance(d.instr, CallInstr) for d in defs)


def test_locals_have_entry_defs_for_uninitialized_reads():
    _, fn, reaching = setup("int main() { int x; return x; }")
    load = load_of(fn, "x")
    defs = reaching.reaching_before(load, "x")
    assert len(defs) == 1 and defs[0].is_entry
