"""Dynamic-rule tests (§3.1 dynamic rules, Fig. 13)."""

import pytest

from repro.runtime.dynrules import CacheMissBands, NoGrouping, ThresholdMiss
from repro.runtime.records import SensorRecord
from repro.sensors.model import SensorType


def rec(miss):
    return SensorRecord(
        rank=0,
        sensor_id=1,
        sensor_type=SensorType.COMPUTATION,
        t_start=0.0,
        t_end=1.0,
        instructions=10.0,
        cache_miss_rate=miss,
    )


def test_no_grouping_single_group():
    rule = NoGrouping()
    assert rule.group(rec(0.01)) == rule.group(rec(0.9)) == ""


def test_cache_miss_bands():
    rule = CacheMissBands(band_width=0.10)
    assert rule.group(rec(0.05)) == "miss0"
    assert rule.group(rec(0.15)) == "miss1"
    assert rule.group(rec(0.95)) == "miss9"


def test_band_width_validation():
    with pytest.raises(ValueError):
        CacheMissBands(band_width=0.0)
    with pytest.raises(ValueError):
        CacheMissBands(band_width=1.5)


def test_threshold_rule_binary():
    rule = ThresholdMiss(threshold=0.5)
    assert rule.group(rec(0.2)) == "L"
    assert rule.group(rec(0.7)) == "H"


def test_fig13_scenario():
    """Fig. 13: wall times [3,3,7,3,5,3,7,3,3,3], miss rates H for the 7s
    and record 4's 5s is a low-miss outlier.

    Case 1 (no grouping): records 2, 4, 6 score below threshold.
    Case 2 (grouped): only record 4 is a variance in the L group; the H
    group (both 7s) shows none.
    """
    from repro.runtime.detector import DetectorConfig, RankDetector

    walls = [3.0, 3.0, 7.0, 3.0, 5.0, 3.0, 7.0, 3.0, 3.0, 3.0]
    misses = [0.1, 0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1]

    def feed(rule):
        det = RankDetector(
            rank=0,
            config=DetectorConfig(slice_us=10.0, threshold=0.7, min_duration_us=0.0),
            rule=rule,
        )
        t = 0.0
        for wall, miss in zip(walls, misses):
            t += 10.0  # one record per slice
            det.add(
                SensorRecord(
                    rank=0,
                    sensor_id=1,
                    sensor_type=SensorType.COMPUTATION,
                    t_start=t - wall,
                    t_end=t,
                    instructions=10.0,
                    cache_miss_rate=miss,
                )
            )
        det.finish()
        return det.events

    case1 = feed(NoGrouping())
    # Records 2, 4, 6 are slower than the standard 3.0 by > threshold.
    assert len(case1) == 3

    case2 = feed(ThresholdMiss(threshold=0.5))
    # Grouped: the two 7s form their own (consistent) group; only the 5
    # in the low-miss group remains a variance.
    assert len(case2) == 1
    assert case2[0].group == "L"
