"""Dynamic-rule tests (§3.1 dynamic rules, Fig. 13)."""

import pytest

from repro.runtime.dynrules import CacheMissBands, NoGrouping, ThresholdMiss
from repro.runtime.records import SensorRecord
from repro.sensors.model import SensorType


def rec(miss):
    return SensorRecord(
        rank=0,
        sensor_id=1,
        sensor_type=SensorType.COMPUTATION,
        t_start=0.0,
        t_end=1.0,
        instructions=10.0,
        cache_miss_rate=miss,
    )


def test_no_grouping_single_group():
    rule = NoGrouping()
    assert rule.group(rec(0.01)) == rule.group(rec(0.9)) == ""


def test_cache_miss_bands():
    rule = CacheMissBands(band_width=0.10)
    assert rule.group(rec(0.05)) == "miss0"
    assert rule.group(rec(0.15)) == "miss1"
    assert rule.group(rec(0.95)) == "miss9"


def test_band_width_validation():
    with pytest.raises(ValueError):
        CacheMissBands(band_width=0.0)
    with pytest.raises(ValueError):
        CacheMissBands(band_width=1.5)


def test_threshold_rule_binary():
    rule = ThresholdMiss(threshold=0.5)
    assert rule.group(rec(0.2)) == "L"
    assert rule.group(rec(0.7)) == "H"


def irec(instructions):
    return SensorRecord(
        rank=0,
        sensor_id=1,
        sensor_type=SensorType.COMPUTATION,
        t_start=0.0,
        t_end=1.0,
        instructions=instructions,
        cache_miss_rate=0.1,
    )


def test_cache_miss_band_edges():
    # band_width 0.25 is exactly representable: edges land exactly on
    # band starts, and a rate of exactly 1.0 maps to the final band.
    rule = CacheMissBands(band_width=0.25)
    assert rule.group(rec(0.0)) == "miss0"
    assert rule.group(rec(0.25)) == "miss1"
    assert rule.group(rec(0.5)) == "miss2"
    assert rule.group(rec(0.75)) == "miss3"
    assert rule.group(rec(1.0)) == "miss4"


def test_cache_miss_rate_one_with_default_bands():
    # rate == 1.0 must classify (not raise / fall off the end); with the
    # non-representable default width the band index is whatever float
    # division yields, and it must agree with neighbouring rates.
    rule = CacheMissBands()
    assert rule.group(rec(1.0)) == f"miss{int(1.0 / 0.10)}"
    assert rule.group(rec(0.999)) == "miss9"


def test_threshold_exactly_at_threshold_is_high():
    # the comparison is >=: the boundary record lands in the H group
    rule = ThresholdMiss(threshold=0.5)
    assert rule.group(rec(0.5)) == "H"
    assert rule.group(rec(0.49999999)) == "L"


def test_instruction_bands_validation():
    from repro.runtime.dynrules import InstructionBands

    with pytest.raises(ValueError):
        InstructionBands(band_width=0.0)
    with pytest.raises(ValueError):
        InstructionBands(band_width=1.5)
    assert InstructionBands(0.10).name == "instruction-bands(10%)"


def test_instruction_bands_tiny_counts_collapse():
    from repro.runtime.dynrules import InstructionBands

    rule = InstructionBands()
    # counts below one instruction (and exactly one) share band i0: the
    # log is undefined/zero there, not a distinct workload class
    assert rule.group(irec(0.0)) == "i0"
    assert rule.group(irec(0.5)) == "i0"
    assert rule.group(irec(1.0)) == "i0"


def test_instruction_bands_group_near_constant_workloads():
    from repro.runtime.dynrules import InstructionBands

    rule = InstructionBands(band_width=0.10)
    # within 10% of each other -> same band; an order of magnitude apart
    # -> different bands, and band index grows with the count
    assert rule.group(irec(1000.0)) == rule.group(irec(1040.0))
    assert rule.group(irec(1000.0)) != rule.group(irec(10_000.0))
    bands = [int(rule.group(irec(10.0**k))[1:]) for k in range(1, 6)]
    assert bands == sorted(bands) and len(set(bands)) == len(bands)


def test_fig13_scenario():
    """Fig. 13: wall times [3,3,7,3,5,3,7,3,3,3], miss rates H for the 7s
    and record 4's 5s is a low-miss outlier.

    Case 1 (no grouping): records 2, 4, 6 score below threshold.
    Case 2 (grouped): only record 4 is a variance in the L group; the H
    group (both 7s) shows none.
    """
    from repro.runtime.detector import DetectorConfig, RankDetector

    walls = [3.0, 3.0, 7.0, 3.0, 5.0, 3.0, 7.0, 3.0, 3.0, 3.0]
    misses = [0.1, 0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1, 0.1]

    def feed(rule):
        det = RankDetector(
            rank=0,
            config=DetectorConfig(slice_us=10.0, threshold=0.7, min_duration_us=0.0),
            rule=rule,
        )
        t = 0.0
        for wall, miss in zip(walls, misses):
            t += 10.0  # one record per slice
            det.add(
                SensorRecord(
                    rank=0,
                    sensor_id=1,
                    sensor_type=SensorType.COMPUTATION,
                    t_start=t - wall,
                    t_end=t,
                    instructions=10.0,
                    cache_miss_rate=miss,
                )
            )
        det.finish()
        return det.events

    case1 = feed(NoGrouping())
    # Records 2, 4, 6 are slower than the standard 3.0 by > threshold.
    assert len(case1) == 3

    case2 = feed(ThresholdMiss(threshold=0.5))
    # Grouped: the two 7s form their own (consistent) group; only the 5
    # in the low-miss group remains a variance.
    assert len(case2) == 1
    assert case2[0].group == "L"
