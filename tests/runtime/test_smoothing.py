"""Slice-aggregation tests (§5.1)."""

import pytest

from repro.runtime.records import SensorRecord
from repro.runtime.smoothing import SliceAggregator
from repro.sensors.model import SensorType


def rec(t_end, duration=5.0, sensor_id=1, group="", miss=0.1, rank=0):
    return SensorRecord(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=SensorType.COMPUTATION,
        t_start=t_end - duration,
        t_end=t_end,
        instructions=100.0,
        cache_miss_rate=miss,
        group=group,
    )


def test_records_within_slice_accumulate():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    assert list(agg.add(rec(100.0))) == []
    assert list(agg.add(rec(500.0))) == []
    assert list(agg.add(rec(900.0))) == []
    out = agg.flush()
    assert len(out) == 1
    assert out[0].count == 3


def test_slice_boundary_emits():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(500.0, duration=4.0))
    emitted = agg.add(rec(1500.0, duration=8.0))
    assert len(emitted) == 1
    assert emitted[0].slice_index == 0
    assert emitted[0].mean_duration == pytest.approx(4.0)
    final = agg.flush()
    assert final[0].slice_index == 1
    assert final[0].mean_duration == pytest.approx(8.0)


def test_mean_duration_averages():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(100.0, duration=2.0))
    agg.add(rec(200.0, duration=4.0))
    out = agg.flush()
    assert out[0].mean_duration == pytest.approx(3.0)


def test_mean_cache_miss_averages():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(100.0, miss=0.2))
    agg.add(rec(200.0, miss=0.4))
    assert agg.flush()[0].mean_cache_miss == pytest.approx(0.3)


def test_sensors_aggregate_independently():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(100.0, sensor_id=1))
    agg.add(rec(200.0, sensor_id=2))
    out = agg.flush()
    assert {s.sensor_id for s in out} == {1, 2}


def test_groups_aggregate_independently():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(100.0, group="L"))
    agg.add(rec(200.0, group="H"))
    out = agg.flush()
    assert {s.group for s in out} == {"L", "H"}


def test_gap_slices_skipped():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(500.0))
    emitted = agg.add(rec(5500.0))
    assert emitted[0].slice_index == 0
    assert agg.flush()[0].slice_index == 5


def test_slice_start_time():
    agg = SliceAggregator(rank=0, slice_us=250.0)
    agg.add(rec(600.0))
    out = agg.flush()
    assert out[0].t_slice_start == pytest.approx(500.0)


def test_flush_clears_state():
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    agg.add(rec(100.0))
    agg.flush()
    assert agg.flush() == []


def test_summaries_pinned_across_rollovers():
    """Exact summary values across several slices (hot-path regression pin).

    The in-place accumulator must produce summaries identical to the naive
    one-accumulator-per-record implementation: same slice indices, counts
    and exact means, with the no-rollover path returning an empty result.
    """
    agg = SliceAggregator(rank=3, slice_us=1000.0)
    out = []
    stream = [
        (100.0, 2.0, 0.1),
        (700.0, 4.0, 0.3),
        (1200.0, 6.0, 0.5),   # rolls slice 0 -> 1
        (1800.0, 10.0, 0.7),
        (3100.0, 1.0, 0.2),   # skips slice 2 entirely
    ]
    for t_end, duration, miss in stream:
        emitted = agg.add(rec(t_end, duration=duration, miss=miss))
        if t_end not in (1200.0, 3100.0):
            assert not emitted
        out.extend(emitted)
    out.extend(agg.flush())
    assert [(s.slice_index, s.count, s.mean_duration, s.mean_cache_miss, s.t_slice_start)
            for s in out] == [
        (0, 2, 3.0, 0.2, 0.0),
        (1, 2, 8.0, 0.6, 1000.0),
        (3, 1, 1.0, 0.2, 3000.0),
    ]
    assert all(s.rank == 3 for s in out)


def test_smoothing_reduces_variance():
    """The Fig. 12 effect: slice averages are much less spread than raw."""
    import numpy as np

    rng = np.random.default_rng(1)
    agg = SliceAggregator(rank=0, slice_us=1000.0)
    raw = []
    out = []
    t = 0.0
    for _ in range(5000):
        duration = float(10.0 * rng.lognormal(0.0, 0.4))
        t += duration
        raw.append(duration)
        out.extend(agg.add(rec(t, duration=duration)))
    out.extend(agg.flush())
    smooth = [s.mean_duration for s in out]
    assert np.std(smooth) < np.std(raw) / 2
