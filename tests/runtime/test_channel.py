"""Lossy-channel simulator tests: determinism, fault mix, CLI spec parsing."""

import pytest

from repro.errors import ReproError
from repro.runtime.channel import (
    ChannelConfig,
    LossyChannel,
    perfect_channel,
    with_seed,
)


def _run_schedule(channel, n=200):
    """Send n one-item payloads and drain everything; return delivery order."""
    for i in range(n):
        channel.send(rank=i % 4, seq=i // 4, payload=(i,), now=float(i) * 100.0)
    order = []
    t = 0.0
    while channel.pending():
        t = channel.next_due()
        order.extend(e.payload[0] for e in channel.deliver_due(t))
    return order


# -- determinism -------------------------------------------------------------


def test_same_seed_same_failure_schedule():
    config = ChannelConfig(drop_rate=0.2, dup_rate=0.2, reorder_rate=0.3, seed=42)
    a = _run_schedule(LossyChannel(config=config))
    b = _run_schedule(LossyChannel(config=config))
    assert a == b


def test_different_seed_different_schedule():
    config = ChannelConfig(drop_rate=0.2, dup_rate=0.2, reorder_rate=0.3, seed=42)
    a = _run_schedule(LossyChannel(config=config))
    b = _run_schedule(LossyChannel(config=with_seed(config, 43)))
    assert a != b


# -- fault behaviour ---------------------------------------------------------


def test_perfect_channel_is_fifo_and_lossless():
    channel = perfect_channel(delay_us=10.0)
    delivered = _run_schedule(channel)
    assert delivered == list(range(200))
    assert channel.stats.dropped == 0
    assert channel.stats.duplicated == 0
    assert channel.stats.delivered == 200


def test_drop_rate_loses_messages():
    channel = LossyChannel(config=ChannelConfig(drop_rate=0.5, seed=1))
    delivered = _run_schedule(channel)
    assert 0 < len(delivered) < 200
    assert channel.stats.dropped == 200 - len(delivered)
    assert channel.stats.sent == 200


def test_dup_rate_creates_extra_copies():
    channel = LossyChannel(config=ChannelConfig(dup_rate=0.5, seed=1))
    delivered = _run_schedule(channel)
    assert len(delivered) > 200
    assert channel.stats.duplicated == len(delivered) - 200


def test_reordering_perturbs_delivery_order():
    channel = LossyChannel(config=ChannelConfig(reorder_rate=0.3, seed=7))
    delivered = _run_schedule(channel)
    assert sorted(delivered) == list(range(200)), "reordering never loses data"
    assert delivered != list(range(200))
    assert channel.stats.reordered > 0


def test_deliver_due_respects_virtual_time():
    channel = perfect_channel(delay_us=100.0)
    channel.send(0, 0, ("x",), now=0.0)
    assert channel.deliver_due(50.0) == []
    assert channel.next_due() == pytest.approx(100.0)
    (envelope,) = channel.deliver_due(100.0)
    assert envelope.payload == ("x",)
    assert channel.pending() == 0


# -- spec parsing ------------------------------------------------------------


def test_parse_full_spec():
    config = ChannelConfig.parse("drop=0.1, dup=0.05, reorder=0.2, delay=500, jitter=50, seed=7")
    assert config.drop_rate == 0.1
    assert config.dup_rate == 0.05
    assert config.reorder_rate == 0.2
    assert config.delay_us == 500.0
    assert config.jitter_us == 50.0
    assert config.seed == 7


def test_parse_shorthands():
    assert not ChannelConfig.parse("perfect").is_faulty
    lossy = ChannelConfig.parse("lossy")
    assert lossy.drop_rate == 0.1 and lossy.dup_rate == 0.1 and lossy.reorder_rate == 0.2


@pytest.mark.parametrize("spec", ["drop", "nope=1", "drop=1.5", "drop=", "dup=-0.1"])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ReproError):
        ChannelConfig.parse(spec)
