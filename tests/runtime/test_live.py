"""Live-reporter tests (on-line report updates, §2 step 8)."""

import numpy as np
import pytest

from repro.api import run_vsensor
from repro.runtime.live import LiveReporter, first_detection_time
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig
from tests.conftest import SIMPLE_MPI_PROGRAM


def test_snapshots_taken_periodically():
    reporter = LiveReporter(period_us=500.0)
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        live=reporter,
    )
    assert len(reporter.snapshots) >= 2
    times = [s.virtual_time_us for s in reporter.snapshots]
    assert times == sorted(times)
    assert all(b - a >= 500.0 for a, b in zip(times, times[1:]))


def test_snapshot_carries_matrices():
    reporter = LiveReporter(period_us=500.0)
    run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        window_us=500.0,
        live=reporter,
    )
    last = reporter.snapshots[-1]
    assert SensorType.COMPUTATION in last.matrices
    assert last.matrices[SensorType.COMPUTATION].shape[0] == 4


def test_callback_invoked():
    seen = []
    reporter = LiveReporter(period_us=500.0, callback=seen.append)
    run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        live=reporter,
    )
    assert len(seen) == len(reporter.snapshots)


def test_variance_noticed_before_program_end():
    """The on-line promise: an episode early in the run is visible in a
    snapshot taken well before the program finishes."""
    machine = MachineConfig(n_ranks=8, ranks_per_node=4)
    probe = run_vsensor(SIMPLE_MPI_PROGRAM, machine)
    span = probe.sim.total_time

    reporter = LiveReporter(period_us=span / 20, threshold=0.7)
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        machine,
        faults=[CpuContention(node_ids=(0,), t0=0.1 * span, t1=0.4 * span, cpu_factor=0.25)],
        window_us=span / 20,
        batch_period_us=span / 40,
        live=reporter,
    )
    detected_at = first_detection_time(reporter)
    assert detected_at is not None
    assert detected_at < 0.8 * run.sim.total_time


def test_no_variance_no_detection_time():
    reporter = LiveReporter(period_us=500.0)
    run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        live=reporter,
    )
    comp_lows = [s.low_cells.get(SensorType.COMPUTATION, 0) for s in reporter.snapshots]
    assert all(c == 0 for c in comp_lows)


# ---------------------------------------------------------------------------
# Snapshots under degraded ranks / lossy channels
# ---------------------------------------------------------------------------


def _lossy_run(reporter, drop: float, max_attempts: int = 2):
    from repro.runtime.transport import RetryPolicy

    return run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        live=reporter,
        channel=f"drop={drop},seed=11",
        retry_policy=RetryPolicy(timeout_us=100.0, max_attempts=max_attempts),
    )


def test_snapshot_surfaces_channel_counters():
    reporter = LiveReporter(period_us=500.0)
    run = _lossy_run(reporter, drop=0.3, max_attempts=16)
    assert reporter.snapshots, "lossy run produced no snapshots"
    last = reporter.snapshots[-1]
    assert last.channel is not None
    assert last.channel["sent"] > 0
    assert set(last.channel) == set(run.channel_stats)


def test_snapshot_degraded_ranks_under_heavy_loss():
    reporter = LiveReporter(period_us=250.0)
    run = _lossy_run(reporter, drop=0.97, max_attempts=2)
    degraded_final = run.report.degraded_ranks
    assert degraded_final, "expected heavy loss to degrade some rank"
    with_degraded = [s for s in reporter.snapshots if s.degraded_ranks]
    assert with_degraded, "no snapshot observed the degraded set"
    for snapshot in with_degraded:
        assert list(snapshot.degraded_ranks) == sorted(snapshot.degraded_ranks)
        assert set(snapshot.degraded_ranks) <= set(degraded_final)


def test_snapshot_build_unwraps_transport_proxy():
    """_build must read ``degraded`` from the real server behind a
    ReliableTransport proxy, and counters from its channel."""
    from repro.runtime.channel import perfect_channel
    from repro.runtime.server import AnalysisServer
    from repro.runtime.transport import ReliableTransport

    server = AnalysisServer(n_ranks=2)
    server.mark_degraded(1)
    transport = ReliableTransport(server=server, channel=perfect_channel())

    class FakeRuntime:
        pass

    runtime = FakeRuntime()
    runtime.server = transport
    runtime.events = []
    reporter = LiveReporter(period_us=0.0)
    snapshot = reporter.maybe_snapshot(runtime, now=1.0)
    assert snapshot is not None
    assert snapshot.degraded_ranks == (1,)
    assert snapshot.channel == transport.channel.stats.as_dict()
    assert snapshot.matrices == {}  # no data yet: all-NaN matrices are omitted


def test_snapshot_without_channel_has_none():
    reporter = LiveReporter(period_us=500.0)
    run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        batch_period_us=250.0,
        live=reporter,
    )
    assert all(s.channel is None for s in reporter.snapshots)
    assert all(s.degraded_ranks == () for s in reporter.snapshots)
