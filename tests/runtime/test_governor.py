"""The overhead governor: control table, budget loop, promotion gating.

Three layers of coverage:

* table mechanics — ``decide``/``peek``/``pop_skip`` agreement and the
  exact-accounting invariant (every execution is kept, sampled-out, or
  suppressed, and nothing else),
* the control loop — hysteresis, cheapest-information demotion order,
  probation/confirmation on variance events, sibling fan-out, sampling
  stagger,
* end-to-end — ``policy="paper-shutoff"`` is bit-identical to an
  ungoverned run, and the adaptive policy behaves identically under all
  three interpreter tiers.

The Hypothesis block pins the two properties the bench's coverage
correction rests on: accounting never drifts under arbitrary
demote/promote/probation interleavings, and a programmatic variance
signal restores full telemetry on the whole node immediately.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import run_vsensor
from repro.runtime.detector import DetectorConfig
from repro.runtime.governor import (
    DECISIONS,
    ENABLED,
    SAMPLED,
    SUSPENDED,
    GovernorConfig,
    OverheadGovernor,
    PaperShutoff,
    SensorControl,
    SensorControlTable,
)
from repro.sensors.model import SensorType
from repro.sim import MachineConfig
from repro.sim.hooks import RawRecorder

SOURCE = """
global int NITER = 8;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Allreduce(16);
    }
    return 0;
}
"""


def assert_accounting(table: SensorControlTable) -> None:
    for rank_tables in table._ranks.values():
        for ctl in rank_tables.values():
            assert ctl.executions == ctl.kept + ctl.sampled_out + ctl.suppressed
            assert 0 <= ctl.pending_skips <= ctl.sampled_out + ctl.suppressed


# -- table mechanics --------------------------------------------------------


def test_enabled_keeps_every_execution():
    table = SensorControlTable()
    for _ in range(5):
        assert table.peek(0, 7)
        assert table.decide(0, 7)
    ctl = table.get(0, 7)
    assert (ctl.executions, ctl.kept, ctl.sampled_out, ctl.suppressed) == (5, 5, 0, 0)
    assert ctl.covered() == 5
    assert_accounting(table)


def test_sampled_keeps_one_in_n():
    table = SensorControlTable()
    ctl = table.get(0, 7)
    ctl.state = SAMPLED
    ctl.sample_period = 4
    kept = [table.decide(0, 7) for _ in range(12)]
    assert sum(kept) == 3
    # phase 0 start: keeps land on every 4th execution
    assert kept == [False, False, False, True] * 3
    assert ctl.kept == 3 and ctl.sampled_out == 9 and ctl.suppressed == 0
    assert ctl.covered() == 12
    assert_accounting(table)


def test_suspended_suppresses_everything():
    table = SensorControlTable()
    ctl = table.get(0, 7)
    ctl.state = SUSPENDED
    assert not any(table.decide(0, 7) for _ in range(6))
    assert ctl.suppressed == 6 and ctl.covered() == 0
    assert_accounting(table)


def test_peek_always_agrees_with_decide():
    table = SensorControlTable()
    for sid, (state, period) in enumerate(
        [(ENABLED, 1), (SAMPLED, 2), (SAMPLED, 5), (SUSPENDED, 1)]
    ):
        ctl = table.get(0, sid)
        ctl.state = state
        ctl.sample_period = period
        for _ in range(11):
            predicted = table.peek(0, sid)
            assert table.decide(0, sid) == predicted


def test_peek_unknown_sensor_records():
    table = SensorControlTable()
    assert table.peek(3, 99)
    assert not table.peek_skip(3, 99)
    assert not table.pop_skip(3, 99)


def test_pending_skips_pair_ticks_with_tocks():
    table = SensorControlTable()
    ctl = table.get(0, 7)
    ctl.state = SAMPLED
    ctl.sample_period = 3
    for _ in range(7):
        if not table.decide(0, 7):
            assert table.peek_skip(0, 7)
            assert table.pop_skip(0, 7)
    assert ctl.pending_skips == 0
    assert not table.pop_skip(0, 7)


def test_config_validation():
    with pytest.raises(ValueError):
        GovernorConfig(policy="turbo")
    with pytest.raises(ValueError):
        GovernorConfig(overhead_budget=0.0)
    with pytest.raises(ValueError):
        GovernorConfig(overhead_budget=1.5)
    with pytest.raises(ValueError):
        GovernorConfig(sample_period=1)


def test_paper_shutoff_rule_matches_inline_semantics():
    rule = PaperShutoff(min_duration_us=2.0, shutoff_after=3)
    assert rule.observe(1, 10.0)
    assert rule.observe(1, 10.0)
    assert rule.observe(1, 10.0)          # mean 10 >= 2: stays on
    assert not rule.is_off(1)
    assert rule.observe(2, 1.0)
    assert rule.observe(2, 1.0)
    assert not rule.observe(2, 1.0)       # mean 1 < 2 at record #3: off
    assert rule.is_off(2)


# -- the budget loop --------------------------------------------------------


def _governor(**overrides) -> OverheadGovernor:
    defaults = dict(
        overhead_budget=0.02,
        sample_period=4,
        eval_period_us=1000.0,
        demote_patience=2,
        promote_patience=1,
    )
    defaults.update(overrides)
    estimates = {
        1: SimpleNamespace(est_work=10.0, est_calls=100.0),
        2: SimpleNamespace(est_work=100.0, est_calls=10.0),
        3: SimpleNamespace(est_work=1000.0, est_calls=1.0),
    }
    return OverheadGovernor(
        GovernorConfig(**defaults), estimates=estimates, probe_cost=0.5,
        ranks_per_node=2,
    )


def _spend(gov: OverheadGovernor, rank: int, sensor_id: int, n: int) -> None:
    for _ in range(n):
        if not gov.table.decide(rank, sensor_id):
            gov.table.pop_skip(rank, sensor_id)


def test_demotion_needs_patience_then_picks_cheapest():
    gov = _governor()
    for sid in (1, 2, 3):
        gov.table.get(0, sid)
    # 40 kept records * 1.0 us over 1000 us = 4% > 2% budget, all on the
    # cheapest sensor — demoting it alone (4% -> 1%) satisfies the budget.
    gov._last_eval[0] = 0.0
    _spend(gov, 0, 1, 40)
    gov.evaluate(0, 1000.0)
    assert gov.table.get(0, 1).state == ENABLED, "first strike must not demote"
    _spend(gov, 0, 1, 40)
    gov.evaluate(0, 2000.0)
    assert gov.table.get(0, 1).state == SAMPLED
    assert gov.table.get(0, 2).state == ENABLED
    assert gov.table.get(0, 3).state == ENABLED
    assert gov.decisions[0]["demote"] == 1
    assert_accounting(gov.table)


def test_sustained_overspend_suspends():
    gov = _governor(demote_patience=1)
    gov.table.get(0, 1)
    gov._last_eval[0] = 0.0
    now = 0.0
    for _ in range(4):
        now += 1000.0
        _spend(gov, 0, 1, 900)  # overwhelming: sampling cannot fit budget
        gov.evaluate(0, now)
        if gov.table.get(0, 1).state == SUSPENDED:
            break
    assert gov.table.get(0, 1).state == SUSPENDED
    assert gov.decisions[0]["suspend"] >= 1
    assert_accounting(gov.table)


def test_headroom_promotes_one_step():
    gov = _governor(demote_patience=1)
    ctl = gov.table.get(0, 1)
    gov._last_eval[0] = 0.0
    _spend(gov, 0, 1, 40)
    gov.evaluate(0, 1000.0)
    assert ctl.state == SAMPLED
    # a quiet slice well under headroom promotes (patience 1)
    gov.evaluate(0, 2000.0)
    assert ctl.state == ENABLED
    assert ctl.sample_period == 1 and ctl.phase == 0
    assert gov.decisions[0]["promote"] == 1


def test_demoted_phase_is_sensor_staggered_and_rank_uniform():
    gov = _governor(demote_patience=1)
    for rank in (0, 1):
        for sid in (1, 2, 3):
            gov.table.get(rank, sid)
        gov._last_eval[rank] = 0.0
        for sid in (1, 2, 3):
            _spend(gov, rank, sid, 400)
        gov.evaluate(rank, 1000.0)
    for rank in (0, 1):
        for sid in (1, 2, 3):
            ctl = gov.table.get(rank, sid)
            assert ctl.state == SAMPLED
            assert ctl.phase == sid % ctl.sample_period
    # uniform across ranks: same sensor, same phase
    assert gov.table.get(0, 2).phase == gov.table.get(1, 2).phase


# -- variance-driven promotion ---------------------------------------------


def _demoted_governor(**overrides) -> OverheadGovernor:
    gov = _governor(demote_patience=1, **overrides)
    for rank in (0, 1, 2):
        for sid in (1, 2, 3):
            gov.table.get(rank, sid)
        gov._last_eval[rank] = 0.0
        for sid in (1, 2, 3):
            _spend(gov, rank, sid, 400)
        gov.evaluate(rank, 1000.0)
        assert gov.table.get(rank, 1).state == SAMPLED
    return gov


def test_programmatic_variance_promotes_node_siblings():
    gov = _demoted_governor()
    gov.on_variance(0, 2000.0)  # performance=0.0 bypasses every gate
    for rank in (0, 1):        # ranks_per_node=2: node 0 = ranks {0, 1}
        for sid in (1, 2, 3):
            assert gov.table.get(rank, sid).state == ENABLED
    for sid in (1, 2, 3):      # node 1 (rank 2) untouched
        assert gov.table.get(2, sid).state == SAMPLED


def test_mild_event_does_not_promote():
    gov = _demoted_governor()
    gov.on_variance(0, 2000.0, performance=0.65, sensor_type=SensorType.COMPUTATION)
    assert gov.table.get(0, 1).state == SAMPLED
    assert not gov._probation


def test_outlier_below_floor_does_not_promote():
    gov = _demoted_governor()
    gov.on_variance(0, 2000.0, performance=0.05, sensor_type=SensorType.COMPUTATION)
    assert gov.table.get(0, 1).state == SAMPLED
    assert not gov._probation


def test_network_events_do_not_promote_by_default():
    gov = _demoted_governor()
    gov.on_variance(0, 2000.0, performance=0.3, sensor_type=SensorType.NETWORK)
    assert gov.table.get(0, 1).state == SAMPLED
    assert not gov._probation


def test_network_events_promote_when_explicitly_admitted():
    gov = _demoted_governor(promote_sensor_types=(SensorType.NETWORK,))
    gov.on_variance(0, 2000.0, performance=0.3, sensor_type=SensorType.NETWORK)
    assert gov._probation  # first severe event: probation, not yet promotion


def test_unconfirmed_severe_event_probes_then_restores():
    gov = _demoted_governor()
    gov.on_variance(0, 2000.0, performance=0.3, sensor_type=SensorType.COMPUTATION)
    # probation: both node siblings at full rate, sampling states saved
    for rank in (0, 1):
        assert rank in gov._probation
        assert gov.table.get(rank, 1).state == ENABLED
        assert gov.decisions[rank]["resample"] >= 1
    # records inside the window neither evaluate nor restore
    gov.on_record(0, 2500.0)
    assert 0 in gov._probation
    # first record past the deadline restores the saved sampling state
    gov.on_record(0, 2000.0 + gov.config.probation_us + 1.0)
    assert 0 not in gov._probation
    ctl = gov.table.get(0, 1)
    assert ctl.state == SAMPLED
    assert ctl.phase == 1 % ctl.sample_period
    assert_accounting(gov.table)


def test_repeated_severe_events_confirm_and_promote():
    gov = _demoted_governor()
    for i in range(gov.config.promote_confirm):
        gov.on_variance(
            0, 2000.0 + i * 500.0, performance=0.3,
            sensor_type=SensorType.COMPUTATION,
        )
    for rank in (0, 1):
        assert rank not in gov._probation
        for sid in (1, 2, 3):
            assert gov.table.get(rank, sid).state == ENABLED


def test_pinned_suspensions_never_repromote():
    gov = _demoted_governor()
    ctl = gov.table.get(0, 1)
    ctl.state = SUSPENDED
    ctl.pinned = True
    gov.on_variance(0, 2000.0)
    assert ctl.state == SUSPENDED


def test_paper_shutoff_policy_installs_no_engine_control():
    gov = OverheadGovernor(GovernorConfig(policy="paper-shutoff"))
    assert gov.control is None
    assert not gov.engine_active
    gov.on_record(0, 100.0)
    gov.on_variance(0, 100.0)
    assert gov.evaluations == 0


def test_tallies_and_summary_surface():
    gov = _demoted_governor()
    totals = gov.totals()
    assert set(totals) == set(DECISIONS)
    assert totals["demote"] == 9  # 3 sensors x 3 ranks
    assert 0.0 < gov.coverage() <= 1.0
    assert "governor[adaptive]" in gov.summary()
    assert "rank    0" in gov.format_tally()


# -- hypothesis: accounting + re-promotion properties -----------------------


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("decide"), st.integers(0, 3), st.integers(1, 3)),
        st.tuples(st.just("evaluate"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("variance"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("severe"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("spin"), st.integers(0, 3), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_accounting_invariant_under_arbitrary_sequences(ops):
    """No demote/promote/probation interleaving may double-count or drop
    a probe execution from the coverage accounting."""
    gov = _governor(demote_patience=1)
    clock = 0.0
    for op, rank, sid in ops:
        clock += 250.0
        if op == "decide":
            if not gov.table.decide(rank, sid):
                gov.table.pop_skip(rank, sid)
        elif op == "evaluate":
            gov.table.get(rank, 1)
            gov.evaluate(rank, clock)
        elif op == "variance":
            gov.on_variance(rank, clock)  # programmatic, bypasses gates
        elif op == "severe":
            gov.on_variance(
                rank, clock, performance=0.3,
                sensor_type=SensorType.COMPUTATION,
            )
        elif op == "spin":
            gov.on_record(rank, clock)
    assert_accounting(gov.table)
    assert 0.0 <= gov.coverage() <= 1.0
    total_execs = sum(
        ctl.executions
        for tables in gov.table._ranks.values()
        for ctl in tables.values()
    )
    assert total_execs == sum(1 for op, _, _ in ops if op == "decide")


@settings(max_examples=40, deadline=None)
@given(
    demoted=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 3), st.booleans()),
        min_size=1,
        max_size=12,
    ),
    origin=st.integers(0, 3),
)
def test_programmatic_variance_restores_node_immediately(demoted, origin):
    """After any demotion pattern, one programmatic variance signal must
    re-enable every non-pinned sensor on the origin's whole node — within
    the same call, i.e. well inside one slice."""
    gov = _governor()
    for rank, sid, suspend in demoted:
        ctl = gov.table.get(rank, sid)
        ctl.state = SUSPENDED if suspend else SAMPLED
        ctl.sample_period = gov.config.sample_period
    gov.on_variance(origin, 1000.0)
    node = origin // gov.ranks_per_node
    for rank, sid, _ in demoted:
        ctl = gov.table.get(rank, sid)
        if rank // gov.ranks_per_node == node:
            assert ctl.state == ENABLED, (rank, sid)
        assert not ctl.pinned


# -- end-to-end through the api --------------------------------------------


@pytest.fixture(scope="module")
def machine():
    return MachineConfig(n_ranks=4, ranks_per_node=2)


def _record_stream(raw: RawRecorder):
    return [tuple(r) for r in raw.records]


def test_paper_shutoff_policy_is_bit_identical_to_ungoverned(machine):
    detector = DetectorConfig(shutoff_after=3, min_duration_us=1e9)
    runs = {}
    for key, gov in (("off", None), ("paper", "paper-shutoff")):
        raw = RawRecorder()
        run = run_vsensor(
            SOURCE, machine, detector=detector, governor=gov, extra_hooks=(raw,)
        )
        runs[key] = (run, _record_stream(raw))
    off_run, off_records = runs["off"]
    paper_run, paper_records = runs["paper"]
    assert off_records == paper_records, "record stream must not change"
    assert off_run.report.total_time_us == paper_run.report.total_time_us
    for rank in range(machine.n_ranks):
        assert (
            off_run.runtime.detectors[rank].shutoff
            == paper_run.runtime.detectors[rank].shutoff
        )
    assert paper_run.runtime.governor.totals()["suspend"] > 0
    assert off_run.runtime.governor is None


def test_default_run_installs_no_governor(machine):
    run = run_vsensor(SOURCE, machine)
    assert run.runtime.governor is None


def test_adaptive_policy_across_engines(machine):
    """All three interpreter tiers honor the control table.

    The two scalar tiers must agree bit-for-bit.  The lockstep tier
    buffers hook events per lane and flushes them at engine poll points,
    so governor *feedback* lags execution by one fused segment — its
    record stream may keep a demoted sensor one extra execution.  The
    decisions themselves must still converge to the scalar outcome, and
    the accounting invariant holds regardless of delivery timing.
    """
    runs = {}
    for engine in ("bytecode", "ast", "lockstep"):
        raw = RawRecorder()
        run = run_vsensor(
            SOURCE,
            machine,
            engine=engine,
            governor=GovernorConfig(
                overhead_budget=0.002, eval_period_us=200.0, demote_patience=1
            ),
            extra_hooks=(raw,),
        )
        gov = run.runtime.governor
        assert gov is not None and gov.engine_active
        assert gov.totals()["demote"] > 0
        assert_accounting(gov.table)
        runs[engine] = (run, _record_stream(raw), gov.totals())
    assert runs["bytecode"][1] == runs["ast"][1]
    assert runs["bytecode"][0].report.total_time_us == runs["ast"][0].report.total_time_us
    assert runs["bytecode"][2] == runs["ast"][2]
    assert runs["lockstep"][2] == runs["bytecode"][2]
