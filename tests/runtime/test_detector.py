"""Per-rank detector tests (§5.1-§5.3)."""

import pytest

from repro.runtime.detector import DetectorConfig, RankDetector
from repro.runtime.records import SensorRecord
from repro.sensors.model import SensorType


def rec(t_end, duration, sensor_id=1, miss=0.1):
    return SensorRecord(
        rank=0,
        sensor_id=sensor_id,
        sensor_type=SensorType.COMPUTATION,
        t_start=t_end - duration,
        t_end=t_end,
        instructions=duration * 10,
        cache_miss_rate=miss,
    )


def make(threshold=0.7, slice_us=100.0, min_duration_us=0.0, shutoff_after=50):
    return RankDetector(
        rank=0,
        config=DetectorConfig(
            slice_us=slice_us,
            threshold=threshold,
            min_duration_us=min_duration_us,
            shutoff_after=shutoff_after,
        ),
    )


def test_steady_stream_no_events():
    det = make()
    t = 0.0
    for _ in range(50):
        t += 100.0
        det.add(rec(t, 10.0))
    det.finish()
    assert det.events == []


def test_slowdown_detected():
    det = make()
    t = 0.0
    for i in range(50):
        t += 100.0
        duration = 10.0 if i < 40 else 30.0
        det.add(rec(t, duration))
    det.finish()
    assert len(det.events) >= 5
    assert all(e.performance < 0.7 for e in det.events)


def test_mild_slowdown_below_threshold_ignored():
    det = make(threshold=0.5)
    t = 0.0
    for i in range(50):
        t += 100.0
        det.add(rec(t, 10.0 if i % 2 else 12.0))
    det.finish()
    assert det.events == []


def test_short_sensor_shutoff():
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(30):
        t += 100.0
        det.add(rec(t, 1.0))  # far below min duration
    assert 1 in det.shutoff
    # After shutoff, no further records are processed.
    processed = det.records_processed
    det.add(rec(t + 100, 1.0))
    assert det.records_processed == processed


def test_shutoff_fires_at_exactly_shutoff_after():
    # the decision is made on record number ``shutoff_after`` itself —
    # one record earlier the sensor is still live
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(9):
        t += 100.0
        det.add(rec(t, 1.0))
    assert det.shutoff == set()
    det.add(rec(t + 100.0, 1.0))
    assert det.shutoff == {1}


def test_mean_exactly_at_min_duration_stays_on():
    # the § 5.3 comparison is strict <: a mean of exactly
    # ``min_duration_us`` keeps the sensor
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(10):
        t += 100.0
        det.add(rec(t, 5.0))
    assert det.shutoff == set()


def test_mean_just_below_min_duration_shuts_off():
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(10):
        t += 100.0
        det.add(rec(t, 5.0 - 1e-9))
    assert det.shutoff == {1}


def test_shutoff_decision_is_one_shot():
    # a sensor that survives record #shutoff_after is never revisited,
    # even if every later record is far below the minimum
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(10):
        t += 100.0
        det.add(rec(t, 50.0))
    for _ in range(40):
        t += 100.0
        det.add(rec(t, 1.0))
    assert det.shutoff == set()


def test_long_sensor_not_shut_off():
    det = make(min_duration_us=5.0, shutoff_after=10)
    t = 0.0
    for _ in range(30):
        t += 100.0
        det.add(rec(t, 50.0))
    assert det.shutoff == set()


def test_events_carry_slice_start():
    det = make(slice_us=1000.0)
    det.add(rec(500.0, 10.0))
    det.add(rec(1500.0, 100.0))  # slice 0 closes, slice 1 opens
    events = det.finish()
    assert len(det.events) == 1
    assert det.events[0].t_start == pytest.approx(1000.0)


def test_summaries_accumulate():
    det = make(slice_us=100.0)
    t = 0.0
    for _ in range(20):
        t += 100.0
        det.add(rec(t, 10.0))
    det.finish()
    assert len(det.summaries) == 20


def test_multiple_sensors_tracked_separately():
    det = make()
    t = 0.0
    for i in range(20):
        t += 100.0
        det.add(rec(t, 10.0, sensor_id=1))
        det.add(rec(t, 99.0, sensor_id=2))
    det.finish()
    # Each sensor has its own standard: neither generates events.
    assert det.events == []


def test_grouped_detection_uses_group_history():
    from repro.runtime.dynrules import ThresholdMiss

    det = RankDetector(
        rank=0,
        config=DetectorConfig(slice_us=100.0, threshold=0.7, min_duration_us=0.0),
        rule=ThresholdMiss(0.5),
    )
    t = 0.0
    for i in range(20):
        t += 100.0
        det.add(rec(t, 10.0, miss=0.1))
        t += 100.0
        det.add(rec(t, 30.0, miss=0.9))  # slow but consistent in H group
    det.finish()
    assert det.events == []
