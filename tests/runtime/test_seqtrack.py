"""SequenceTracker: exactly-once admission, gaps, and restart replay.

The fabric's crash recovery rebuilds a shard child by replaying the
*entire* frame spool into a fresh process, so the tracker must make a
full-history replay idempotent from any point: every already-seen
sequence number is refused, every genuinely new one is admitted, and
the watermark/parked-gap state converges to exactly what an uncrashed
stream would hold.
"""

from __future__ import annotations

from repro.runtime.seqtrack import SequenceTracker


def test_in_order_stream_advances_watermark():
    tracker = SequenceTracker()
    assert tracker.watermark == -1
    for seq in range(5):
        assert tracker.accept(seq)
        assert tracker.watermark == seq
    assert not tracker.accept(3)  # below watermark: refused


def test_gaps_park_above_watermark_until_filled():
    tracker = SequenceTracker()
    assert tracker.accept(0)
    assert tracker.accept(2)
    assert tracker.accept(4)
    assert tracker.watermark == 0  # 1 missing: 2 and 4 parked
    assert tracker.is_acked(2) and tracker.is_acked(4)
    assert not tracker.is_acked(1)
    assert tracker.accept(1)
    assert tracker.watermark == 2  # 1 filled the gap, 2 collapsed in
    assert tracker.accept(3)
    assert tracker.watermark == 4  # 3 collapsed 4 in too
    assert tracker._seen == set()  # nothing left parked


def test_duplicates_refused_in_every_state():
    tracker = SequenceTracker()
    tracker.accept(0)
    tracker.accept(2)
    assert not tracker.accept(0)  # at/below watermark
    assert not tracker.accept(2)  # parked above watermark
    tracker.accept(1)
    assert not tracker.accept(2)  # now collapsed below watermark


def test_full_replay_after_restart_is_exactly_once():
    """Mid-stream worker restart: the spool replays seqs 0..k into the
    tracker that already admitted them — all must bounce — then the
    stream continues and only genuinely new numbers land."""
    tracker = SequenceTracker()
    delivered = [0, 1, 3, 2, 4]  # includes a reorder
    for seq in delivered:
        assert tracker.accept(seq)
    watermark_before = tracker.watermark
    assert watermark_before == 4

    # Crash + replay: the full history arrives again, in order.
    replay_admitted = [seq for seq in sorted(delivered) if tracker.accept(seq)]
    assert replay_admitted == []  # exactly-once held
    assert tracker.watermark == watermark_before

    # The live stream resumes where it left off.
    assert tracker.accept(5)
    assert tracker.watermark == 5


def test_restarted_fresh_tracker_converges_under_replay():
    """The shard child's side of the same story: its tracker is *lost*
    with the process, and the replayed spool rebuilds an equivalent one —
    same watermark, same parked set — even with gaps in flight."""
    original = SequenceTracker()
    in_flight = [0, 1, 2, 5, 7]  # 3, 4, 6 still missing at crash time
    for seq in in_flight:
        original.accept(seq)

    rebuilt = SequenceTracker()
    for seq in in_flight:  # spool replays exactly what was delivered
        assert rebuilt.accept(seq)
    assert rebuilt.watermark == original.watermark == 2
    assert rebuilt._seen == original._seen == {5, 7}

    # Post-restart traffic behaves identically on both.
    for seq in (3, 4, 6, 8):
        assert rebuilt.accept(seq) == original.accept(seq)
    assert rebuilt.watermark == original.watermark == 8
