"""Analysis-server tests (§5.4-§5.5)."""

import numpy as np
import pytest

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType


def summary(rank, slice_index, duration, sensor_id=1, stype=SensorType.COMPUTATION, group=""):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=4,
        mean_cache_miss=0.1,
    )


def test_bytes_accounting():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    assert server.batches_received == 1
    assert server.summaries_received == 2
    assert server.bytes_received == 8 + 2 * SliceSummary.WIRE_BYTES


def test_matrix_shape_and_values():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    server.receive_batch(1, [summary(1, 0, 10.0), summary(1, 1, 20.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert matrix.shape == (2, 2)
    assert matrix[0, 0] == pytest.approx(1.0)
    assert matrix[1, 1] == pytest.approx(0.5)


def test_matrix_nan_for_missing_cells():
    server = AnalysisServer(n_ranks=3, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert np.isnan(matrix[1, 0]) and np.isnan(matrix[2, 0])


def test_types_kept_separate():
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0, sensor_id=1, stype=SensorType.COMPUTATION)])
    server.receive_batch(0, [summary(0, 0, 30.0, sensor_id=2, stype=SensorType.NETWORK)])
    comp = server.performance_matrix(SensorType.COMPUTATION)
    net = server.performance_matrix(SensorType.NETWORK)
    assert np.isfinite(comp[0, 0]) and np.isfinite(net[0, 0])


def test_inter_process_detection_flags_slow_rank():
    server = AnalysisServer(n_ranks=4, window_us=1000.0, threshold=0.7)
    for rank in range(4):
        duration = 30.0 if rank == 2 else 10.0
        server.receive_batch(rank, [summary(rank, 0, duration)])
    events = server.detect_inter_process()
    assert len(events) == 1
    assert events[0].slow_ranks == (2,)
    assert events[0].worst_performance == pytest.approx(10.0 / 30.0)


def test_inter_process_no_event_when_uniform():
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    for rank in range(4):
        server.receive_batch(rank, [summary(rank, 0, 10.0)])
    assert server.detect_inter_process() == []


def test_inter_process_requires_min_ranks():
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0)])
    assert server.detect_inter_process(min_ranks=2) == []


def test_mean_rank_performance():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    server.receive_batch(1, [summary(1, 0, 20.0), summary(1, 1, 20.0)])
    means = server.mean_rank_performance(SensorType.COMPUTATION)
    assert means[0] > means[1]


def test_window_mapping():
    server = AnalysisServer(n_ranks=1, window_us=2000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 3, 10.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    # Slices 0 and 3 (at 0us and 3000us) land in windows 0 and 1.
    assert matrix.shape == (1, 2)
