"""Analysis-server tests (§5.4-§5.5)."""

import numpy as np
import pytest

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType


def summary(rank, slice_index, duration, sensor_id=1, stype=SensorType.COMPUTATION, group=""):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=4,
        mean_cache_miss=0.1,
    )


def test_bytes_accounting():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    assert server.batches_received == 1
    assert server.summaries_received == 2
    assert server.bytes_received == 8 + 2 * SliceSummary.WIRE_BYTES


def test_matrix_shape_and_values():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    server.receive_batch(1, [summary(1, 0, 10.0), summary(1, 1, 20.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert matrix.shape == (2, 2)
    assert matrix[0, 0] == pytest.approx(1.0)
    assert matrix[1, 1] == pytest.approx(0.5)


def test_matrix_nan_for_missing_cells():
    server = AnalysisServer(n_ranks=3, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert np.isnan(matrix[1, 0]) and np.isnan(matrix[2, 0])


def test_types_kept_separate():
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0, sensor_id=1, stype=SensorType.COMPUTATION)])
    server.receive_batch(0, [summary(0, 0, 30.0, sensor_id=2, stype=SensorType.NETWORK)])
    comp = server.performance_matrix(SensorType.COMPUTATION)
    net = server.performance_matrix(SensorType.NETWORK)
    assert np.isfinite(comp[0, 0]) and np.isfinite(net[0, 0])


def test_inter_process_detection_flags_slow_rank():
    server = AnalysisServer(n_ranks=4, window_us=1000.0, threshold=0.7)
    for rank in range(4):
        duration = 30.0 if rank == 2 else 10.0
        server.receive_batch(rank, [summary(rank, 0, duration)])
    events = server.detect_inter_process()
    assert len(events) == 1
    assert events[0].slow_ranks == (2,)
    assert events[0].worst_performance == pytest.approx(10.0 / 30.0)


def test_inter_process_no_event_when_uniform():
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    for rank in range(4):
        server.receive_batch(rank, [summary(rank, 0, 10.0)])
    assert server.detect_inter_process() == []


def test_inter_process_requires_min_ranks():
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0)])
    assert server.detect_inter_process(min_ranks=2) == []


def test_mean_rank_performance():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 1, 10.0)])
    server.receive_batch(1, [summary(1, 0, 20.0), summary(1, 1, 20.0)])
    means = server.mean_rank_performance(SensorType.COMPUTATION)
    assert means[0] > means[1]


def test_window_mapping():
    server = AnalysisServer(n_ranks=1, window_us=2000.0)
    server.receive_batch(0, [summary(0, 0, 10.0), summary(0, 3, 10.0)])
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    # Slices 0 and 3 (at 0us and 3000us) land in windows 0 and 1.
    assert matrix.shape == (1, 2)


# -- idempotent, watermark-based ingestion -----------------------------------


def test_sequenced_duplicate_batch_rejected():
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    batch = [summary(0, 0, 10.0)]
    assert server.receive_batch(0, batch, seq=0) is True
    before = server.performance_matrix(SensorType.COMPUTATION).copy()
    assert server.receive_batch(0, batch, seq=0) is False
    assert server.duplicate_batches == 1
    after = server.performance_matrix(SensorType.COMPUTATION)
    assert np.array_equal(before, after, equal_nan=True)


def test_watermark_advances_over_out_of_order_seqs():
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    assert server.ack_watermark(0) == -1
    server.receive_batch(0, [summary(0, 0, 10.0)], seq=0)
    server.receive_batch(0, [summary(0, 2, 10.0)], seq=2)
    assert server.ack_watermark(0) == 0
    assert server.is_acked(0, 2)
    server.receive_batch(0, [summary(0, 1, 10.0)], seq=1)
    assert server.ack_watermark(0) == 2
    # Everything at or below the watermark is a duplicate now.
    assert server.receive_batch(0, [summary(0, 1, 10.0)], seq=1) is False


def test_summary_identity_dedup_without_seq():
    """Even unsequenced redelivery (spool re-read) cannot double-count."""
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    server.receive_batch(0, [summary(0, 0, 10.0)])
    server.receive_batch(0, [summary(0, 0, 10.0)])
    assert server.duplicate_summaries == 1
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert matrix[0, 0] == pytest.approx(1.0)


def test_matrices_invariant_under_batch_permutation():
    batches = [
        (rank, [summary(rank, s, 10.0 + 3 * rank + s) for s in range(4)], seq)
        for seq, rank in enumerate([0, 1, 2, 3])
    ]
    in_order = AnalysisServer(n_ranks=4, window_us=1000.0)
    for rank, batch, _ in batches:
        in_order.receive_batch(rank, batch)
    shuffled = AnalysisServer(n_ranks=4, window_us=1000.0)
    for rank, batch, _ in reversed(batches):
        shuffled.receive_batch(rank, batch)
    a = in_order.performance_matrix(SensorType.COMPUTATION)
    b = shuffled.performance_matrix(SensorType.COMPUTATION)
    assert np.array_equal(a, b, equal_nan=True)
    assert in_order.detect_inter_process() == shuffled.detect_inter_process()


def test_inter_event_coverage_fraction():
    server = AnalysisServer(n_ranks=8, window_us=1000.0)
    for rank in range(4):  # only half the ranks report
        duration = 30.0 if rank == 2 else 10.0
        server.receive_batch(rank, [summary(rank, 0, duration)])
    (event,) = server.detect_inter_process()
    assert event.coverage == pytest.approx(4 / 8)


def test_silent_ranks_and_degraded_marking():
    server = AnalysisServer(n_ranks=3, window_us=1000.0, batch_period_us=1000.0)
    server.receive_batch(0, [summary(0, 9, 10.0)])  # fresh at t=9000
    server.receive_batch(1, [summary(1, 0, 10.0)])  # stale
    assert server.silent_ranks(now=9000.0) == [1, 2]
    server.mark_degraded(2)
    assert server.degraded == {2}
    # Rendering with degraded/missing ranks keeps NaN rows, no crash.
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert np.isnan(matrix[2]).all()
