"""Differential suite: columnar vs reference analysis engines.

The columnar data path (:mod:`repro.runtime.columnar`) must be
**bit-identical** to the reference object-at-a-time replay — matrices,
inter-process events, history standards, and every counter — under any
ingest order, redelivery, degraded ranks, and interleaved live queries
(the interleaving is what forces the incremental-replay epochs).  These
properties are the contract; approximate agreement is a failure.
"""

from __future__ import annotations

import random
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Obs
from repro.runtime.history import SensorHistory, observe_block
from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType

N_RANKS = 4


def _summary(rank, sensor_id, stype, group, slice_index, duration, miss=0.1):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=3,
        mean_cache_miss=miss,
    )


@st.composite
def batch_pools(draw):
    """A pool of per-rank batches with unique summary identities."""
    keys = draw(
        st.sets(
            st.tuples(
                st.integers(0, N_RANKS - 1),        # rank
                st.sampled_from([1, 2]),            # sensor
                st.sampled_from(["", "H", "L"]),    # group
                st.integers(0, 5),                  # slice
            ),
            min_size=1,
            max_size=40,
        )
    )
    summaries = []
    for rank, sensor_id, group, slice_index in sorted(keys):
        duration = draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        stype = SensorType.COMPUTATION if sensor_id == 1 else SensorType.NETWORK
        summaries.append(_summary(rank, sensor_id, stype, group, slice_index, duration))
    batches = []
    for rank in range(N_RANKS):
        mine = [s for s in summaries if s.rank == rank]
        size = draw(st.integers(1, 4))
        for seq, start in enumerate(range(0, len(mine), size)):
            batches.append((rank, mine[start : start + size], seq))
    return batches


def _servers() -> tuple[AnalysisServer, AnalysisServer]:
    return (
        AnalysisServer(n_ranks=N_RANKS, window_us=2000.0, engine="reference"),
        AnalysisServer(n_ranks=N_RANKS, window_us=2000.0, engine="columnar"),
    )


_COUNTERS = (
    "bytes_received",
    "batches_received",
    "summaries_received",
    "duplicate_batches",
    "duplicate_summaries",
)


def _assert_equivalent(ref: AnalysisServer, col: AnalysisServer) -> None:
    for stype in SensorType:
        assert np.array_equal(
            ref.performance_matrix(stype), col.performance_matrix(stype), equal_nan=True
        ), f"{stype} matrix differs"
        assert np.array_equal(
            ref.mean_rank_performance(stype),
            col.mean_rank_performance(stype),
            equal_nan=True,
        )
    assert ref.detect_inter_process() == col.detect_inter_process()
    assert ref.history._standard == col.history._standard
    assert ref.stored_summaries == col.stored_summaries
    assert ref.degraded == col.degraded
    for name in _COUNTERS:
        assert getattr(ref, name) == getattr(col, name), f"{name} differs"


# -- hypothesis differential properties --------------------------------------


@given(
    pool=batch_pools(),
    order_seed=st.integers(0, 2**32 - 1),
    dup_seed=st.integers(0, 2**32 - 1),
    degraded=st.sets(st.integers(0, N_RANKS - 1), max_size=2),
)
@settings(max_examples=60, deadline=None)
def test_engines_bit_identical_under_redelivery(pool, order_seed, dup_seed, degraded):
    rng = random.Random(dup_seed)
    stream = list(pool) + [b for b in pool if rng.random() < 0.4]
    random.Random(order_seed).shuffle(stream)
    ref, col = _servers()
    for rank, batch, seq in stream:
        accepted_ref = ref.receive_batch(rank, list(batch), seq=seq)
        accepted_col = col.receive_batch(rank, list(batch), seq=seq)
        assert accepted_ref == accepted_col
    for rank in degraded:
        ref.mark_degraded(rank)
        col.mark_degraded(rank)
    _assert_equivalent(ref, col)


@given(
    pool=batch_pools(),
    order_seed=st.integers(0, 2**32 - 1),
    query_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_engines_bit_identical_under_interleaved_queries(pool, order_seed, query_seed):
    """Queries between ingests force the columnar store's incremental
    epochs (roll-forward from carried-in standards) — the replayed state
    must still match the reference's from-scratch recompute exactly."""
    stream = list(pool)
    random.Random(order_seed).shuffle(stream)
    rng = random.Random(query_seed)
    ref, col = _servers()
    for rank, batch, seq in stream:
        ref.receive_batch(rank, list(batch), seq=seq)
        col.receive_batch(rank, list(batch), seq=seq)
        if rng.random() < 0.6:
            stype = rng.choice(list(SensorType))
            assert np.array_equal(
                ref.performance_matrix(stype), col.performance_matrix(stype), equal_nan=True
            )
        if rng.random() < 0.3:
            assert ref.detect_inter_process() == col.detect_inter_process()
    _assert_equivalent(ref, col)


@given(
    pool=batch_pools(),
    order_seed=st.integers(0, 2**32 - 1),
    drain_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_spool_drain_differential(pool, order_seed, drain_seed):
    """The zero-copy batch decode feeds both engines identically: write
    the pool through a FileSpool, drain into each engine with interleaved
    partial drains, and require bit-identical state (including the
    actual-encoded-size byte accounting, which both engines share)."""
    from repro.runtime.transport import FileSpool

    stream = list(pool)
    random.Random(order_seed).shuffle(stream)
    rng = random.Random(drain_seed)
    with tempfile.TemporaryDirectory() as directory:
        writer = FileSpool(directory=directory)
        ref, col = _servers()
        ref_reader = FileSpool(directory=directory)
        col_reader = FileSpool(directory=directory)
        for rank, batch, _seq in stream:
            writer.append_batch(rank, list(batch))
            if rng.random() < 0.4:
                assert ref_reader.drain_into(ref) == col_reader.drain_into(col)
            if rng.random() < 0.3:
                stype = rng.choice(list(SensorType))
                assert np.array_equal(
                    ref.performance_matrix(stype),
                    col.performance_matrix(stype),
                    equal_nan=True,
                )
        assert ref_reader.drain_into(ref) == col_reader.drain_into(col)
        _assert_equivalent(ref, col)


@given(
    durations=st.lists(
        st.floats(min_value=-5.0, max_value=100.0, allow_nan=False), max_size=30
    ),
    chunk=st.integers(1, 5),
)
@settings(max_examples=200, deadline=None)
def test_observe_block_matches_scalar_history(durations, chunk):
    """The vectorized cumulative-min kernel reproduces SensorHistory.observe
    bit-for-bit, including across chunk boundaries (epoch carry-over)."""
    history = SensorHistory()
    expected = [history.observe(1, "", d) for d in durations]
    got: list[float] = []
    standard = None
    for start in range(0, len(durations), chunk):
        perf, standard = observe_block(
            np.asarray(durations[start : start + chunk], np.float64), standard
        )
        got.extend(perf.tolist())
    assert got == expected
    if durations:
        assert standard == history.standard_time(1)


# -- replay epochs and observability -----------------------------------------


def _obs_server(n_ranks=2, window_us=1000.0) -> tuple[AnalysisServer, Obs]:
    obs = Obs.create()
    server = AnalysisServer(
        n_ranks=n_ranks, window_us=window_us, metrics=obs.metrics, obs=obs
    )
    return server, obs


def _replay_counters(obs: Obs) -> dict[str, int]:
    counters = obs.metrics.as_dict()["counters"]
    return {k: v for k, v in counters.items() if k.startswith("server.replay.")}


def test_append_only_epochs_replay_incrementally():
    server, obs = _obs_server()
    server.receive_batch(0, [_summary(0, 1, SensorType.COMPUTATION, "", s, 10.0) for s in range(3)])
    server.performance_matrix(SensorType.COMPUTATION)
    assert _replay_counters(obs) == {"server.replay.full": 1}
    # New rows all sort after everything replayed: roll forward.
    server.receive_batch(0, [_summary(0, 1, SensorType.COMPUTATION, "", s, 9.0) for s in range(3, 6)])
    server.performance_matrix(SensorType.COMPUTATION)
    assert _replay_counters(obs) == {"server.replay.full": 1, "server.replay.incremental": 1}
    # A row for an earlier slice lands after the fact: full re-sort.
    server.receive_batch(1, [_summary(1, 1, SensorType.COMPUTATION, "", 0, 11.0)])
    server.performance_matrix(SensorType.COMPUTATION)
    assert _replay_counters(obs) == {"server.replay.full": 2, "server.replay.incremental": 1}
    spans = [r for r in obs.tracer.records() if r.name == "server.replay"]
    assert [s.attrs["kind"] for s in spans] == ["full", "incremental", "full"]
    assert [s.attrs["rows"] for s in spans] == [3, 3, 7]


def test_pure_queries_emit_no_replay_spans():
    server, obs = _obs_server()
    server.receive_batch(0, [_summary(0, 1, SensorType.COMPUTATION, "", 0, 10.0)])
    server.performance_matrix(SensorType.COMPUTATION)
    before = len(obs.tracer.records())
    for _ in range(3):
        server.performance_matrix(SensorType.COMPUTATION)
        server.detect_inter_process()
    assert len(obs.tracer.records()) == before


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown analysis engine"):
        AnalysisServer(n_ranks=2, engine="vectorized")


def test_stored_summaries_counts_deduplicated_rows():
    ref, col = _servers()
    batch = [_summary(0, 1, SensorType.COMPUTATION, "", 0, 10.0)]
    for server in (ref, col):
        server.receive_batch(0, batch)
        server.receive_batch(0, batch)  # identity duplicate, no seq
        assert server.stored_summaries == 1
        assert server.duplicate_summaries == 1


# -- byte accounting ----------------------------------------------------------


def test_direct_delivery_keeps_nominal_byte_accounting():
    ref, col = _servers()
    batch = [_summary(0, 1, SensorType.COMPUTATION, "", s, 10.0) for s in range(2)]
    for server in (ref, col):
        server.receive_batch(0, batch)
        assert server.bytes_received == 8 + 2 * SliceSummary.WIRE_BYTES


def test_transport_accounts_actual_encoded_size():
    """Over the message transport, bytes_received counts real frame sizes:
    26 bytes per record frame plus a group-definition frame (8 + 2 + len)
    the first time a rank ships each group — and a redelivered batch is
    accounted at exactly its original size."""
    from repro.runtime.channel import perfect_channel
    from repro.runtime.transport import ReliableTransport

    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    transport = ReliableTransport(server=server, channel=perfect_channel())
    transport.send_batch(
        0,
        [
            _summary(0, 1, SensorType.COMPUTATION, "H", 0, 10.0),
            _summary(0, 1, SensorType.COMPUTATION, "", 1, 10.0),
        ],
        now=0.0,
    )
    transport.finish()
    assert server.bytes_received == (8 + 2 + 1) + 2 * 26
    transport.send_batch(
        0, [_summary(0, 1, SensorType.COMPUTATION, "H", 2, 10.0)], now=2000.0
    )
    transport.finish()
    # "H" was already defined for rank 0: no second definition frame.
    assert server.bytes_received == (8 + 2 + 1) + 3 * 26


def test_spool_drain_accounts_consumed_bytes():
    from repro.runtime.transport import FileSpool

    with tempfile.TemporaryDirectory() as directory:
        spool = FileSpool(directory=directory)
        spool.append_batch(0, [_summary(0, 1, SensorType.COMPUTATION, "H", 0, 10.0)])
        server = AnalysisServer(n_ranks=1, window_us=1000.0)
        spool.drain_into(server)
        assert server.bytes_received == (8 + 2 + 1) + 26


# -- end-to-end ---------------------------------------------------------------


def test_run_vsensor_engines_identical_end_to_end():
    """Full pipeline under both engines, with interleaved live snapshots:
    every matrix (final and per-snapshot) is bit-identical."""
    from repro.api import run_vsensor
    from repro.runtime.live import LiveReporter
    from repro.sim import MachineConfig
    from tests.conftest import SIMPLE_MPI_PROGRAM

    machine = MachineConfig(n_ranks=4, ranks_per_node=2)
    runs = {}
    reporters = {}
    for engine in ("reference", "columnar"):
        reporters[engine] = LiveReporter(period_us=500.0)
        runs[engine] = run_vsensor(
            SIMPLE_MPI_PROGRAM,
            machine,
            window_us=2000.0,
            batch_period_us=1000.0,
            analysis_engine=engine,
            live=reporters[engine],
        )
    ref, col = runs["reference"], runs["columnar"]
    assert set(ref.report.matrices) == set(col.report.matrices)
    for stype, matrix in ref.report.matrices.items():
        assert np.array_equal(matrix, col.report.matrices[stype], equal_nan=True)
    assert ref.runtime.server.inter_events == col.runtime.server.inter_events
    assert ref.runtime.server.bytes_received == col.runtime.server.bytes_received
    ref_snaps, col_snaps = reporters["reference"].snapshots, reporters["columnar"].snapshots
    assert len(ref_snaps) == len(col_snaps) > 0
    for a, b in zip(ref_snaps, col_snaps):
        assert set(a.matrices) == set(b.matrices)
        for stype, matrix in a.matrices.items():
            assert np.array_equal(matrix, b.matrices[stype], equal_nan=True)
        assert a.low_cells == b.low_cells
