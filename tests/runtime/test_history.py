"""Standard-time history tests (§5.2, §5.3)."""

import pytest

from repro.runtime.history import SensorHistory


def test_first_observation_scores_one():
    h = SensorHistory()
    assert h.observe(1, "", 10.0) == 1.0


def test_slower_scores_ratio():
    h = SensorHistory()
    h.observe(1, "", 10.0)
    assert h.observe(1, "", 20.0) == pytest.approx(0.5)


def test_faster_updates_standard():
    h = SensorHistory()
    h.observe(1, "", 10.0)
    assert h.observe(1, "", 8.0) == 1.0
    assert h.standard_time(1) == 8.0
    assert h.observe(1, "", 10.0) == pytest.approx(0.8)


def test_sensors_independent():
    h = SensorHistory()
    h.observe(1, "", 10.0)
    assert h.observe(2, "", 50.0) == 1.0


def test_groups_independent():
    h = SensorHistory()
    h.observe(1, "L", 10.0)
    assert h.observe(1, "H", 30.0) == 1.0
    assert h.observe(1, "L", 20.0) == pytest.approx(0.5)


def test_storage_is_one_scalar_per_sensor_group():
    h = SensorHistory()
    for i in range(1000):
        h.observe(1, "", 10.0 + (i % 7))
    assert h.entries() == 1


def test_unknown_standard_none():
    h = SensorHistory()
    assert h.standard_time(99) is None


def test_zero_duration_guard():
    h = SensorHistory()
    h.observe(1, "", 0.0)
    assert h.observe(1, "", 0.0) == 1.0
