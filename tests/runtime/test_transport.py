"""Shared-file transport tests (§5.4's alternative delivery path)."""

import pytest

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.runtime.transport import FileSpool
from repro.sensors.model import SensorType


def summary(rank, slice_index, duration, sensor_id=1, stype=SensorType.COMPUTATION, group="", miss=0.25):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=4,
        mean_cache_miss=miss,
    )


def test_round_trip_preserves_fields(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 3, 12.5, sensor_id=42, stype=SensorType.NETWORK, group="miss1")])
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    read = spool.drain_into(server, slice_us=1000.0)
    assert read == 1
    assert server.summaries_received == 1
    matrix = server.performance_matrix(SensorType.NETWORK)
    assert matrix.shape == (2, 4)


def test_equivalent_to_direct_delivery(tmp_path):
    batches = {
        0: [summary(0, 0, 10.0), summary(0, 1, 20.0)],
        1: [summary(1, 0, 10.0), summary(1, 1, 10.0)],
    }
    direct = AnalysisServer(n_ranks=2, window_us=1000.0)
    for rank, batch in batches.items():
        direct.receive_batch(rank, batch)

    spool = FileSpool(directory=str(tmp_path))
    for rank, batch in batches.items():
        spool.append_batch(rank, batch)
    spooled = AnalysisServer(n_ranks=2, window_us=1000.0)
    spool.drain_into(spooled, slice_us=1000.0)

    import numpy as np

    d = direct.performance_matrix(SensorType.COMPUTATION)
    s = spooled.performance_matrix(SensorType.COMPUTATION)
    assert np.allclose(np.nan_to_num(d, nan=-1), np.nan_to_num(s, nan=-1), rtol=1e-6)


def test_incremental_drain_reads_only_new_data(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    spool.append_batch(0, [summary(0, 0, 10.0)])
    assert spool.drain_into(server) == 1
    assert spool.drain_into(server) == 0
    spool.append_batch(0, [summary(0, 1, 10.0)])
    assert spool.drain_into(server) == 1


def test_multiple_ranks_separate_spools(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    for rank in range(4):
        spool.append_batch(rank, [summary(rank, 0, 10.0)])
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == [f"rank{r:05d}.spool" for r in range(4)]
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    assert spool.drain_into(server) == 4


class _CapturingServer(AnalysisServer):
    """Records every ingested summary (AnalysisServer uses slots, so the
    capture must be a subclass override, not a monkeypatch).  The hook
    only exists on the reference engine's per-object ingest path, so
    instances are built with ``engine="reference"``."""

    captured: list = []

    def _ingest(self, s):
        type(self).captured.append(s)
        super()._ingest(s)


def test_cache_miss_quantization_error_small(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 0, 10.0, miss=0.333)])
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    spool.drain_into(server)
    assert _CapturingServer.captured[0].mean_cache_miss == pytest.approx(0.333, abs=1e-4)


def test_group_interning_round_trip(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 0, 10.0, group="H"), summary(0, 1, 12.0, group="L")])
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    spool.drain_into(server)
    assert [s.group for s in _CapturingServer.captured] == ["H", "L"]


def test_group_interning_survives_fresh_reader(tmp_path):
    """The group string table is persisted in the spool files: a reader
    built in a different process (fresh instance, no shared memory with
    the writer) must decode every group, not ""."""
    writer = FileSpool(directory=str(tmp_path))
    writer.append_batch(0, [summary(0, 0, 10.0, group="H"), summary(0, 1, 12.0, group="L")])
    writer.append_batch(1, [summary(1, 0, 11.0, group="L")])
    # Second batch re-uses an already-defined group: no redefinition frame.
    writer.append_batch(0, [summary(0, 2, 10.5, group="H")])

    reader = FileSpool(directory=str(tmp_path))
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=2, window_us=1000.0, engine="reference")
    assert reader.drain_into(server) == 4
    by_rank = sorted((s.rank, s.slice_index, s.group) for s in _CapturingServer.captured)
    assert by_rank == [(0, 0, "H"), (0, 1, "L"), (0, 2, "H"), (1, 0, "L")]


def test_fresh_reader_between_incremental_drains(tmp_path):
    """Group codes defined before a reader's first drain still resolve in
    later drains (the reader's table persists across drains)."""
    writer = FileSpool(directory=str(tmp_path))
    writer.append_batch(0, [summary(0, 0, 10.0, group="band9")])
    reader = FileSpool(directory=str(tmp_path))
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    _CapturingServer.captured = []
    assert reader.drain_into(server) == 1
    writer.append_batch(0, [summary(0, 1, 10.0, group="band9")])
    assert reader.drain_into(server) == 1
    assert [s.group for s in _CapturingServer.captured] == ["band9", "band9"]


# -- wire-format round-trips -------------------------------------------------


def test_count_saturates_at_u16(tmp_path):
    import dataclasses

    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [dataclasses.replace(summary(0, 0, 10.0), count=100_000)])
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    spool.drain_into(server)
    assert _CapturingServer.captured[0].count == 0xFFFF


def test_cache_miss_u16_quantization_bound(tmp_path):
    """Decoded miss rate is within one u16 quantum of the original."""
    import dataclasses

    rates = [0.0, 1e-6, 0.123456, 0.5, 0.999999, 1.0, 1.7, -0.3]
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(
        0,
        [
            dataclasses.replace(summary(0, i, 10.0), mean_cache_miss=rate)
            for i, rate in enumerate(rates)
        ],
    )
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    spool.drain_into(server)
    for original, decoded in zip(rates, _CapturingServer.captured):
        clamped = min(max(original, 0.0), 1.0)
        assert 0.0 <= decoded.mean_cache_miss <= 1.0
        assert abs(decoded.mean_cache_miss - clamped) <= 1.0 / 0xFFFF


def test_truncated_tail_does_not_corrupt_next_drain(tmp_path):
    """A partial record at EOF (writer caught mid-append) is skipped and
    decoded intact once the rest of the bytes land."""
    import os

    writer = FileSpool(directory=str(tmp_path))
    writer.append_batch(0, [summary(0, 0, 10.0), summary(0, 1, 11.0, group="tail")])
    path = os.path.join(str(tmp_path), "rank00000.spool")
    with open(path, "rb") as fh:
        full = fh.read()

    for cut in range(1, len(full)):
        reader = FileSpool(directory=str(tmp_path))
        _CapturingServer.captured = []
        server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
        with open(path, "wb") as fh:
            fh.write(full[:cut])
        reader.drain_into(server)
        with open(path, "wb") as fh:
            fh.write(full)
        reader.drain_into(server)
        got = sorted((s.slice_index, s.group, round(s.mean_duration, 3))
                     for s in _CapturingServer.captured)
        assert got == [(0, "", 10.0), (1, "tail", 11.0)], f"cut at byte {cut}"


def test_end_to_end_spooled_run(tmp_path):
    """Full pipeline with spool delivery: same matrices as direct."""
    from repro.api import run_vsensor
    from repro.runtime.transport import SpoolingRuntimeMixin
    from repro.sim import MachineConfig
    from tests.conftest import SIMPLE_MPI_PROGRAM
    import numpy as np

    machine = MachineConfig(n_ranks=4, ranks_per_node=2)
    direct = run_vsensor(SIMPLE_MPI_PROGRAM, machine, window_us=2000.0)

    # Spooled: intercept the runtime before the simulation starts.
    from repro.api import compile_and_instrument
    from repro.runtime.vsensor_hooks import VSensorRuntime
    from repro.runtime.server import AnalysisServer
    from repro.sim import Simulator

    static = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=4,
        server=AnalysisServer(n_ranks=4, window_us=2000.0, batch_period_us=100_000.0),
    )
    mixin = SpoolingRuntimeMixin(spool=FileSpool(directory=str(tmp_path)))
    mixin.attach(runtime)
    Simulator(static.program.module, machine, sensors=static.program.sensors).run(runtime)
    server = mixin.finish(runtime)

    d = direct.report.matrices[SensorType.COMPUTATION]
    s = server.performance_matrix(SensorType.COMPUTATION)
    assert s.shape == d.shape
    # Same cells populated; values agree to quantization.
    assert np.array_equal(np.isfinite(d), np.isfinite(s))
    assert np.allclose(d[np.isfinite(d)], s[np.isfinite(s)], rtol=1e-4)


# -- reliable message transport over a lossy channel -------------------------


def _batches(n_ranks=2, slices=6):
    return {
        rank: [[summary(rank, s, 10.0 + rank)] for s in range(slices)]
        for rank in range(n_ranks)
    }


def _send_all(transport, batches):
    from itertools import chain

    for rank, per_rank in batches.items():
        for i, batch in enumerate(per_rank):
            transport.send_batch(rank, batch, now=float(i) * 1000.0)
    return transport


def test_reliable_transport_recovers_from_drops():
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.transport import ReliableTransport

    import numpy as np

    batches = _batches()
    direct = AnalysisServer(n_ranks=2, window_us=1000.0)
    for rank, per_rank in batches.items():
        for batch in per_rank:
            direct.receive_batch(rank, batch)

    lossy = AnalysisServer(n_ranks=2, window_us=1000.0)
    channel = LossyChannel(config=ChannelConfig(drop_rate=0.4, reorder_rate=0.3, seed=11))
    transport = ReliableTransport(server=lossy, channel=channel)
    _send_all(transport, batches)
    transport.finish()

    assert transport.unacked() == 0
    assert channel.stats.dropped > 0, "the scenario must actually exercise loss"
    assert channel.stats.retried >= channel.stats.dropped
    d = direct.performance_matrix(SensorType.COMPUTATION)
    s = lossy.performance_matrix(SensorType.COMPUTATION)
    assert np.array_equal(d, s, equal_nan=True), "recovered matrices are bit-identical"
    assert lossy.degraded == set()


def test_reliable_transport_dedupes_channel_duplicates():
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.transport import ReliableTransport

    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    channel = LossyChannel(config=ChannelConfig(dup_rate=0.9, seed=3))
    transport = ReliableTransport(server=server, channel=channel)
    _send_all(transport, _batches())
    transport.finish()

    assert channel.stats.duplicated > 0
    assert server.duplicate_batches > 0
    assert server.duplicate_summaries == 0, "duplicates die at the seq watermark"
    # Every unique summary arrived exactly once in effect.
    assert server.stored_summaries == 12


def test_reliable_transport_gives_up_and_marks_degraded():
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.transport import ReliableTransport, RetryPolicy

    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    channel = LossyChannel(config=ChannelConfig(drop_rate=0.97, seed=5))
    policy = RetryPolicy(timeout_us=1000.0, max_attempts=3)
    transport = ReliableTransport(server=server, channel=channel, policy=policy)
    _send_all(transport, _batches())
    transport.finish()

    assert transport.unacked() == 0, "finish() always terminates"
    assert sum(transport.gave_up.values()) > 0
    assert server.degraded, "abandoned ranks are marked degraded"
    # Degraded ranks must not crash matrix rendering.
    matrix = server.performance_matrix(SensorType.COMPUTATION)
    assert matrix.shape[0] == 2


def test_reliable_transport_infers_time_from_batches():
    """The duck-typed receive_batch path (no explicit now) still delivers."""
    from repro.runtime.channel import perfect_channel
    from repro.runtime.transport import ReliableTransport

    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    transport = ReliableTransport(server=server, channel=perfect_channel())
    transport.receive_batch(0, [summary(0, 0, 10.0)])
    transport.receive_batch(0, [summary(0, 5, 10.0)])
    transport.finish()
    assert server.summaries_received == 2
    assert transport.clock >= 5000.0


# -- multi-tenant (job-keyed) wire formats -----------------------------------


def test_spool_splits_mixed_job_batch_into_per_job_files(tmp_path):
    """A batch carrying several tenants lands in per-(job, rank) files,
    with job 0 keeping the legacy single-tenant file name."""
    import os
    from dataclasses import replace

    spool = FileSpool(directory=str(tmp_path))
    rows = [
        summary(0, 0, 10.0),
        replace(summary(0, 1, 11.0), job_id=3),
        summary(0, 2, 12.0),
    ]
    spool.append_batch(0, rows)
    assert sorted(os.listdir(tmp_path)) == [
        "job00003_rank00000.spool",
        "rank00000.spool",
    ]


def test_spool_drains_one_tenant_independently(tmp_path):
    """drain_into(job=...) reads only that tenant's streams and keeps an
    independent incremental offset per (job, rank)."""
    from dataclasses import replace

    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, s, 10.0) for s in range(2)])
    spool.append_batch(
        0, [replace(summary(0, s, 20.0), job_id=3) for s in range(3)]
    )
    spool.append_batch(1, [replace(summary(1, 0, 21.0), job_id=3)])

    server3 = AnalysisServer(n_ranks=2, window_us=1000.0)
    assert spool.drain_into(server3, job=3) == 4
    assert server3.stored_summaries == 4

    server0 = AnalysisServer(n_ranks=2, window_us=1000.0)
    assert spool.drain_into(server0, job=0) == 2
    assert server0.stored_summaries == 2

    # Incremental per-tenant offsets: new job-3 data only.
    spool.append_batch(0, [replace(summary(0, 9, 22.0), job_id=3)])
    assert spool.drain_into(server3, job=3) == 1
    assert spool.drain_into(server0, job=0) == 0


def test_spool_job_round_trip_preserves_job_id_and_groups(tmp_path):
    """Decoded rows carry the tenant id and the per-(job, rank) interned
    group strings."""
    from dataclasses import replace

    spool = FileSpool(directory=str(tmp_path))
    row = replace(summary(0, 4, 17.5, group="phase-a"), job_id=6)
    spool.append_batch(0, [row, summary(0, 5, 9.0, group="phase-b")])

    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    assert spool.drain_into(server, job=6) == 1
    (decoded,) = _CapturingServer.captured
    assert decoded.job_id == 6
    assert decoded.group == "phase-a"
    assert decoded.slice_index == 4
    assert decoded.mean_duration == pytest.approx(17.5)

    _CapturingServer.captured = []
    server0 = _CapturingServer(n_ranks=1, window_us=1000.0, engine="reference")
    assert spool.drain_into(server0, job=0) == 1
    (legacy,) = _CapturingServer.captured
    assert legacy.job_id == 0
    assert legacy.group == "phase-b"


def test_reliable_transport_recovers_with_nonzero_job_id():
    """Sequencing, retransmit lookup, and acks are keyed by (job, rank):
    a tenant with a non-zero job_id survives a lossy channel exactly like
    the single-tenant path."""
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.transport import ReliableTransport, RetryPolicy

    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    channel = LossyChannel(config=ChannelConfig(drop_rate=0.4, dup_rate=0.2, seed=13))
    transport = ReliableTransport(
        server=server,
        channel=channel,
        policy=RetryPolicy(timeout_us=1000.0, max_attempts=12),
        job_id=7,
    )
    _send_all(transport, _batches())
    assert all(key[0] == 7 for key in transport._next_seq)
    transport.finish()
    assert transport.unacked() == 0
    assert transport.gave_up == {}
    assert server.stored_summaries == 12
    assert channel.stats.dropped > 0, "the channel really was lossy"
