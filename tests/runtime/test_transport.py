"""Shared-file transport tests (§5.4's alternative delivery path)."""

import pytest

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.runtime.transport import FileSpool
from repro.sensors.model import SensorType


def summary(rank, slice_index, duration, sensor_id=1, stype=SensorType.COMPUTATION, group="", miss=0.25):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=4,
        mean_cache_miss=miss,
    )


def test_round_trip_preserves_fields(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 3, 12.5, sensor_id=42, stype=SensorType.NETWORK, group="miss1")])
    server = AnalysisServer(n_ranks=2, window_us=1000.0)
    read = spool.drain_into(server, slice_us=1000.0)
    assert read == 1
    assert server.summaries_received == 1
    matrix = server.performance_matrix(SensorType.NETWORK)
    assert matrix.shape == (2, 4)


def test_equivalent_to_direct_delivery(tmp_path):
    batches = {
        0: [summary(0, 0, 10.0), summary(0, 1, 20.0)],
        1: [summary(1, 0, 10.0), summary(1, 1, 10.0)],
    }
    direct = AnalysisServer(n_ranks=2, window_us=1000.0)
    for rank, batch in batches.items():
        direct.receive_batch(rank, batch)

    spool = FileSpool(directory=str(tmp_path))
    for rank, batch in batches.items():
        spool.append_batch(rank, batch)
    spooled = AnalysisServer(n_ranks=2, window_us=1000.0)
    spool.drain_into(spooled, slice_us=1000.0)

    import numpy as np

    d = direct.performance_matrix(SensorType.COMPUTATION)
    s = spooled.performance_matrix(SensorType.COMPUTATION)
    assert np.allclose(np.nan_to_num(d, nan=-1), np.nan_to_num(s, nan=-1), rtol=1e-6)


def test_incremental_drain_reads_only_new_data(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    server = AnalysisServer(n_ranks=1, window_us=1000.0)
    spool.append_batch(0, [summary(0, 0, 10.0)])
    assert spool.drain_into(server) == 1
    assert spool.drain_into(server) == 0
    spool.append_batch(0, [summary(0, 1, 10.0)])
    assert spool.drain_into(server) == 1


def test_multiple_ranks_separate_spools(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    for rank in range(4):
        spool.append_batch(rank, [summary(rank, 0, 10.0)])
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == [f"rank{r:05d}.spool" for r in range(4)]
    server = AnalysisServer(n_ranks=4, window_us=1000.0)
    assert spool.drain_into(server) == 4


class _CapturingServer(AnalysisServer):
    """Records every ingested summary (AnalysisServer uses slots, so the
    capture must be a subclass override, not a monkeypatch)."""

    captured: list = []

    def _ingest(self, s):
        type(self).captured.append(s)
        super()._ingest(s)


def test_cache_miss_quantization_error_small(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 0, 10.0, miss=0.333)])
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0)
    spool.drain_into(server)
    assert _CapturingServer.captured[0].mean_cache_miss == pytest.approx(0.333, abs=1e-4)


def test_group_interning_round_trip(tmp_path):
    spool = FileSpool(directory=str(tmp_path))
    spool.append_batch(0, [summary(0, 0, 10.0, group="H"), summary(0, 1, 12.0, group="L")])
    _CapturingServer.captured = []
    server = _CapturingServer(n_ranks=1, window_us=1000.0)
    spool.drain_into(server)
    assert [s.group for s in _CapturingServer.captured] == ["H", "L"]


def test_end_to_end_spooled_run(tmp_path):
    """Full pipeline with spool delivery: same matrices as direct."""
    from repro.api import run_vsensor
    from repro.runtime.transport import SpoolingRuntimeMixin
    from repro.sim import MachineConfig
    from tests.conftest import SIMPLE_MPI_PROGRAM
    import numpy as np

    machine = MachineConfig(n_ranks=4, ranks_per_node=2)
    direct = run_vsensor(SIMPLE_MPI_PROGRAM, machine, window_us=2000.0)

    # Spooled: intercept the runtime before the simulation starts.
    from repro.api import compile_and_instrument
    from repro.runtime.vsensor_hooks import VSensorRuntime
    from repro.runtime.server import AnalysisServer
    from repro.sim import Simulator

    static = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=4,
        server=AnalysisServer(n_ranks=4, window_us=2000.0, batch_period_us=100_000.0),
    )
    mixin = SpoolingRuntimeMixin(spool=FileSpool(directory=str(tmp_path)))
    mixin.attach(runtime)
    Simulator(static.program.module, machine, sensors=static.program.sensors).run(runtime)
    server = mixin.finish(runtime)

    d = direct.report.matrices[SensorType.COMPUTATION]
    s = server.performance_matrix(SensorType.COMPUTATION)
    assert s.shape == d.shape
    # Same cells populated; values agree to quantization.
    assert np.array_equal(np.isfinite(d), np.isfinite(s))
    assert np.allclose(d[np.isfinite(d)], s[np.isfinite(s)], rtol=1e-4)
