"""Variance-report tests (§5.5)."""

import numpy as np
import pytest

from repro.runtime.report import VarianceRegion, VarianceReport, cluster_low_cells
from repro.sensors.model import SensorType


def test_cluster_empty_matrix():
    matrix = np.ones((4, 4))
    assert cluster_low_cells(matrix, SensorType.COMPUTATION, 1000.0) == []


def test_cluster_single_block():
    matrix = np.ones((6, 10))
    matrix[2:4, 3:6] = 0.4
    regions = cluster_low_cells(matrix, SensorType.COMPUTATION, 1000.0)
    assert len(regions) == 1
    region = regions[0]
    assert (region.rank_lo, region.rank_hi) == (2, 3)
    assert region.t_start_us == pytest.approx(3000.0)
    assert region.t_end_us == pytest.approx(6000.0)
    assert region.cells == 6
    assert region.mean_performance == pytest.approx(0.4)


def test_cluster_two_disjoint_blocks():
    matrix = np.ones((8, 8))
    matrix[0:2, 0:2] = 0.3
    matrix[5:7, 5:7] = 0.5
    regions = cluster_low_cells(matrix, SensorType.NETWORK, 1000.0)
    assert len(regions) == 2


def test_cluster_ignores_nan():
    matrix = np.full((4, 4), np.nan)
    matrix[1, 1] = 0.2
    regions = cluster_low_cells(matrix, SensorType.COMPUTATION, 1000.0)
    assert len(regions) == 1
    assert regions[0].cells == 1


def test_regions_sorted_by_size():
    matrix = np.ones((8, 8))
    matrix[0, 0] = 0.3
    matrix[4:7, 4:7] = 0.3
    regions = cluster_low_cells(matrix, SensorType.COMPUTATION, 1000.0)
    assert regions[0].cells > regions[1].cells


def test_region_describe_mentions_ranks_and_time():
    region = VarianceRegion(
        sensor_type=SensorType.COMPUTATION,
        rank_lo=24,
        rank_hi=47,
        t_start_us=34_000_000.0,
        t_end_us=44_000_000.0,
        mean_performance=0.5,
        cells=100,
    )
    text = region.describe()
    assert "24-47" in text and "34.0s" in text


def test_data_rate_computation():
    report = VarianceReport(n_ranks=128, total_time_us=140e6, bytes_to_server=8_800_000)
    # The paper's example: ~8.8 MB over 140 s and 128 processes = 0.5 KB/s.
    assert report.data_rate_kb_per_s() == pytest.approx(0.48, abs=0.05)


def test_suspect_ranks():
    report = VarianceReport(n_ranks=4, total_time_us=1e6)
    report.rank_means[SensorType.COMPUTATION] = np.array([1.0, 0.95, 0.5, 0.97])
    assert report.suspect_ranks(SensorType.COMPUTATION) == [2]


def test_suspect_ranks_empty_without_data():
    report = VarianceReport(n_ranks=4, total_time_us=1e6)
    assert report.suspect_ranks(SensorType.IO) == []


def test_summary_text():
    report = VarianceReport(n_ranks=8, total_time_us=2e6, intra_events=3, inter_events=1)
    text = report.summary()
    assert "8 ranks" in text and "intra-process variance events: 3" in text
