"""Detection-quality harness tests."""

import pytest

from repro.api import run_vsensor
from repro.runtime.quality import GroundTruth, ground_truth_of, score_detection
from repro.runtime.report import VarianceRegion, VarianceReport
from repro.sensors.model import SensorType
from repro.sim import (
    CpuContention,
    IoDegradation,
    MachineConfig,
    NetworkDegradation,
    SlowMemoryNode,
)
from tests.conftest import SIMPLE_MPI_PROGRAM


def region(stype=SensorType.COMPUTATION, rlo=0, rhi=3, t0=0.0, t1=1000.0, cells=5):
    return VarianceRegion(
        sensor_type=stype,
        rank_lo=rlo,
        rank_hi=rhi,
        t_start_us=t0,
        t_end_us=t1,
        mean_performance=0.5,
        cells=cells,
    )


class TestGroundTruth:
    def test_slow_memory_maps_to_node_ranks(self):
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        truths = ground_truth_of([SlowMemoryNode(node_id=1)], machine, 1e6)
        assert len(truths) == 1
        assert (truths[0].rank_lo, truths[0].rank_hi) == (4, 7)
        assert truths[0].sensor_type is SensorType.COMPUTATION

    def test_contention_expands_per_node(self):
        machine = MachineConfig(n_ranks=12, ranks_per_node=4)
        truths = ground_truth_of(
            [CpuContention(node_ids=(0, 2), t0=10.0, t1=20.0)], machine, 1e6
        )
        assert len(truths) == 2
        assert {(t.rank_lo, t.rank_hi) for t in truths} == {(0, 3), (8, 11)}

    def test_network_covers_all_ranks(self):
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        truths = ground_truth_of([NetworkDegradation(t0=1.0, t1=2.0)], machine, 1e6)
        assert (truths[0].rank_lo, truths[0].rank_hi) == (0, 7)
        assert truths[0].sensor_type is SensorType.NETWORK

    def test_io_node_local(self):
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        truths = ground_truth_of(
            [IoDegradation(t0=0.0, t1=1.0, node_ids=(1,))], machine, 1e6
        )
        assert (truths[0].rank_lo, truths[0].rank_hi) == (4, 7)
        assert truths[0].sensor_type is SensorType.IO

    def test_infinite_fault_clamped_to_runtime(self):
        machine = MachineConfig(n_ranks=4, ranks_per_node=4)
        truths = ground_truth_of([SlowMemoryNode(node_id=0)], machine, 5000.0)
        assert truths[0].t1 == 5000.0


class TestOverlap:
    def test_overlap_requires_same_component(self):
        truth = GroundTruth(SensorType.COMPUTATION, 0, 3, 0.0, 100.0)
        assert truth.overlaps(region(stype=SensorType.COMPUTATION))
        assert not truth.overlaps(region(stype=SensorType.NETWORK))

    def test_overlap_requires_rank_intersection(self):
        truth = GroundTruth(SensorType.COMPUTATION, 8, 11, 0.0, 1000.0)
        assert not truth.overlaps(region(rlo=0, rhi=3))
        assert truth.overlaps(region(rlo=10, rhi=12))

    def test_overlap_requires_time_intersection(self):
        truth = GroundTruth(SensorType.COMPUTATION, 0, 3, 5000.0, 6000.0)
        assert not truth.overlaps(region(t0=0.0, t1=1000.0))
        assert truth.overlaps(region(t0=5500.0, t1=7000.0))

    def test_slack_widens_time_matching(self):
        truth = GroundTruth(SensorType.COMPUTATION, 0, 3, 5000.0, 6000.0)
        r = region(t0=0.0, t1=4500.0)
        assert not truth.overlaps(r)
        assert truth.overlaps(r, slack_us=600.0)


class TestScoring:
    def test_perfect_detection(self):
        report = VarianceReport(n_ranks=8, total_time_us=1e6, window_us=100.0)
        report.regions = [region(rlo=4, rhi=7, t0=0.0, t1=1e6)]
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        score = score_detection(report, [SlowMemoryNode(node_id=1)], machine)
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_missed_fault_lowers_recall(self):
        report = VarianceReport(n_ranks=8, total_time_us=1e6, window_us=100.0)
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        score = score_detection(report, [SlowMemoryNode(node_id=1)], machine)
        assert score.recall == 0.0
        assert score.precision == 1.0  # vacuous: nothing detected

    def test_spurious_region_lowers_precision(self):
        report = VarianceReport(n_ranks=8, total_time_us=1e6, window_us=100.0)
        report.regions = [region(rlo=0, rhi=1, t0=0.0, t1=100.0)]
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        score = score_detection(report, [], machine)
        assert score.precision == 0.0
        assert score.recall == 1.0  # vacuous: nothing to find

    def test_min_cells_filters_noise_regions(self):
        report = VarianceReport(n_ranks=8, total_time_us=1e6, window_us=100.0)
        report.regions = [region(cells=1)]
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        score = score_detection(report, [], machine, min_cells=2)
        assert score.detected == []


class TestEndToEnd:
    def test_injected_contention_scores_perfectly(self):
        machine = MachineConfig(n_ranks=8, ranks_per_node=4)
        probe = run_vsensor(SIMPLE_MPI_PROGRAM, machine)
        span = probe.sim.total_time
        faults = [CpuContention(node_ids=(1,), t0=0.2 * span, t1=0.6 * span, cpu_factor=0.25)]
        run = run_vsensor(
            SIMPLE_MPI_PROGRAM, machine, faults=faults, window_us=span / 10,
            batch_period_us=span / 10,
        )
        # Score computation regions only (network wait-skew regions are a
        # separate, known artifact of collective sensors).
        comp_report = run.report
        comp_report.regions = [
            r for r in comp_report.regions if r.sensor_type is SensorType.COMPUTATION
        ]
        score = score_detection(comp_report, faults, machine)
        assert score.recall == 1.0
        assert score.precision == 1.0
