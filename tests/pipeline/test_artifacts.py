"""Fingerprinting, digests, and the LRU + disk artifact store."""

import enum
from dataclasses import dataclass

import pytest

from repro.pipeline import ArtifactStore, FingerprintError, digest, fingerprint
from repro.sensors.extern import default_extern_registry


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Knobs:
    depth: int
    name: str


class Stateless:
    def accepts(self, *_):
        return True


class TestFingerprint:
    def test_scalars(self):
        assert fingerprint(None) == "None"
        assert fingerprint(3) != fingerprint("3")
        assert fingerprint(True) != fingerprint(1.0)

    def test_enum(self):
        assert fingerprint(Color.RED) == "Color.RED"
        assert fingerprint(Color.RED) != fingerprint(Color.BLUE)

    def test_dataclass_by_content(self):
        assert fingerprint(Knobs(3, "x")) == fingerprint(Knobs(3, "x"))
        assert fingerprint(Knobs(3, "x")) != fingerprint(Knobs(4, "x"))

    def test_containers_and_set_order_invariance(self):
        assert fingerprint([1, 2]) != fingerprint((1, 2))
        assert fingerprint({"b": 2, "a": 1}) == fingerprint({"a": 1, "b": 2})
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_stateless_object_identified_by_class(self):
        assert fingerprint(Stateless()) == "Stateless"

    def test_cache_fingerprint_hook_wins(self):
        registry = default_extern_registry()
        fp = fingerprint(registry)
        assert fp.startswith("ExternRegistry(")
        assert fp == fingerprint(registry.copy())

    def test_opaque_object_raises(self):
        class Opaque:
            __slots__ = ("x",)

            def __init__(self):
                self.x = object()

        with pytest.raises(FingerprintError):
            fingerprint(Opaque())


class TestDigest:
    def test_framing_prevents_concatenation_collisions(self):
        assert digest("ab", "c") != digest("a", "bc")

    def test_deterministic(self):
        assert digest("x", "y") == digest("x", "y")


class TestStoreMemory:
    def test_roundtrip_and_miss(self):
        store = ArtifactStore()
        assert store.get("parse:00") == (None, False)
        store.put("parse:00", {"k": 1})
        assert store.get("parse:00") == ({"k": 1}, True)

    def test_lru_evicts_oldest(self):
        store = ArtifactStore(capacity=2)
        store.put("p:1", 1)
        store.put("p:2", 2)
        store.get("p:1")  # touch: 2 becomes the eviction candidate
        store.put("p:3", 3)
        assert store.get("p:2") == (None, False)
        assert store.get("p:1") == (1, True)
        assert store.get("p:3") == (3, True)

    def test_invalidate_key(self):
        store = ArtifactStore()
        store.put("p:1", 1)
        assert store.invalidate_key("p:1")
        assert not store.invalidate_key("p:1")
        assert store.get("p:1") == (None, False)

    def test_invalidate_pass_by_prefix(self):
        store = ArtifactStore()
        store.put("parse:1", 1)
        store.put("parse:2", 2)
        store.put("lower:1", 3)
        assert store.invalidate_pass("parse") == 2
        assert store.get("lower:1") == (3, True)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArtifactStore(capacity=0)


class TestStoreDisk:
    def test_write_through_survives_new_store(self, tmp_path):
        ArtifactStore(disk_dir=tmp_path).put("parse:aa", [1, 2, 3])
        fresh = ArtifactStore(disk_dir=tmp_path)
        assert fresh.get("parse:aa") == ([1, 2, 3], True)
        assert len(fresh) == 1  # disk hit was promoted into memory

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("parse:aa", 1)
        (tmp_path / "parse" / "aa.pkl").write_bytes(b"not a pickle")
        assert ArtifactStore(disk_dir=tmp_path).get("parse:aa") == (None, False)

    def test_unpicklable_value_stays_memory_only(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("parse:aa", lambda: None)  # pickling fails silently
        assert store.get("parse:aa")[1]
        assert not (tmp_path / "parse" / "aa.pkl").exists()

    def test_invalidate_pass_clears_disk(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("parse:aa", 1)
        store.invalidate_pass("parse")
        assert ArtifactStore(disk_dir=tmp_path).get("parse:aa") == (None, False)

    def test_clear_clears_disk(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("parse:aa", 1)
        store.clear()
        assert len(store) == 0
        assert ArtifactStore(disk_dir=tmp_path).get("parse:aa") == (None, False)
