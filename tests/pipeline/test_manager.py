"""PassManager scheduling, timing, and content-keyed caching."""

import pytest

from repro.pipeline import (
    ArtifactStore,
    CompilerContext,
    Pass,
    PassManager,
    PipelineError,
)


def ctx(source="src", **kw):
    return CompilerContext(source=source, **kw)


def counting(value=None):
    """A pass body that counts invocations (for cache-hit assertions)."""
    calls = []

    def run(ctx_, inputs):
        calls.append(dict(inputs))
        return value if value is not None else f"ran{len(calls)}"

    run.calls = calls
    return run


def diamond_manager(bodies=None):
    bodies = bodies or {}
    mgr = PassManager()
    mgr.register(Pass(name="a", inputs=(), run=bodies.get("a", counting("A"))))
    mgr.register(Pass(name="b", inputs=("a",), run=bodies.get("b", counting("B"))))
    mgr.register(Pass(name="c", inputs=("a",), run=bodies.get("c", counting("C"))))
    mgr.register(
        Pass(name="d", inputs=("b", "c"), run=bodies.get("d", counting("D")))
    )
    return mgr


class TestOrdering:
    def test_linear_order(self):
        mgr = PassManager()
        mgr.register(Pass(name="one", inputs=(), run=counting()))
        mgr.register(Pass(name="two", inputs=("one",), run=counting()))
        assert [p.name for p in mgr.order()] == ["one", "two"]

    def test_diamond_order_respects_registration_tiebreak(self):
        assert [p.name for p in diamond_manager().order()] == ["a", "b", "c", "d"]

    def test_target_runs_only_ancestors(self):
        assert [p.name for p in diamond_manager().order("b")] == ["a", "b"]

    def test_unknown_input_rejected(self):
        mgr = PassManager()
        mgr.register(Pass(name="p", inputs=("ghost",), run=counting()))
        with pytest.raises(PipelineError, match="unknown input"):
            mgr.order()

    def test_unknown_target_rejected(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            diamond_manager().order("ghost")

    def test_duplicate_registration_rejected(self):
        mgr = PassManager()
        mgr.register(Pass(name="p", inputs=(), run=counting()))
        with pytest.raises(PipelineError, match="duplicate"):
            mgr.register(Pass(name="p", inputs=(), run=counting()))

    def test_cycle_detected(self):
        mgr = PassManager()
        mgr.register(Pass(name="x", inputs=("y",), run=counting()))
        mgr.register(Pass(name="y", inputs=("x",), run=counting()))
        with pytest.raises(PipelineError, match="cycle"):
            mgr.order()


class TestExecution:
    def test_artifacts_and_inputs_flow(self):
        mgr = diamond_manager()
        c = ctx()
        mgr.run(c)
        assert c.artifact("d") == "D"
        d_inputs = mgr.get("d").run.calls[0]
        assert d_inputs == {"b": "B", "c": "C"}

    def test_every_pass_timed(self):
        c = ctx()
        diamond_manager().run(c)
        assert [t.name for t in c.profile.timings] == ["a", "b", "c", "d"]
        assert all(t.seconds >= 0 for t in c.profile.timings)

    def test_no_store_marks_cache_disabled(self):
        c = ctx()
        diamond_manager().run(c)
        assert not c.profile.cache_enabled
        assert c.profile.cache_disabled_reason == "no artifact store"


class TestCaching:
    def test_second_run_hits_without_reexecuting(self):
        mgr = diamond_manager()
        store = ArtifactStore()
        mgr.run(ctx(store=store))
        warm = ctx(store=store)
        mgr.run(warm)
        assert warm.profile.hits == 4 and warm.profile.misses == 0
        for name in "abcd":
            assert len(mgr.get(name).run.calls) == 1

    def test_source_change_misses_everything(self):
        mgr = diamond_manager()
        store = ArtifactStore()
        mgr.run(ctx(store=store))
        other = ctx(source="other", store=store)
        mgr.run(other)
        assert other.profile.misses == 4

    def test_config_key_change_invalidates_pass_and_descendants_only(self):
        mgr = PassManager()
        mgr.register(Pass(name="a", inputs=(), run=counting("A")))
        mgr.register(
            Pass(name="b", inputs=("a",), run=counting("B"), config_keys=("knob",))
        )
        mgr.register(Pass(name="c", inputs=("b",), run=counting("C")))
        store = ArtifactStore()
        mgr.run(ctx(store=store, config={"knob": 1}))
        turned = ctx(store=store, config={"knob": 2})
        mgr.run(turned)
        outcome = {t.name: t.cache_hit for t in turned.profile.timings}
        assert outcome == {"a": True, "b": False, "c": False}

    def test_unfingerprintable_config_disables_cache(self):
        class Opaque:
            __slots__ = ("x",)

            def __init__(self):
                self.x = 1

        mgr = PassManager()
        mgr.register(
            Pass(name="p", inputs=(), run=counting(), config_keys=("opaque",))
        )
        store = ArtifactStore()
        c = ctx(store=store, config={"opaque": Opaque()})
        mgr.run(c)
        assert not c.profile.cache_enabled
        assert "fingerprint" in c.profile.cache_disabled_reason
        assert len(store) == 0  # nothing was cached under a guessed key

    def test_targeted_invalidation_recomputes_only_that_pass(self):
        mgr = diamond_manager()
        store = ArtifactStore()
        mgr.run(ctx(store=store))
        store.invalidate_pass("b")
        third = ctx(store=store)
        mgr.run(third)
        outcome = {t.name: t.cache_hit for t in third.profile.timings}
        # b recomputes, but its key (hence d's key) is unchanged: d still hits.
        assert outcome == {"a": True, "b": False, "c": True, "d": True}
