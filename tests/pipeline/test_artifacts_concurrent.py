"""ArtifactStore disk layer under concurrent multi-process writers.

The parallel runner's pool workers share one on-disk compile cache, so
many processes publish the *same keys* at the same time.  The contract:
readers never see a torn or partial pickle (every published file loads
and equals some writer's complete payload), no temp files leak, and a
crashed writer's stale temp is inert until swept.
"""

from __future__ import annotations

import multiprocessing

from repro.pipeline import ArtifactStore
from repro.pipeline.artifacts import digest

N_PROCS = 4
N_ROUNDS = 25
KEYS = [f"parse:{digest('shared', str(i))}" for i in range(3)]


def _hammer(args):
    """One writer process: publish every shared key N_ROUNDS times."""
    disk_dir, writer_id = args
    store = ArtifactStore(capacity=4, disk_dir=disk_dir)
    for round_no in range(N_ROUNDS):
        for key in KEYS:
            # Self-describing payload: any complete file is valid.
            store.put(key, {"key": key, "writer": writer_id, "round": round_no})
            value, hit = store.get(key)
            assert hit and value["key"] == key
    return writer_id


def test_concurrent_writers_never_tear_files(tmp_path):
    disk_dir = str(tmp_path / "cache")
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(N_PROCS) as pool:
        done = pool.map(_hammer, [(disk_dir, w) for w in range(N_PROCS)])
    assert sorted(done) == list(range(N_PROCS))

    # Every published file is a whole pickle from one writer's final put.
    fresh = ArtifactStore(disk_dir=disk_dir)
    for key in KEYS:
        value, hit = fresh.get(key)
        assert hit
        assert value["key"] == key
        assert value["writer"] in range(N_PROCS)
        assert value["round"] == N_ROUNDS - 1  # last replace wins, whole
    # No temp files survive healthy writers.
    assert list((tmp_path / "cache").glob("*/*.tmp")) == []


def test_cross_process_cache_hits(tmp_path):
    """A value published by one process is a disk hit in another store."""
    disk_dir = str(tmp_path / "cache")
    writer = ArtifactStore(disk_dir=disk_dir)
    key = KEYS[0]
    writer.put(key, ("payload", 42))
    reader = ArtifactStore(disk_dir=disk_dir)  # simulates a sibling process
    value, hit = reader.get(key)
    assert hit and value == ("payload", 42)


def test_stale_tmp_from_crashed_writer_is_inert_and_swept(tmp_path):
    disk_dir = tmp_path / "cache"
    store = ArtifactStore(disk_dir=disk_dir)
    key = KEYS[0]
    store.put(key, "good")
    # A writer that died mid-write leaves a uniquely-named temp behind.
    pass_dir = disk_dir / "parse"
    stale = pass_dir / "deadbeef.pkl.99999.0.tmp"
    stale.write_bytes(b"torn garbage")
    # Reads never look at temps.
    fresh = ArtifactStore(disk_dir=disk_dir)
    value, hit = fresh.get(key)
    assert hit and value == "good"
    # invalidate_pass sweeps the stale temp alongside the real entries.
    fresh.invalidate_pass("parse")
    assert not stale.exists()
    assert list(pass_dir.glob("*.pkl")) == []


def test_clear_sweeps_temps_everywhere(tmp_path):
    disk_dir = tmp_path / "cache"
    store = ArtifactStore(disk_dir=disk_dir)
    for key in KEYS:
        store.put(key, "v")
    stale = disk_dir / "parse" / "cafe.pkl.1.2.tmp"
    stale.write_bytes(b"x")
    store.clear()
    assert not stale.exists()
    assert list(disk_dir.glob("*/*.pkl")) == []


def test_unpicklable_artifact_degrades_to_memory_only(tmp_path):
    store = ArtifactStore(disk_dir=tmp_path / "cache")
    key = KEYS[1]
    store.put(key, lambda: None)  # pickling a local lambda fails
    value, hit = store.get(key)
    assert hit and callable(value)  # memory layer still serves it
    # The failed disk write left no temp droppings behind.
    assert list((tmp_path / "cache").glob("**/*.tmp")) == []
