"""The seven-pass static pipeline: caching, determinism, bit-identical output."""

from repro.api import compile_and_instrument
from repro.diagnostics import ReasonCode
from repro.frontend.parser import parse_source
from repro.frontend import ast_nodes as A
from repro.instrument.annotations import Annotations, SnippetRef
from repro.pipeline import ArtifactStore, CompilerContext, static_pass_manager
from repro.workloads import get_workload

SOURCE = get_workload("CG").source(scale=1)


def compile_with(store, source=SOURCE, **config):
    ctx = CompilerContext(source=source, filename="CG", config=config, store=store)
    static_pass_manager().run(ctx)
    return ctx


def all_node_ids(module):
    ids = [module.node_id]
    for fn in module.functions:
        ids.append(fn.node_id)
        ids.extend(p.node_id for p in fn.params)
        if fn.body is not None:
            for stmt in A.walk_stmts(fn.body):
                ids.append(stmt.node_id)
                ids.extend(e.node_id for e in A.walk_exprs(stmt))
    for g in module.globals:
        ids.append(g.node_id)
    return sorted(ids)


class TestCaching:
    def test_cold_then_warm(self):
        store = ArtifactStore()
        cold = compile_with(store)
        warm = compile_with(store)
        assert cold.profile.misses == 7 and cold.profile.hits == 0
        assert warm.profile.hits == 7 and warm.profile.misses == 0

    def test_warm_output_bit_identical_to_uncached(self):
        store = ArtifactStore()
        compile_with(store)
        warm = compile_with(store)
        fresh = compile_with(None)
        warm_prog = warm.artifact("instrument")
        fresh_prog = fresh.artifact("instrument")
        assert warm_prog.source == fresh_prog.source
        assert sorted(warm_prog.sensors) == sorted(fresh_prog.sensors)

    def test_max_depth_change_recomputes_select_and_instrument_only(self):
        store = ArtifactStore()
        compile_with(store, max_depth=3)
        turned = compile_with(store, max_depth=1)
        outcome = {t.name: t.cache_hit for t in turned.profile.timings}
        assert outcome == {
            "parse": True,
            "lower": True,
            "cfa": True,
            "dataflow": True,
            "identify": True,
            "select": False,
            "instrument": False,
        }

    def test_mid_pipeline_invalidation_keeps_downstream_hits(self):
        store = ArtifactStore()
        before = compile_with(store)
        store.invalidate_pass("dataflow")
        after = compile_with(store)
        outcome = {t.name: t.cache_hit for t in after.profile.timings}
        # dataflow recomputes; its key is unchanged, so downstream still hits
        assert outcome == {
            "parse": True,
            "lower": True,
            "cfa": True,
            "dataflow": False,
            "identify": True,
            "select": True,
            "instrument": True,
        }
        assert (
            after.artifact("instrument").source
            == before.artifact("instrument").source
        )


class TestDeterminism:
    def test_node_ids_deterministic_across_parses(self):
        first = parse_source(SOURCE, filename="CG")
        second = parse_source(SOURCE, filename="CG")
        assert all_node_ids(first) == all_node_ids(second)
        assert min(all_node_ids(first)) == 1

    def test_instrumented_copy_leaves_parse_artifact_pristine(self):
        store = ArtifactStore()
        ctx = compile_with(store)
        parsed = ctx.artifact("parse")
        instrumented = ctx.artifact("instrument").module
        assert instrumented is not parsed
        from repro.frontend.pretty import format_module

        assert "vs_tick" in format_module(instrumented)
        assert "vs_tick" not in format_module(parsed)


class TestApiIntegration:
    def test_default_store_shares_across_calls(self):
        first = compile_and_instrument(SOURCE, filename="CG-api-share")
        second = compile_and_instrument(SOURCE, filename="CG-api-share")
        assert second.profile.hits == 7
        assert first.source == second.source

    def test_store_none_disables_cache(self):
        static = compile_and_instrument(SOURCE, store=None)
        assert not static.profile.cache_enabled
        assert static.profile.misses == 7

    def test_diagnostics_aggregated_with_provenance(self):
        static = compile_and_instrument(SOURCE, store=None)
        origins = {d.origin for d in static.diagnostics}
        assert "identify" in origins and "select" in origins
        assert all(isinstance(d.code, ReasonCode) for d in static.diagnostics)

    def test_annotation_exclusion_does_not_mutate_cached_identify(self):
        store = ArtifactStore()
        plain = compile_and_instrument(SOURCE, filename="CG-ann", store=store)
        target = plain.identification.sensors[0]
        excluded = compile_and_instrument(
            SOURCE,
            filename="CG-ann",
            store=store,
            annotations=Annotations(
                exclude=[SnippetRef(function=target.function, line=target.loc.line)]
            ),
        )
        assert ReasonCode.ANNOTATION_EXCLUDED in {
            d.code for d in excluded.plan.diagnostics
        }
        # identify was a cache hit and its sensor list must be intact
        again = compile_and_instrument(SOURCE, filename="CG-ann", store=store)
        assert len(again.identification.sensors) == len(plain.identification.sensors)
