"""CLI tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import main, parse_fault
from repro.errors import ReproError
from repro.sim import BadNode, CpuContention, NetworkDegradation, SlowMemoryNode


PROGRAM = """
global int NITER = 5;
void kernel() {
    int i;
    for (i = 0; i < 8; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Barrier();
    }
    return 0;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.vsn"
    path.write_text(PROGRAM)
    return str(path)


class TestParseFault:
    def test_slowmem(self):
        fault = parse_fault("slowmem:3:0.5")
        assert isinstance(fault, SlowMemoryNode)
        assert fault.node_id == 3 and fault.mem_factor == 0.5

    def test_slowmem_default_factor(self):
        assert parse_fault("slowmem:1").mem_factor == 0.55

    def test_badnode(self):
        fault = parse_fault("badnode:2:0.7")
        assert isinstance(fault, BadNode)
        assert fault.cpu_factor == 0.7

    def test_contention_multiple_nodes(self):
        fault = parse_fault("contention:1,3:10:20:0.4")
        assert isinstance(fault, CpuContention)
        assert fault.node_ids == (1, 3)
        assert fault.t0 == 10_000.0 and fault.t1 == 20_000.0

    def test_netdeg(self):
        fault = parse_fault("netdeg:5:15:0.25")
        assert isinstance(fault, NetworkDegradation)
        assert fault.factor == 0.25

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            parse_fault("gremlins:1")

    def test_malformed(self):
        with pytest.raises(ReproError, match="bad fault spec"):
            parse_fault("slowmem:not_a_number")


class TestCommands:
    def test_identify(self, program_file, capsys):
        assert main(["identify", program_file]) == 0
        out = capsys.readouterr().out
        assert "snippet candidates" in out
        assert "call kernel" in out

    def test_identify_workload(self, capsys):
        assert main(["identify", "--workload", "CG"]) == 0
        out = capsys.readouterr().out
        assert "identified sensors" in out

    def test_instrument_stdout(self, program_file, capsys):
        assert main(["instrument", program_file]) == 0
        out = capsys.readouterr().out
        assert "vs_tick" in out and "vs_tock" in out

    def test_instrument_to_file(self, program_file, tmp_path, capsys):
        out_path = tmp_path / "instrumented.vsn"
        assert main(["instrument", program_file, "-o", str(out_path)]) == 0
        assert "vs_tick" in out_path.read_text()

    def test_run_with_fault(self, program_file, capsys):
        code = main(
            [
                "run",
                program_file,
                "--ranks",
                "4",
                "--ranks-per-node",
                "2",
                "--fault",
                "slowmem:1:0.5",
                "--window-ms",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total time" in out
        assert "performance matrix" in out

    def test_run_export(self, program_file, tmp_path, capsys):
        stem = str(tmp_path / "matrix")
        assert (
            main(
                [
                    "run",
                    program_file,
                    "--ranks",
                    "4",
                    "--ranks-per-node",
                    "2",
                    "--export",
                    stem,
                ]
            )
            == 0
        )
        assert (tmp_path / "matrix_comp.pgm").exists()
        assert (tmp_path / "matrix_comp.csv").exists()

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("BT", "CG", "FT", "AMG"):
            assert name in out

    def test_missing_file_error(self, capsys):
        assert main(["identify", "/nonexistent/prog.vsn"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fault_error(self, program_file, capsys):
        assert main(["run", program_file, "--fault", "zap:1"]) == 2

    def test_no_program_no_workload(self, capsys):
        assert main(["identify"]) == 2


class TestPipelineFlags:
    """--explain structured output, --profile-passes, --no-cache."""

    def test_explain_prints_codes_and_spans(self, capsys):
        assert main(["identify", "--workload", "CG", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "rejected snippets (identify):" in out
        assert "note[" in out and "(identify)" in out
        assert "CG:" in out  # source spans carry the filename

    def test_explain_matches_structured_rejections(self, capsys):
        from repro.api import compile_and_instrument
        from repro.workloads import get_workload

        static = compile_and_instrument(
            get_workload("CG").source(scale=1), filename="CG"
        )
        assert main(["identify", "--workload", "CG", "--explain"]) == 0
        out = capsys.readouterr().out
        for rejection in static.identification.rejections:
            diag = rejection.diagnostic
            assert f"[{diag.code.value}]" in out
            assert f"CG:{diag.span.line}:" in out

    def test_profile_passes_table(self, capsys):
        assert main(["identify", "--workload", "CG", "--profile-passes"]) == 0
        out = capsys.readouterr().out
        assert "per-pass profile:" in out
        for name in ("parse", "lower", "cfa", "dataflow", "identify", "select",
                     "instrument", "total"):
            assert name in out

    def test_no_cache_disables_store(self, capsys):
        assert main(
            ["identify", "--workload", "CG", "--no-cache", "--profile-passes"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache disabled" in out

    def test_run_profile_passes(self, program_file, capsys):
        assert main(
            ["run", program_file, "--ranks", "4", "--ranks-per-node", "2",
             "--profile-passes"]
        ) == 0
        assert "per-pass profile:" in capsys.readouterr().out

    def test_instrument_profile_passes(self, program_file, capsys):
        assert main(["instrument", program_file, "--profile-passes"]) == 0
        assert "per-pass profile:" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_obs_summary_prints_flame_and_budget(self, program_file, capsys):
        assert main(
            ["run", program_file, "--ranks", "4", "--ranks-per-node", "2",
             "--obs-summary"]
        ) == 0
        out = capsys.readouterr().out
        assert "flame summary (real track)" in out
        assert "vsensor.simulate" in out
        assert "observability self-cost:" in out

    def test_trace_out_writes_loadable_chrome_trace(self, program_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", program_file, "--ranks", "4", "--ranks-per-node", "2",
             "--trace-out", str(trace_path)]
        ) == 0
        from repro.obs import parse_chrome_trace

        spans = parse_chrome_trace(trace_path.read_text())
        assert any(s["name"] == "vsensor.simulate" for s in spans)
        assert "trace written to" in capsys.readouterr().out

    def test_metrics_out_writes_sorted_document(self, program_file, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["run", program_file, "--ranks", "4", "--ranks-per-node", "2",
             "--metrics-out", str(metrics_path)]
        ) == 0
        doc = json.loads(metrics_path.read_text())
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert doc["counters"]["sim.ranks_finished"] == 4

    def test_run_without_obs_flags_prints_no_flame(self, program_file, capsys):
        assert main(
            ["run", program_file, "--ranks", "4", "--ranks-per-node", "2"]
        ) == 0
        assert "flame summary" not in capsys.readouterr().out
