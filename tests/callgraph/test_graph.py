"""Call-graph construction tests."""

from repro.callgraph import build_call_graph
from repro.frontend.parser import parse_source
from repro.ir import lower_module


def graph_of(src):
    return build_call_graph(lower_module(parse_source(src)))


def test_simple_edge():
    cg = graph_of("void f() { } int main() { f(); return 0; }")
    assert cg.graph.has_edge("main", "f")


def test_every_defined_function_is_node():
    cg = graph_of("void unused() { } int main() { return 0; }")
    assert "unused" in cg.graph.nodes


def test_extern_call_recorded_not_edged():
    cg = graph_of("int main() { MPI_Barrier(); return 0; }")
    assert not cg.graph.has_edge("main", "MPI_Barrier")
    assert any(s.callee == "MPI_Barrier" and s.kind == "extern" for s in cg.extern_sites)


def test_indirect_call_recorded_not_edged():
    cg = graph_of("void f() { } int main() { funcptr p; p = &f; p(); return 0; }")
    assert len(cg.indirect_sites) == 1
    assert cg.indirect_sites[0].kind == "indirect"
    # No edge to the spelled variable name.
    assert "p" not in cg.graph.nodes


def test_address_taken_tracked():
    cg = graph_of("void f() { } int main() { funcptr p; p = &f; return 0; }")
    assert cg.address_taken() == {"f"}


def test_multiple_sites_on_one_edge():
    cg = graph_of("void f() { } int main() { f(); f(); return 0; }")
    assert len(cg.graph.edges["main", "f"]["sites"]) == 2


def test_callees_and_callers():
    cg = graph_of("void a() { } void b() { a(); } int main() { a(); b(); return 0; }")
    assert cg.callees_of("main") == ["a", "b"]
    assert cg.callers_of("a") == ["b", "main"]


def test_sites_in():
    cg = graph_of("void a() { } int main() { a(); MPI_Barrier(); return 0; }")
    assert len(cg.sites_in("main")) == 2


def test_paper_example_graph(paper_module):
    cg = build_call_graph(lower_module(paper_module))
    assert cg.callees_of("main") == ["foo"]
    assert len(cg.graph.edges["main", "foo"]["sites"]) == 2
