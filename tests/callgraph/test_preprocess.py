"""Call-graph preprocessing tests (Fig. 10)."""

import networkx as nx

from repro.callgraph import build_call_graph, preprocess_call_graph
from repro.frontend.parser import parse_source
from repro.ir import lower_module


def prep_of(src):
    cg = build_call_graph(lower_module(parse_source(src)))
    return cg, preprocess_call_graph(cg)


def test_self_recursion_removed():
    _, prep = prep_of("int f(int n) { if (n) f(n - 1); return n; } int main() { f(3); return 0; }")
    assert "f" in prep.recursive_functions
    assert not prep.pruned.has_edge("f", "f")
    assert ("f", "f") in prep.removed_edges


def test_mutual_recursion_removed():
    src = """
    int odd(int n) { if (n) return even(n - 1); return 0; }
    int even(int n) { if (n) return odd(n - 1); return 1; }
    int main() { even(4); return 0; }
    """
    _, prep = prep_of(src)
    assert prep.recursive_functions == {"odd", "even"}
    assert not prep.pruned.has_edge("odd", "even")
    assert not prep.pruned.has_edge("even", "odd")


def test_pruned_graph_is_acyclic():
    src = """
    int a(int n) { return b(n); }
    int b(int n) { if (n) return a(n - 1); return 0; }
    int main() { a(2); b(2); return 0; }
    """
    _, prep = prep_of(src)
    assert nx.is_directed_acyclic_graph(prep.pruned)


def test_topological_order_callee_first():
    src = "void c() { } void b() { c(); } void a() { b(); } int main() { a(); return 0; }"
    _, prep = prep_of(src)
    order = prep.order
    assert order.index("c") < order.index("b") < order.index("a") < order.index("main")


def test_pointer_targets_marked():
    src = "void f() { } int main() { funcptr p; p = &f; p(); return 0; }"
    _, prep = prep_of(src)
    assert prep.pointer_targets == {"f"}
    assert "f" in prep.never_fixed()


def test_non_recursive_untouched():
    src = "void f() { } int main() { f(); return 0; }"
    cg, prep = prep_of(src)
    assert prep.recursive_functions == set()
    assert prep.pruned.number_of_edges() == cg.graph.number_of_edges()


def test_never_fixed_combines_both():
    src = """
    int r(int n) { if (n) r(n - 1); return 0; }
    void t() { }
    int main() { funcptr p; p = &t; r(1); p(); return 0; }
    """
    _, prep = prep_of(src)
    assert prep.never_fixed() == {"r", "t"}


def test_order_contains_all_functions(paper_module):
    cg = build_call_graph(lower_module(paper_module))
    prep = preprocess_call_graph(cg)
    assert set(prep.order) == {"foo", "main"}
    assert prep.order.index("foo") < prep.order.index("main")
