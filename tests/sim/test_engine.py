"""Rendezvous-engine tests: collectives, p2p, rings, deadlock detection."""

import pytest

from repro.errors import SimulationError
from repro.frontend.parser import parse_source
from repro.sim import MachineConfig, Simulator
from repro.sim.noise import NoiseConfig


def quiet_machine(n_ranks, ranks_per_node=2):
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=ranks_per_node,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def run(src, n_ranks=4):
    return Simulator(parse_source(src), quiet_machine(n_ranks)).run()


def test_barrier_synchronizes_all_ranks():
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        compute_units(r * 1000);
        MPI_Barrier();
        return 0;
    }
    """
    result = run(src)
    # All ranks finish at (nearly) the same time after the barrier.
    times = result.finish_times()
    assert max(times) - min(times) < 1.0


def test_collective_count_matches_iterations():
    src = """
    int main() {
        int i;
        for (i = 0; i < 7; i = i + 1) MPI_Allreduce(8);
        return 0;
    }
    """
    result = run(src)
    assert result.mpi_matches == 7


def test_send_recv_pairing():
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r == 0) MPI_Send(1, 64);
        if (r == 1) MPI_Recv(0, 64);
        MPI_Barrier();
        return 0;
    }
    """
    result = run(src, n_ranks=2)
    assert result.mpi_matches == 2  # one p2p + one barrier


def test_sendrecv_pairwise():
    src = """
    int main() {
        int r; int peer;
        r = MPI_Comm_rank();
        if (r % 2 == 0) peer = r + 1;
        else peer = r - 1;
        MPI_Sendrecv(peer, 32);
        return 0;
    }
    """
    result = run(src, n_ranks=4)
    assert result.total_time > 0


def test_sendrecv_ring():
    src = """
    int main() {
        int r; int size; int peer;
        r = MPI_Comm_rank();
        size = MPI_Comm_size();
        peer = r + 1;
        if (peer >= size) peer = 0;
        MPI_Sendrecv(peer, 32);
        return 0;
    }
    """
    result = run(src, n_ranks=6)
    assert result.total_time > 0


def test_sendrecv_self_completes():
    src = """
    int main() {
        MPI_Sendrecv(MPI_Comm_rank(), 32);
        return 0;
    }
    """
    result = run(src, n_ranks=1)
    assert result.total_time > 0


def test_unmatched_send_deadlocks():
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r == 0) MPI_Send(1, 64);
        return 0;
    }
    """
    with pytest.raises(SimulationError, match="deadlock"):
        run(src, n_ranks=2)


def test_mismatched_collectives_deadlock():
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r == 0) MPI_Barrier();
        return 0;
    }
    """
    with pytest.raises(SimulationError, match="deadlock"):
        run(src, n_ranks=2)


def test_skew_propagates_through_collective():
    """The slowest rank determines collective completion."""
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r == 0) compute_units(50000);
        MPI_Barrier();
        return 0;
    }
    """
    result = run(src)
    assert min(result.finish_times()) > 50000 * 0.9


def test_deterministic_repeat_runs():
    src = """
    int main() {
        int i;
        for (i = 0; i < 5; i = i + 1) { compute_units(100); MPI_Allreduce(4); }
        return 0;
    }
    """
    module = parse_source(src)
    r1 = Simulator(module, quiet_machine(4)).run()
    r2 = Simulator(module, quiet_machine(4)).run()
    assert r1.total_time == r2.total_time
    assert r1.finish_times() == r2.finish_times()


def test_rank_results_populated():
    result = run("int main() { compute_units(10); MPI_Barrier(); return 0; }")
    assert len(result.ranks) == 4
    for r in result.ranks:
        assert r.total_work > 0
        assert r.finish_time > 0


def test_deadlock_error_reports_finished_ranks():
    """A rank exiting before a collective is the classic hang; the error
    must say which ranks already finished so the user can find it."""
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r != 2) MPI_Barrier();
        return 0;
    }
    """
    with pytest.raises(SimulationError) as excinfo:
        run(src, n_ranks=4)
    message = str(excinfo.value)
    assert "MPI deadlock" in message
    assert "3 rank(s) blocked" in message
    assert "1 rank(s) already finished (2)" in message
    assert "exiting before a collective" in message


def test_deadlock_error_without_finished_ranks():
    """No finished-rank clause when every rank is still blocked."""
    src = """
    int main() {
        int r;
        r = MPI_Comm_rank();
        if (r == 0) MPI_Barrier();
        if (r != 0) MPI_Allreduce(4);
        return 0;
    }
    """
    with pytest.raises(SimulationError) as excinfo:
        run(src, n_ranks=2)
    assert "already finished" not in str(excinfo.value)
