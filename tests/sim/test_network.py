"""Network cost-model tests."""

import pytest

from repro.sim.faults import NetworkDegradation
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel


def model(faults=(), **kwargs):
    machine = MachineConfig(n_ranks=8, ranks_per_node=4, **kwargs)
    return NetworkModel(machine=machine, faults=tuple(faults))


def test_p2p_hockney_model():
    net = model(net_alpha=5.0, net_beta=0.1)
    assert net.p2p(0.0, 100.0) == pytest.approx(5.0 + 10.0)


def test_p2p_zero_size_latency_only():
    net = model(net_alpha=5.0, net_beta=0.1)
    assert net.p2p(0.0, 0.0) == pytest.approx(5.0)


def test_degradation_stretches_transfers():
    net = model(faults=[NetworkDegradation(t0=100.0, t1=200.0, factor=0.25)])
    before = net.p2p(50.0, 64.0)
    during = net.p2p(150.0, 64.0)
    after = net.p2p(250.0, 64.0)
    assert during == pytest.approx(before * 4.0)
    assert after == pytest.approx(before)


def test_collective_scales_with_ranks():
    net = model()
    small = net.collective("allreduce", 0.0, 64.0, 4)
    large = net.collective("allreduce", 0.0, 64.0, 64)
    assert large > small


def test_alltoall_most_expensive_at_scale():
    net = model()
    n = 64
    alltoall = net.collective("alltoall", 0.0, 256.0, n)
    allreduce = net.collective("allreduce", 0.0, 256.0, n)
    barrier = net.collective("barrier", 0.0, 0.0, n)
    assert alltoall > allreduce > barrier


def test_barrier_size_independent():
    net = model()
    assert net.collective("barrier", 0.0, 0.0, 16) == net.collective("barrier", 0.0, 1e6, 16)


def test_unknown_collective_falls_back_to_base():
    net = model(net_alpha=5.0, net_beta=0.1)
    assert net.collective("exotic", 0.0, 10.0, 8) == pytest.approx(6.0)


def test_degradation_applies_to_collectives():
    net = model(faults=[NetworkDegradation(t0=0.0, t1=100.0, factor=0.5)])
    during = net.collective("alltoall", 50.0, 64.0, 16)
    after = net.collective("alltoall", 150.0, 64.0, 16)
    assert during == pytest.approx(after * 2.0)
