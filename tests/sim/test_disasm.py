"""Golden tests for the bytecode disassembler.

These listings pin the compiler's output — register allocation, charge
folding, compare/branch fusion and intrinsic lowering.  A diff here means
the compiler changed; update the golden only after the differential suite
(:mod:`tests.sim.test_bytecode_equiv`) confirms the new code is still
bit-identical to the AST tier.
"""

from __future__ import annotations

from repro.frontend import parse_source
from repro.sensors.extern import default_extern_registry
from repro.sim.bytecode import compile_module, disassemble, fusability_summary

_LOOP_SRC = """global int acc = 0;
int twice(int x) {
    return x + x;
}
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        acc = acc + twice(i);
    }
    MPI_Barrier();
    return 0;
}
"""

_LOOP_GOLDEN = """\
func twice  (locals=1 regs=2 insns=4)
  ; locals: r0=x
     0  ADD      1 0 0
     1  CHARGE   4
     2  RET      1
     3  RETK     0

func main  (locals=1 regs=7 insns=18)
  ; locals: r0=i
     0  MOVE     0 4   ; i
     1  MOVE     0 4
     2  CHARGE   2
     3  CHARGE   4
     4  JLT_F    0 5 14
     5  LOADG    1 0   ; acc
     6  CHARGE   6
     7  CALL     2 0 (0)   ; twice
     8  ADD      3 1 2
     9  STOREG   0 3   ; acc
    10  CHARGE   3
    11  ADD      0 0 6
    12  CHARGE   4
    13  JUMP     3
    14  CHARGE   4
    15  COLL     1 ('barrier', 'MPI_Barrier') -1   ; MPI_Barrier
    16  RET      4
    17  RETK     0"""

_CALLS_SRC = """int main() {
    float x;
    x = sqrt(2.0);
    printf(x);
    return 0;
}
"""

_CALLS_GOLDEN = """\
func main  (locals=1 regs=4 insns=6)
  ; locals: r0=x
     0  MOVE     0 2   ; x
     1  MATHOP   0 <fn <lambda>> (3)   ; sqrt
     2  CHARGE   11
     3  IOOP     1 'printf' -1   ; printf
     4  RET      2
     5  RETK     0"""


def _compile(src: str):
    return compile_module(parse_source(src), default_extern_registry())


def test_disassemble_loop_golden():
    assert disassemble(_compile(_LOOP_SRC)) == _LOOP_GOLDEN


def test_disassemble_calls_golden():
    assert disassemble(_compile(_CALLS_SRC)) == _CALLS_GOLDEN


def test_disassembly_is_deterministic():
    a = disassemble(_compile(_LOOP_SRC))
    b = disassemble(_compile(_LOOP_SRC))
    assert a == b


def test_fuse_annotations_opt_in():
    """``fuse=True`` annotates every instruction; the default is untouched."""
    program = _compile(_LOOP_SRC)
    plain = disassemble(program)
    annotated = disassemble(program, fuse=True)
    assert plain == _LOOP_GOLDEN  # opting in never changes the default
    assert "; [vector]" in annotated
    assert "; [branch]" in annotated
    assert "convergence point (MPI rendezvous)" in annotated  # the COLL
    assert "; fusability:" in annotated


def test_fusability_summary_counts_every_instruction():
    program = _compile(_LOOP_SRC)
    counts = fusability_summary(program)
    assert "?" not in counts  # every emitted opcode has a fuse class
    assert counts["rendezvous"] == 1  # the MPI_Barrier
    assert sum(counts.values()) == sum(len(fc.code) for fc in program.funcs)
