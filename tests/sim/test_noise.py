"""Noise-model tests."""

import numpy as np

from repro.sim.noise import NodeNoise, NoiseConfig


def test_deterministic_given_seed():
    a = NodeNoise(NoiseConfig(), seed=1, node_id=0)
    b = NodeNoise(NoiseConfig(), seed=1, node_id=0)
    for t in [0.0, 123.4, 9999.0]:
        assert a.speed_multiplier(t) == b.speed_multiplier(t)


def test_different_nodes_differ():
    a = NodeNoise(NoiseConfig(), seed=1, node_id=0)
    b = NodeNoise(NoiseConfig(), seed=1, node_id=1)
    samples_a = [a.speed_multiplier(t) for t in np.arange(0, 5000, 73.0)]
    samples_b = [b.speed_multiplier(t) for t in np.arange(0, 5000, 73.0)]
    assert samples_a != samples_b


def test_multiplier_never_speeds_up():
    noise = NodeNoise(NoiseConfig(jitter_sigma=0.3), seed=3, node_id=0)
    for t in np.arange(0, 20000, 111.0):
        assert 0.0 < noise.speed_multiplier(t) <= 1.0


def test_zero_sigma_disables_jitter():
    noise = NodeNoise(
        NoiseConfig(jitter_sigma=0.0, spike_rate_per_ms=0.0), seed=3, node_id=0
    )
    assert noise.speed_multiplier(42.0) == 1.0


def test_jitter_constant_within_slice():
    cfg = NoiseConfig(jitter_slice_us=100.0, spike_rate_per_ms=0.0)
    noise = NodeNoise(cfg, seed=5, node_id=0)
    assert noise.speed_multiplier(10.0) == noise.speed_multiplier(90.0)
    # Different slices resample.
    samples = {noise.speed_multiplier(100.0 * k + 5) for k in range(50)}
    assert len(samples) > 1


def test_interrupt_loss_counts_periods():
    cfg = NoiseConfig(interrupt_period_us=1000.0, interrupt_duration_us=10.0)
    noise = NodeNoise(cfg, seed=1, node_id=0)
    assert noise.interrupt_loss(0.0, 3500.0) == 30.0
    assert noise.interrupt_loss(900.0, 1100.0) == 10.0
    assert noise.interrupt_loss(100.0, 900.0) == 0.0


def test_interrupt_disabled():
    cfg = NoiseConfig(interrupt_period_us=0.0)
    noise = NodeNoise(cfg, seed=1, node_id=0)
    assert noise.interrupt_loss(0.0, 1e6) == 0.0
