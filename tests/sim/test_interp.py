"""Interpreter semantics tests: the mini language must compute correctly.

Programs communicate results through IO hooks (printf is not value-bearing)
— instead we run single-rank simulations and inspect global state through a
small harness that exposes the interpreter after the run.
"""

import pytest

from repro.errors import InterpError, SimulationError
from repro.frontend.parser import parse_source
from repro.sim import MachineConfig, Simulator
from repro.sim.hooks import NullHooks
from repro.sim.interp import RankInterp
from repro.sim.noise import NoiseConfig


def quiet_machine(n_ranks=1, ranks_per_node=1):
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=ranks_per_node,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def run_single(src):
    """Run one rank to completion; return the interpreter for inspection."""
    module = parse_source(src)
    interp = RankInterp(
        module=module,
        rank=0,
        n_ranks=1,
        machine=quiet_machine(),
        faults=(),
        hooks=NullHooks(),
    )
    for _ in interp.run():
        raise AssertionError("single-rank program must not block on MPI")
    return interp


def global_after(src, name):
    return run_single(src).globals[name]


class TestArithmetic:
    def test_integer_arithmetic(self):
        assert global_after("global int g; int main() { g = 2 + 3 * 4; return 0; }", "g") == 14

    def test_integer_division_truncates_toward_zero(self):
        assert global_after("global int g; int main() { g = 7 / 2; return 0; }", "g") == 3
        assert global_after("global int g; int main() { g = -7 / 2; return 0; }", "g") == -3

    def test_division_by_zero_yields_zero(self):
        assert global_after("global int g; int main() { g = 5 / 0; return 0; }", "g") == 0

    def test_modulo(self):
        assert global_after("global int g; int main() { g = 17 % 5; return 0; }", "g") == 2

    def test_float_arithmetic(self):
        g = global_after("global float g; int main() { g = 1.5 * 4.0; return 0; }", "g")
        assert g == pytest.approx(6.0)

    def test_comparisons_yield_zero_one(self):
        assert global_after("global int g; int main() { g = 3 < 5; return 0; }", "g") == 1
        assert global_after("global int g; int main() { g = 5 < 3; return 0; }", "g") == 0

    def test_logical_ops(self):
        assert global_after("global int g; int main() { g = 1 && 0; return 0; }", "g") == 0
        assert global_after("global int g; int main() { g = 1 || 0; return 0; }", "g") == 1

    def test_unary_minus_and_not(self):
        assert global_after("global int g; int main() { g = -(3); return 0; }", "g") == -3
        assert global_after("global int g; int main() { g = !0; return 0; }", "g") == 1


class TestControlFlow:
    def test_if_else(self):
        src = "global int g; int main() { if (2 > 1) g = 10; else g = 20; return 0; }"
        assert global_after(src, "g") == 10

    def test_for_loop_sum(self):
        src = """
        global int g;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) g = g + i;
            return 0;
        }
        """
        assert global_after(src, "g") == 45

    def test_while_loop(self):
        src = "global int g; int main() { int x = 5; while (x > 0) { g = g + 2; x = x - 1; } return 0; }"
        assert global_after(src, "g") == 10

    def test_break(self):
        src = """
        global int g;
        int main() {
            int i;
            for (i = 0; i < 100; i = i + 1) { if (i == 3) break; g = g + 1; }
            return 0;
        }
        """
        assert global_after(src, "g") == 3

    def test_continue(self):
        src = """
        global int g;
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) { if (i % 2) continue; g = g + 1; }
            return 0;
        }
        """
        assert global_after(src, "g") == 5

    def test_nested_break_only_inner(self):
        src = """
        global int g;
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 100; j = j + 1) { if (j == 2) break; }
                g = g + 1;
            }
            return 0;
        }
        """
        assert global_after(src, "g") == 3


class TestFunctions:
    def test_call_and_return(self):
        src = """
        global int g;
        int add(int a, int b) { return a + b; }
        int main() { g = add(3, 4); return 0; }
        """
        assert global_after(src, "g") == 7

    def test_recursion(self):
        src = """
        global int g;
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main() { g = fib(10); return 0; }
        """
        assert global_after(src, "g") == 55

    def test_void_function_returns_zero(self):
        src = """
        global int g;
        void noop() { }
        int main() { g = noop() + 5; return 0; }
        """
        assert global_after(src, "g") == 5

    def test_locals_are_per_frame(self):
        src = """
        global int g;
        int f(int x) { int t = x * 2; return t; }
        int main() { int t = 100; g = f(3) + t; return 0; }
        """
        assert global_after(src, "g") == 106

    def test_funcptr_dispatch(self):
        src = """
        global int g;
        int ten() { return 10; }
        int main() { funcptr p; p = &ten; g = p(); return 0; }
        """
        assert global_after(src, "g") == 10

    def test_unknown_function_raises(self):
        with pytest.raises(InterpError, match="unknown function"):
            run_single("int main() { nosuch(); return 0; }")


class TestArraysAndGlobals:
    def test_array_read_write(self):
        src = """
        global int a[4];
        global int g;
        int main() { a[2] = 7; g = a[2]; return 0; }
        """
        assert global_after(src, "g") == 7

    def test_array_index_wraps(self):
        src = """
        global int a[4];
        global int g;
        int main() { a[1] = 9; g = a[5]; return 0; }
        """
        assert global_after(src, "g") == 9

    def test_local_array(self):
        src = """
        global int g;
        int main() { int buf[3]; buf[0] = 4; g = buf[0]; return 0; }
        """
        assert global_after(src, "g") == 4

    def test_global_initializer(self):
        assert global_after("global int g = 13; int main() { return 0; }", "g") == 13

    def test_globals_shared_with_callee(self):
        src = """
        global int g;
        void bump() { g = g + 1; }
        int main() { bump(); bump(); return 0; }
        """
        assert global_after(src, "g") == 2


class TestIntrinsics:
    def test_math_functions(self):
        assert global_after("global float g; int main() { g = sqrt(16.0); return 0; }", "g") == pytest.approx(4.0)
        assert global_after("global float g; int main() { g = fabs(-2.5); return 0; }", "g") == pytest.approx(2.5)
        assert global_after("global float g; int main() { g = max(2.0, 5.0); return 0; }", "g") == pytest.approx(5.0)

    def test_rank_and_size_single(self):
        src = "global int r; global int s; int main() { r = MPI_Comm_rank(); s = MPI_Comm_size(); return 0; }"
        interp = run_single(src)
        assert interp.globals["r"] == 0
        assert interp.globals["s"] == 1

    def test_compute_units_charges_work(self):
        interp = run_single("int main() { compute_units(500); return 0; }")
        assert interp.total_work >= 500

    def test_rand_is_deterministic_per_rank(self):
        a = run_single("global int g; int main() { g = rand(); return 0; }").globals["g"]
        b = run_single("global int g; int main() { g = rand(); return 0; }").globals["g"]
        assert a == b

    def test_clock_advances_with_work(self):
        src = "global int g; int main() { compute_units(1000); g = clock(); return 0; }"
        assert global_after(src, "g") >= 1000


class TestTimeAccounting:
    def test_more_work_more_time(self):
        t1 = run_single("int main() { compute_units(100); return 0; }").clock.now
        t2 = run_single("int main() { compute_units(10000); return 0; }").clock.now
        assert t2 > t1

    def test_interpreted_statements_cost_work(self):
        interp = run_single(
            "global int g; int main() { int i; for (i = 0; i < 100; i = i + 1) g = g + 1; return 0; }"
        )
        assert interp.total_work > 100  # loop bookkeeping costs too

    def test_io_advances_wall_time(self):
        fast = run_single("int main() { return 0; }").clock.now
        io = run_single("int main() { fwrite(1000); return 0; }").clock.now
        assert io > fast


class TestRankDivergence:
    def test_ranks_see_own_rank(self):
        src = """
        global int g;
        int main() {
            g = MPI_Comm_rank() * 10;
            MPI_Barrier();
            return 0;
        }
        """
        module = parse_source(src)
        result = Simulator(module, quiet_machine(n_ranks=4, ranks_per_node=2)).run()
        assert result.n_ranks == 4
