"""Fault-injection model tests."""

from repro.sim.faults import (
    BadNode,
    CpuContention,
    NetworkDegradation,
    SlowMemoryNode,
    cpu_factor_at,
    fault_boundaries,
    mem_factor_at,
    net_factor_at,
)


def test_bad_node_affects_only_its_node():
    faults = (BadNode(node_id=1, cpu_factor=0.5, mem_factor=0.5),)
    assert cpu_factor_at(faults, 1, 100.0) == 0.5
    assert cpu_factor_at(faults, 0, 100.0) == 1.0


def test_slow_memory_node_leaves_cpu():
    faults = (SlowMemoryNode(node_id=2, mem_factor=0.55),)
    assert cpu_factor_at(faults, 2, 0.0) == 1.0
    assert mem_factor_at(faults, 2, 0.0) == 0.55


def test_contention_window():
    faults = (CpuContention(node_ids=(0, 1), t0=100.0, t1=200.0, cpu_factor=0.4),)
    assert cpu_factor_at(faults, 0, 50.0) == 1.0
    assert cpu_factor_at(faults, 0, 150.0) == 0.4
    assert cpu_factor_at(faults, 0, 200.0) == 1.0
    assert cpu_factor_at(faults, 2, 150.0) == 1.0


def test_contention_touches_memory_too():
    faults = (CpuContention(node_ids=(0,), t0=0.0, t1=10.0, mem_factor=0.8),)
    assert mem_factor_at(faults, 0, 5.0) == 0.8


def test_network_degradation_window():
    faults = (NetworkDegradation(t0=100.0, t1=300.0, factor=0.25),)
    assert net_factor_at(faults, 50.0) == 1.0
    assert net_factor_at(faults, 200.0) == 0.25
    assert net_factor_at(faults, 300.0) == 1.0


def test_factors_compose_multiplicatively():
    faults = (
        BadNode(node_id=0, cpu_factor=0.5),
        CpuContention(node_ids=(0,), t0=0.0, t1=1e9, cpu_factor=0.5),
    )
    assert cpu_factor_at(faults, 0, 10.0) == 0.25


def test_fault_boundaries_sorted_unique():
    faults = (
        NetworkDegradation(t0=100.0, t1=300.0, factor=0.5),
        CpuContention(node_ids=(0,), t0=50.0, t1=300.0),
        BadNode(node_id=0),  # t0=0, t1=inf: no boundaries
    )
    assert fault_boundaries(faults) == [50.0, 100.0, 300.0]


def test_no_faults_no_boundaries():
    assert fault_boundaries(()) == []
