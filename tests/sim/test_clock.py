"""Virtual-clock tests: work-to-time integration."""

import pytest

from repro.sim.clock import RankClock
from repro.sim.faults import BadNode, CpuContention, SlowMemoryNode
from repro.sim.machine import MachineConfig, NodeConfig
from repro.sim.noise import NodeNoise, NoiseConfig


def make_clock(faults=(), cpu_speed=1.0, mem_perf=1.0, mem_fraction=0.4, noise=None):
    noise_cfg = noise or NoiseConfig(
        jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0
    )
    machine = MachineConfig(
        n_ranks=1, ranks_per_node=1, mem_fraction=mem_fraction, noise=noise_cfg
    )
    node = NodeConfig(node_id=0, cpu_speed=cpu_speed, mem_perf=mem_perf)
    return RankClock(
        rank=0,
        node=node,
        noise=NodeNoise(noise_cfg, seed=1, node_id=0),
        machine=machine,
        faults=tuple(faults),
    )


def test_noise_free_unit_speed():
    clock = make_clock()
    start, end = clock.advance_compute(100.0)
    assert start == 0.0
    assert end == pytest.approx(100.0)


def test_zero_work_no_advance():
    clock = make_clock()
    start, end = clock.advance_compute(0.0)
    assert start == end == 0.0


def test_faster_cpu_shorter_time():
    slow = make_clock(cpu_speed=1.0)
    fast = make_clock(cpu_speed=2.0)
    _, t_slow = slow.advance_compute(100.0)
    _, t_fast = fast.advance_compute(100.0)
    assert t_fast == pytest.approx(t_slow / 2.0)


def test_slow_memory_stretches_mem_fraction():
    healthy = make_clock(mem_perf=1.0, mem_fraction=0.5)
    degraded = make_clock(mem_perf=0.5, mem_fraction=0.5)
    _, t_h = healthy.advance_compute(100.0)
    _, t_d = degraded.advance_compute(100.0)
    # time = work * (0.5/1 + 0.5/(1*mem)); mem=0.5 doubles the memory part.
    assert t_d == pytest.approx(t_h * 1.5)


def test_mem_fraction_zero_ignores_memory():
    degraded = make_clock(mem_perf=0.25, mem_fraction=0.0)
    _, t = degraded.advance_compute(100.0)
    assert t == pytest.approx(100.0)


def test_bad_node_fault_slows():
    clock = make_clock(faults=[BadNode(node_id=0, cpu_factor=0.5, mem_factor=1.0)], mem_fraction=0.0)
    _, t = clock.advance_compute(100.0)
    assert t == pytest.approx(200.0)


def test_contention_window_integration():
    """Work spanning a fault boundary integrates piecewise."""
    clock = make_clock(
        faults=[CpuContention(node_ids=(0,), t0=50.0, t1=1e9, cpu_factor=0.5, mem_factor=1.0)],
        mem_fraction=0.0,
    )
    _, t = clock.advance_compute(100.0)
    # 50 units in the first 50us, remaining 50 units at half speed = 100us.
    assert t == pytest.approx(150.0)


def test_wall_advance():
    clock = make_clock()
    clock.advance_compute(10.0)
    start, end = clock.advance_wall(25.0)
    assert end - start == 25.0


def test_wait_until_moves_forward_only():
    clock = make_clock()
    clock.wait_until(100.0)
    assert clock.now == 100.0
    clock.wait_until(50.0)
    assert clock.now == 100.0


def test_interrupt_loss_added():
    noise = NoiseConfig(
        jitter_sigma=0.0,
        spike_rate_per_ms=0.0,
        interrupt_period_us=50.0,
        interrupt_duration_us=5.0,
    )
    clock = make_clock(noise=noise)
    _, t = clock.advance_compute(100.0)
    # 100us of work crosses interrupts at 50us and 100us -> +10us.
    assert t == pytest.approx(110.0)


def test_determinism_across_instances():
    a = make_clock(noise=NoiseConfig())
    b = make_clock(noise=NoiseConfig())
    assert a.advance_compute(500.0) == b.advance_compute(500.0)
