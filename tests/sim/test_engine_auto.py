"""``engine="auto"``: rank-count-based interpreter tier selection.

BENCH_interp.json measured lockstep as a net *slowdown* at 8 ranks
(CG 0.95x, LULESH 0.56x vs bytecode) and a win from 32 ranks up, so the
crossover is pinned between those points at 16.  These tests pin the
constant, the mapping, and — since all tiers are bit-identical — that
auto-selection never changes results, only which VM produced them.
"""

from __future__ import annotations

import pytest

from repro.frontend.parser import parse_source
from repro.sim import (
    AUTO_LOCKSTEP_MIN_RANKS,
    MachineConfig,
    Simulator,
    resolve_engine,
)

SRC = """
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) { compute_units(50 + i); MPI_Allreduce(8); }
    return 0;
}
"""


def test_crossover_is_pinned_at_16_ranks():
    # The measured points bracket 16: 8 ranks is a slowdown, 32 a win.
    assert AUTO_LOCKSTEP_MIN_RANKS == 16
    assert resolve_engine("auto", 8) == "bytecode"
    assert resolve_engine("auto", 15) == "bytecode"
    assert resolve_engine("auto", 16) == "lockstep"
    assert resolve_engine("auto", 32) == "lockstep"


def test_concrete_tiers_pass_through_unchanged():
    for engine in ("bytecode", "ast", "lockstep"):
        for n_ranks in (1, 8, 64):
            assert resolve_engine(engine, n_ranks) == engine


def test_simulator_resolves_auto_by_rank_count():
    module = parse_source(SRC)
    below = Simulator(module, MachineConfig(n_ranks=4), engine="auto")
    at = Simulator(
        module, MachineConfig(n_ranks=AUTO_LOCKSTEP_MIN_RANKS), engine="auto"
    )
    assert below.engine == "bytecode"
    assert at.engine == "lockstep"


@pytest.mark.parametrize("n_ranks", [4, AUTO_LOCKSTEP_MIN_RANKS])
def test_auto_results_match_explicit_tiers(n_ranks):
    module = parse_source(SRC)
    machine = MachineConfig(n_ranks=n_ranks, seed=5)
    auto = Simulator(module, machine, engine="auto").run()
    explicit = Simulator(
        module, machine, engine=resolve_engine("auto", n_ranks)
    ).run()
    assert auto.total_time == explicit.total_time
    assert auto.finish_times() == explicit.finish_times()
    assert auto.mpi_matches == explicit.mpi_matches


def test_unknown_engine_rejected():
    module = parse_source(SRC)
    with pytest.raises(ValueError, match="unknown engine"):
        Simulator(module, MachineConfig(n_ranks=4), engine="vectorized")
