"""Differential tests: the lockstep SIMD-over-ranks tier vs the bytecode VM.

The lockstep engine fetches each instruction once and applies it to every
rank's lane at once; diverging rank subsets are masked, drained onto the
per-rank bytecode interpreters, and re-fused at the next convergence point.
None of that machinery may be observable: every workload analogue must
produce bit-identical results and hook streams under both engines, and the
hypothesis suite below *forces* arbitrary rank subsets to diverge mid-run
and checks both the outputs and the divergence accounting
(``sim.lockstep.diverged`` must name exactly the injected subset).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import compile_and_instrument
from repro.frontend import parse_source
from repro.obs import Obs
from repro.sim.engine import Simulator
from repro.sim.faults import BadNode, IoDegradation, NetworkDegradation
from repro.sim.hooks import RuntimeHooks
from repro.sim.machine import MachineConfig
from repro.workloads import all_workloads

N_RANKS = 4

#: one fault scenario per workload — IO-heavy and network-heavy analogues
#: get the matching degradation, everything else a bad node
_FAULTS = {
    "FT": (NetworkDegradation(t0=0.0, t1=float("inf"), factor=0.4),),
    "CHKPT": (IoDegradation(t0=0.0, t1=float("inf"), factor=0.4),),
}
_DEFAULT_FAULT = (BadNode(node_id=0, cpu_factor=0.6, mem_factor=0.7),)


class _Recorder(RuntimeHooks):
    """Captures every observable event as a comparable tuple stream."""

    def __init__(self, functions: bool = False) -> None:
        self.events: list[tuple] = []
        self.wants_function_events = functions

    def on_sensor_record(self, rank, sensor_id, t_start, t_end, pmu) -> None:
        self.events.append(
            ("sensor", rank, sensor_id, t_start, t_end,
             pmu.instructions, pmu.cache_miss_rate)
        )

    def on_mpi_end(self, rank, op, t_begin, t_end, size) -> None:
        self.events.append(("mpi", rank, op, t_begin, t_end, size))

    def on_io(self, rank, op, t_begin, t_end, size) -> None:
        self.events.append(("io", rank, op, t_begin, t_end, size))

    def on_func_enter(self, rank, name, t) -> None:
        self.events.append(("enter", rank, name, t))

    def on_func_exit(self, rank, name, t) -> None:
        self.events.append(("exit", rank, name, t))

    def on_program_end(self, rank, t) -> None:
        self.events.append(("end", rank, t))


def _names() -> list[str]:
    return sorted(all_workloads())


@pytest.mark.parametrize("name", _names())
def test_uninstrumented_identical(name):
    wl = all_workloads()[name]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=N_RANKS, ranks_per_node=2)
    r_bc = Simulator(module, machine, engine="bytecode").run()
    r_ls = Simulator(module, machine, engine="lockstep").run()
    assert r_bc == r_ls


@pytest.mark.parametrize("name", _names())
def test_instrumented_with_fault_identical(name):
    wl = all_workloads()[name]
    static = compile_and_instrument(wl.source())
    machine = wl.machine(n_ranks=N_RANKS, ranks_per_node=2)
    faults = _FAULTS.get(name, _DEFAULT_FAULT)
    streams = {}
    results = {}
    for engine in ("bytecode", "lockstep"):
        rec = _Recorder()
        results[engine] = Simulator(
            static.program.module,
            machine,
            faults=faults,
            sensors=static.program.sensors,
            engine=engine,
        ).run(rec)
        streams[engine] = rec.events
    assert results["bytecode"] == results["lockstep"]
    assert streams["bytecode"] == streams["lockstep"]
    assert streams["lockstep"]


def test_function_event_stream_identical():
    """Tracer-grade enter/exit events match too (FWQ is small enough)."""
    wl = all_workloads()["FWQ"]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=2, ranks_per_node=2)
    streams = {}
    for engine in ("bytecode", "lockstep"):
        rec = _Recorder(functions=True)
        Simulator(module, machine, engine=engine).run(rec)
        streams[engine] = rec.events
    assert streams["bytecode"] == streams["lockstep"]
    assert any(e[0] == "enter" for e in streams["bytecode"])


def test_divergence_machinery_exercised():
    """The equivalence above must not be vacuous: known workloads hit every
    lifecycle path (masked divergence on AMG; full drain + refusion on LU)."""
    wl = all_workloads()["AMG"]
    sim = Simulator(
        parse_source(wl.source()), wl.machine(n_ranks=N_RANKS, ranks_per_node=2),
        engine="lockstep",
    )
    sim.run()
    amg = sim._lockstep_runner.stats
    assert amg["diverge"] > 0 and amg["drain"] == 0

    wl = all_workloads()["LU"]
    sim = Simulator(
        parse_source(wl.source()), wl.machine(n_ranks=N_RANKS, ranks_per_node=2),
        engine="lockstep",
    )
    sim.run()
    lu = sim._lockstep_runner.stats
    assert lu["fuse"] > 0 and lu["diverge"] > 0 and lu["drain"] > 0


def test_lockstep_obs_counters_match_stats():
    """``sim.lockstep.*`` counters mirror the runner's cumulative stats."""
    wl = all_workloads()["LU"]
    obs = Obs.create()
    sim = Simulator(
        parse_source(wl.source()), wl.machine(n_ranks=N_RANKS, ranks_per_node=2),
        engine="lockstep", obs=obs,
    )
    sim.run()
    stats = sim._lockstep_runner.stats
    for key in ("fuse", "diverge", "drain"):
        assert obs.metrics.counter(f"sim.lockstep.{key}").value == stats[key]
    assert (
        obs.metrics.counter("sim.lockstep.diverged").value
        == len(sim._lockstep_runner.diverged_ranks)
    )


# -- seeded-fault divergence property ---------------------------------------

_DIV_RANKS = 8


def _divergence_program(marked: frozenset[int]) -> str:
    """A program where exactly ``marked`` takes a data-dependent detour.

    Marked ranks burn extra compute and post a self-sendrecv inside the
    branch; the sendrecv is an MPI rendezvous under a divergent mask, which
    forces the lockstep tier to drain the whole batch onto scalar
    interpreters.  The allreduce after the branch is the convergence point
    where the batch re-fuses.
    """
    marks = "\n    ".join(f"MARK[{r}] = 1;" for r in sorted(marked))
    return f"""
global int MARK[{_DIV_RANKS}];

int main() {{
    int r; int i;
    r = MPI_Comm_rank();
    {marks if marks else "MARK[0] = 0;"}
    for (i = 0; i < 2; i = i + 1) {{
        compute_units(20);
        if (MARK[r] == 1) {{
            compute_units(7);
            MPI_Sendrecv(r, 8);
        }}
        MPI_Allreduce(4);
    }}
    return 0;
}}
"""


@given(
    # Strict minorities only: the lockstep tier attributes divergence to the
    # smaller side of a split, so |S| <= 3 of 8 makes the accounting exact.
    marked=st.frozensets(
        st.integers(min_value=0, max_value=_DIV_RANKS - 1), max_size=3
    ),
    with_fault=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_injected_divergence_bit_identical(marked, with_fault):
    source = _divergence_program(marked)
    module = parse_source(source)
    machine = MachineConfig(n_ranks=_DIV_RANKS, ranks_per_node=4)
    faults = _DEFAULT_FAULT if with_fault else ()

    rec_bc = _Recorder()
    r_bc = Simulator(module, machine, faults=faults, engine="bytecode").run(rec_bc)

    obs = Obs.create()
    rec_ls = _Recorder()
    sim = Simulator(module, machine, faults=faults, engine="lockstep", obs=obs)
    r_ls = sim.run(rec_ls)

    assert r_bc == r_ls
    assert rec_bc.events == rec_ls.events

    runner = sim._lockstep_runner
    assert runner.diverged_ranks == set(marked)
    assert obs.metrics.counter("sim.lockstep.diverged").value == len(marked)
    if marked:
        # every injected divergence drains the batch and later re-fuses it
        assert runner.stats["diverge"] > 0
        assert runner.stats["drain"] > 0
        assert runner.stats["fuse"] > 0
    else:
        assert runner.stats == {
                "fuse": 0, "diverge": 0, "drain": 0, "governor_drain": 0
            }
