"""Property tests: vectorized noise draws == sequential per-rank draws.

The lockstep tier advances many rank clocks through
:meth:`NodeNoise.speed_multipliers` at once; bit-identity with the
per-rank engines requires the batch helper to return *exactly* what the
scalar :meth:`NodeNoise.speed_multiplier` returns for each element, in any
query order, warm or cold cache.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import noise as noise_mod
from repro.sim.noise import NodeNoise, NoiseConfig

_TIMES = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=5e6, allow_nan=False),
        # exact slice/chunk boundaries, where int() truncation must agree
        st.integers(min_value=0, max_value=100_000).map(lambda k: k * 50.0),
        st.integers(min_value=0, max_value=5_000).map(lambda m: m * 1000.0),
    ),
    min_size=1,
    max_size=64,
)


def _noise(seed: int = 7, node_id: int = 0, **overrides) -> NodeNoise:
    return NodeNoise(NoiseConfig(**overrides), seed, node_id)


@given(times=_TIMES, seed=st.integers(min_value=0, max_value=2**31), node=st.integers(min_value=0, max_value=5))
@settings(max_examples=150, deadline=None)
def test_batch_equals_sequential_scalar(times, seed, node):
    nn = _noise(seed, node)
    arr = np.array(times, dtype=np.float64)
    batch = nn.speed_multipliers(arr)
    scalar = np.array([nn.speed_multiplier(t) for t in times], dtype=np.float64)
    assert np.array_equal(batch, scalar)


@given(times=_TIMES)
@settings(max_examples=50, deadline=None)
def test_batch_matches_cold_scalar(times):
    """Scalar-first vs vector-first cache population gives identical draws."""
    nn = _noise(seed=123, node_id=2)
    noise_mod._JITTER_CACHE.clear()
    noise_mod._SPIKE_CACHE.clear()
    scalar = [nn.speed_multiplier(t) for t in times]
    noise_mod._JITTER_CACHE.clear()
    noise_mod._SPIKE_CACHE.clear()
    batch = nn.speed_multipliers(np.array(times, dtype=np.float64))
    assert list(batch) == scalar


@given(
    starts=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=32),
    deltas=st.lists(st.floats(min_value=-10.0, max_value=1e5, allow_nan=False), min_size=1, max_size=32),
)
@settings(max_examples=100, deadline=None)
def test_interrupt_losses_equal_scalar(starts, deltas):
    n = min(len(starts), len(deltas))
    start = np.array(starts[:n], dtype=np.float64)
    end = start + np.array(deltas[:n], dtype=np.float64)
    nn = _noise(seed=3)
    batch = nn.interrupt_losses(start, end)
    scalar = [nn.interrupt_loss(s, e) for s, e in zip(start, end)]
    assert list(batch) == scalar


def test_draws_shared_across_colocated_ranks():
    """Two NodeNoise instances for one node serve identical multipliers."""
    a = _noise(seed=9, node_id=1)
    b = _noise(seed=9, node_id=1)
    times = np.linspace(0.0, 250_000.0, 101)
    assert np.array_equal(a.speed_multipliers(times), b.speed_multipliers(times))


def test_multipliers_bounded():
    nn = _noise(seed=5)
    times = np.linspace(0.0, 2e6, 4001)
    mult = nn.speed_multipliers(times)
    assert np.all(mult > 0.0) and np.all(mult <= 1.0)
    # jitter must actually vary (sigma > 0) and spikes occasionally fire
    assert len(np.unique(mult)) > 100


def test_zero_noise_is_unity():
    nn = _noise(seed=5, jitter_sigma=0.0, spike_rate_per_ms=0.0, interrupt_period_us=0.0)
    times = np.linspace(0.0, 1e5, 64)
    assert np.all(nn.speed_multipliers(times) == 1.0)
    assert nn.speed_multiplier(12345.6) == 1.0
    assert np.all(nn.interrupt_losses(times, times + 100.0) == 0.0)
