"""Interpreter edge cases beyond the core semantics tests."""

import pytest

from repro.errors import InterpError
from repro.frontend.parser import parse_source
from repro.sim import IoDegradation, MachineConfig, Simulator
from repro.sim.hooks import NullHooks, RawRecorder, TeeHooks
from repro.sim.interp import RankInterp
from repro.sim.noise import NoiseConfig


def quiet_machine(n_ranks=1, ranks_per_node=1):
    return MachineConfig(
        n_ranks=n_ranks,
        ranks_per_node=ranks_per_node,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


def run_single(src):
    interp = RankInterp(
        module=parse_source(src),
        rank=0,
        n_ranks=1,
        machine=quiet_machine(),
        faults=(),
        hooks=NullHooks(),
    )
    for _ in interp.run():
        raise AssertionError("unexpected MPI block")
    return interp


def test_funcptr_through_global():
    src = """
    global funcptr handler;
    global int g;
    int five() { return 5; }
    int main() { handler = &five; g = handler(); return 0; }
    """
    assert run_single(src).globals["g"] == 5


def test_funcptr_reassignment():
    src = """
    global int g;
    int a() { return 1; }
    int b() { return 2; }
    int main() {
        funcptr p;
        p = &a;
        g = p();
        p = &b;
        g = g * 10 + p();
        return 0;
    }
    """
    assert run_single(src).globals["g"] == 12


def test_missing_argument_defaults_zero():
    src = """
    global int g;
    int f(int x, int y) { return x + y; }
    int main() { g = f(7); return 0; }
    """
    assert run_single(src).globals["g"] == 7


def test_extra_arguments_ignored():
    src = """
    global int g;
    int f(int x) { return x; }
    int main() { g = f(3, 99, 100); return 0; }
    """
    assert run_single(src).globals["g"] == 3


def test_deep_recursion_works():
    # Each simulated frame costs several Python frames through the
    # yield-from chain, so keep the depth moderate.
    src = """
    global int g;
    int down(int n) { if (n == 0) return 0; return 1 + down(n - 1); }
    int main() { g = down(80); return 0; }
    """
    assert run_single(src).globals["g"] == 80


def test_probe_mismatch_raises():
    src = "int main() { vs_tock(1); return 0; }"
    with pytest.raises(InterpError, match="without matching"):
        run_single(src)


def test_missing_entry_function():
    from repro.errors import InterpError

    interp = RankInterp(
        module=parse_source("void helper() { }"),
        rank=0,
        n_ranks=1,
        machine=quiet_machine(),
        faults=(),
        hooks=NullHooks(),
    )
    with pytest.raises(InterpError, match="no entry function"):
        for _ in interp.run():
            pass


def test_custom_entry_function():
    src = """
    global int g;
    int alt_main() { g = 9; return 0; }
    int main() { g = 1; return 0; }
    """
    module = parse_source(src)
    result = Simulator(module, quiet_machine(), entry="alt_main").run()
    assert result.total_time >= 0


def test_string_arguments_pass_through():
    interp = run_single('int main() { printf("hello %d"); return 0; }')
    assert interp.clock.now > 0  # IO op advanced time


def test_tee_hooks_order_and_fanout():
    rec1, rec2 = RawRecorder(), RawRecorder()
    tee = TeeHooks(rec1, None, rec2)
    assert len(tee.hooks) == 2
    src = """
    void q() { compute_units(5); }
    int main() {
        int i;
        for (i = 0; i < 3; i = i + 1) q();
        return 0;
    }
    """
    from repro.api import compile_and_instrument

    static = compile_and_instrument(src)
    Simulator(static.program.module, quiet_machine(), sensors=static.program.sensors).run(tee)
    assert len(rec1.records) == len(rec2.records) == 3


def test_io_degradation_stretches_io_only():
    src = "int main() { compute_units(100); fwrite(100); return 0; }"
    module = parse_source(src)
    healthy = Simulator(module, quiet_machine()).run().total_time
    degraded = Simulator(
        module,
        quiet_machine(),
        faults=(IoDegradation(t0=0.0, t1=1e12, factor=0.25),),
    ).run().total_time
    io_cost_healthy = 50.0 + 0.1 * 100  # io_alpha + io_beta * size
    assert degraded - healthy == pytest.approx(io_cost_healthy * 3.0, rel=0.01)


def test_rank_scoped_raw_recorder():
    recorder = RawRecorder(ranks={1})
    src = """
    void q() { compute_units(5); }
    int main() {
        int i;
        for (i = 0; i < 4; i = i + 1) q();
        MPI_Barrier();
        return 0;
    }
    """
    from repro.api import compile_and_instrument

    static = compile_and_instrument(src)
    Simulator(
        static.program.module, quiet_machine(n_ranks=4, ranks_per_node=2),
        sensors=static.program.sensors,
    ).run(recorder)
    assert {r[0] for r in recorder.records} == {1}
