"""Differential tests: the bytecode VM must be bit-identical to the AST tier.

The AST interpreter is the executable specification; the compiled register
VM is the fast path.  Every workload analogue is run under both engines —
uninstrumented on a quiet baseline and instrumented under a fault scenario
— and everything observable must match exactly: virtual finish times,
total work, match counts, PMU samples and the full sensor-record stream.
"""

from __future__ import annotations

import pytest

from repro.api import compile_and_instrument
from repro.frontend import parse_source
from repro.sim.engine import Simulator
from repro.sim.faults import BadNode, IoDegradation, NetworkDegradation
from repro.sim.hooks import RuntimeHooks
from repro.workloads import all_workloads

N_RANKS = 4

#: one fault scenario per workload — IO-heavy and network-heavy analogues
#: get the matching degradation, everything else a bad node
_FAULTS = {
    "FT": (NetworkDegradation(t0=0.0, t1=float("inf"), factor=0.4),),
    "CHKPT": (IoDegradation(t0=0.0, t1=float("inf"), factor=0.4),),
}
_DEFAULT_FAULT = (BadNode(node_id=0, cpu_factor=0.6, mem_factor=0.7),)


class _Recorder(RuntimeHooks):
    """Captures every observable event as a comparable tuple stream."""

    def __init__(self, functions: bool = False) -> None:
        self.events: list[tuple] = []
        self.wants_function_events = functions

    def on_sensor_record(self, rank, sensor_id, t_start, t_end, pmu) -> None:
        self.events.append(
            ("sensor", rank, sensor_id, t_start, t_end,
             pmu.instructions, pmu.cache_miss_rate)
        )

    def on_mpi_end(self, rank, op, t_begin, t_end, size) -> None:
        self.events.append(("mpi", rank, op, t_begin, t_end, size))

    def on_io(self, rank, op, t_begin, t_end, size) -> None:
        self.events.append(("io", rank, op, t_begin, t_end, size))

    def on_func_enter(self, rank, name, t) -> None:
        self.events.append(("enter", rank, name, t))

    def on_func_exit(self, rank, name, t) -> None:
        self.events.append(("exit", rank, name, t))

    def on_program_end(self, rank, t) -> None:
        self.events.append(("end", rank, t))


def _names() -> list[str]:
    return sorted(all_workloads())


@pytest.mark.parametrize("name", _names())
def test_uninstrumented_identical(name):
    wl = all_workloads()[name]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=N_RANKS, ranks_per_node=2)
    r_ast = Simulator(module, machine, engine="ast").run()
    r_bc = Simulator(module, machine, engine="bytecode").run()
    assert r_ast == r_bc


@pytest.mark.parametrize("name", _names())
def test_instrumented_with_fault_identical(name):
    wl = all_workloads()[name]
    static = compile_and_instrument(wl.source())
    machine = wl.machine(n_ranks=N_RANKS, ranks_per_node=2)
    faults = _FAULTS.get(name, _DEFAULT_FAULT)
    streams = {}
    results = {}
    for engine in ("ast", "bytecode"):
        rec = _Recorder()
        results[engine] = Simulator(
            static.program.module,
            machine,
            faults=faults,
            sensors=static.program.sensors,
            engine=engine,
        ).run(rec)
        streams[engine] = rec.events
    assert results["ast"] == results["bytecode"]
    assert streams["ast"] == streams["bytecode"]
    # The fault run must actually observe something on instrumented programs.
    assert streams["bytecode"]


def test_function_event_stream_identical():
    """Tracer-grade enter/exit events match too (FWQ is small enough)."""
    wl = all_workloads()["FWQ"]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=2, ranks_per_node=2)
    streams = {}
    for engine in ("ast", "bytecode"):
        rec = _Recorder(functions=True)
        Simulator(module, machine, engine=engine).run(rec)
        streams[engine] = rec.events
    assert streams["ast"] == streams["bytecode"]
    assert any(e[0] == "enter" for e in streams["ast"])


def test_engine_validates_name():
    wl = all_workloads()["FWQ"]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=2)
    with pytest.raises(ValueError, match="unknown engine"):
        Simulator(module, machine, engine="jit")


def test_program_code_shared_across_runs():
    """Compilation happens once per Simulator, not once per run or rank."""
    wl = all_workloads()["FWQ"]
    module = parse_source(wl.source())
    machine = wl.machine(n_ranks=2)
    sim = Simulator(module, machine)
    sim.run()
    first = sim._program_code
    assert first is not None
    sim.run()
    assert sim._program_code is first
