"""Simulated-PMU tests."""

from repro.sim.faults import SlowMemoryNode
from repro.sim.pmu import Pmu


def test_overcount_never_undercount():
    pmu = Pmu(seed=1, rank=0, faults=(), node_id=0)
    for _ in range(100):
        sample = pmu.read(1000.0, 0.0)
        assert sample.instructions >= 1000.0


def test_error_is_small():
    pmu = Pmu(seed=1, rank=0, faults=(), node_id=0, relative_error=0.01)
    samples = [pmu.read(1000.0, 0.0).instructions for _ in range(200)]
    assert max(samples) / min(samples) < 1.10


def test_deterministic_given_seed():
    a = Pmu(seed=7, rank=3, faults=(), node_id=0)
    b = Pmu(seed=7, rank=3, faults=(), node_id=0)
    assert a.read(500.0, 1.0).instructions == b.read(500.0, 1.0).instructions


def test_cache_miss_elevated_on_slow_memory():
    healthy = Pmu(seed=1, rank=0, faults=(), node_id=0)
    sick = Pmu(seed=1, rank=0, faults=(SlowMemoryNode(node_id=0, mem_factor=0.4),), node_id=0)
    assert sick.read(100.0, 10.0).cache_miss_rate > healthy.read(100.0, 10.0).cache_miss_rate


def test_miss_rate_bounded():
    pmu = Pmu(seed=1, rank=0, faults=(SlowMemoryNode(node_id=0, mem_factor=0.01),), node_id=0)
    assert pmu.read(100.0, 0.0).cache_miss_rate <= 0.95 * 1.1 + 1e-9
