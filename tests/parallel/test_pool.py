"""Deterministic worker pool: placement, ordering, crash recovery.

The pool's contract is that ``run(tasks)`` is a pure function of the
task list — same results, same order, for any worker count — and that a
dying worker is invisible to the caller: its unfinished tasks replay on
a fresh process with exactly-once effect per task index.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ReproError
from repro.obs import Obs
from repro.parallel.pool import WorkerPool, default_workers


def _square(x):
    return x * x


def _raise_on_13(x):
    if x == 13:
        raise ValueError("unlucky task")
    return x


def _crash_once(payload):
    """os._exit the whole worker the first time each marker is seen.

    The marker file records that the crash already happened, so the
    replayed task (fresh process, same payload) completes — modelling a
    transient worker death, the case replay must cover exactly once.
    """
    tag, marker = payload
    if tag == "crash" and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os._exit(1)
    return tag, os.getpid()


def test_results_come_back_in_task_order():
    payloads = list(range(23))
    with WorkerPool(3, _square) as pool:
        assert pool.run(payloads) == [x * x for x in payloads]


def test_worker_counts_are_result_invariant():
    payloads = [7, 1, 5, 2, 9, 0, 4]
    outs = []
    for n in (1, 2, 4):
        with WorkerPool(n, _square) as pool:
            outs.append(pool.run(payloads))
    assert outs[0] == outs[1] == outs[2]


def test_pool_reuse_and_empty_run():
    with WorkerPool(2, _square) as pool:
        assert pool.run([]) == []
        assert pool.run([3]) == [9]
        assert pool.run([4, 5]) == [16, 25]  # same processes, next batch
        pids = pool.worker_pids()
        assert len(pids) == 2 and len(set(pids)) == 2


def test_task_exception_propagates_with_traceback():
    with WorkerPool(2, _raise_on_13) as pool:
        with pytest.raises(ReproError, match="unlucky task"):
            pool.run([1, 13, 2])
        # The pool stays usable after a task error.
        assert pool.run([4]) == [4]


def test_crashed_worker_replays_outstanding_exactly_once(tmp_path):
    obs = Obs.create()
    marker = str(tmp_path / "crashed")
    payloads = [("a", ""), ("crash", marker), ("b", ""), ("c", ""), ("d", "")]
    with WorkerPool(2, _crash_once, obs=obs) as pool:
        results = pool.run(payloads)
    tags = [tag for tag, _pid in results]
    assert tags == ["a", "crash", "b", "c", "d"]
    # The crash really happened (marker written by the first attempt)...
    assert os.path.exists(marker)
    # ...and the respawn was counted.
    assert obs.metrics.counter("parallel.worker_restart").value == 1
    # Slot 1's tasks ("crash", "c") replayed on the fresh process; slot 0
    # tasks kept their original worker.
    pid_by_tag = dict(results)
    assert pid_by_tag["a"] == pid_by_tag["b"] == pid_by_tag["d"]
    assert pid_by_tag["crash"] == pid_by_tag["c"]
    assert pid_by_tag["crash"] != pid_by_tag["a"]


def _always_crash(_payload):
    os._exit(1)


def test_repeated_deaths_exhaust_max_restarts():
    with WorkerPool(1, _always_crash, max_restarts=2) as pool:
        with pytest.raises(ReproError, match="died 3 times"):
            pool.run(["boom"])


def test_dispatch_counters(tmp_path):
    obs = Obs.create()
    with WorkerPool(2, _square, obs=obs) as pool:
        pool.run(list(range(5)))
    metrics = obs.metrics
    assert metrics.counter("parallel.dispatch").value == 5
    assert metrics.counter("parallel.results").value == 5
    assert metrics.counter("parallel.frames").value >= 10  # 5 sends + 5 recvs


def test_rejects_zero_workers():
    with pytest.raises(ReproError):
        WorkerPool(0, _square)


def test_default_workers_positive():
    assert default_workers() >= 1
