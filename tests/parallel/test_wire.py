"""Fabric wire protocol: framing and the exact row codec.

The codec contract is *bit-exactness*: ``decode_rows(encode_rows(rows))``
must reproduce every :class:`~repro.runtime.records.SliceSummary` field
including the last float bit — that is what makes the process boundary
invisible to the merged matrices.  Framing must deliver whole frames or
fail loudly (truncation, oversize, dead peer), never hand back a torn
payload.
"""

from __future__ import annotations

import math

import pytest

from repro.parallel.wire import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    PeerDied,
    WireError,
    decode_rows,
    encode_rows,
    pack_apply,
    pack_export_rows,
    pack_register,
    socket_pair,
    unpack_apply,
    unpack_export_rows,
    unpack_register,
)
from repro.runtime.records import SliceSummary
from repro.sensors.model import SensorType
from tests.service.util import make_summary


def _awkward_rows(job: int = 7) -> list[SliceSummary]:
    """Rows exercising every field with bit-pattern-hostile floats."""
    rows = []
    durations = [0.1, 1.0 / 3.0, math.pi * 1e3, 5e-324, 1.7e308 / 1e300]
    for i, duration in enumerate(durations):
        rows.append(
            SliceSummary(
                rank=i % 3,
                sensor_id=100 + i,
                sensor_type=SensorType.COMPUTATION if i % 2 else SensorType.NETWORK,
                group="" if i == 0 else f"grp-{i % 2}",
                slice_index=i * 17,
                t_slice_start=duration * 7.0,
                mean_duration=duration,
                count=i + 1,
                mean_cache_miss=duration / 9.0,
                job_id=job,
            )
        )
    return rows


def test_row_codec_roundtrip_is_bit_exact():
    rows = _awkward_rows()
    back = decode_rows(encode_rows(rows), job=7)
    assert back == rows
    for a, b in zip(rows, back):
        assert a.mean_duration == b.mean_duration  # exact, not approx
        assert a.t_slice_start == b.t_slice_start
        assert a.mean_cache_miss == b.mean_cache_miss
        assert a.job_id == b.job_id


def test_row_codec_preserves_order_and_empty():
    rows = [
        make_summary(r, 1, SensorType.COMPUTATION, "g", s, 1.0 + r + s)
        for r in (2, 0, 2, 1)
        for s in (3, 1)
    ]
    assert decode_rows(encode_rows(rows)) == rows
    assert decode_rows(encode_rows([])) == []


def test_decode_rejects_truncated_row_block():
    payload = encode_rows(_awkward_rows())
    with pytest.raises(WireError):
        decode_rows(payload[:-4])


def test_apply_and_export_payloads_roundtrip():
    rows = _awkward_rows(job=3)
    job, rank, seq, n_ranks, back = unpack_apply(pack_apply(3, 2, 9, 8, rows))
    assert (job, rank, seq, n_ranks) == (3, 2, 9, 8)
    assert back == rows

    total, dups, back = unpack_export_rows(pack_export_rows(41, 6, rows), job=3)
    assert (total, dups) == (41, 6)
    assert back == rows
    assert all(s.job_id == 3 for s in back)

    assert unpack_register(pack_register(12, 64)) == (12, 64)


def test_frame_roundtrip_and_peer_death():
    a, b = socket_pair()
    a.send(5, b"hello")
    a.send(6)  # empty payload
    assert b.recv() == (5, b"hello")
    assert b.recv() == (6, b"")
    a.close()
    with pytest.raises(PeerDied):
        b.recv()
    b.close()


def test_frame_reassembles_across_partial_reads():
    import threading

    a, b = socket_pair()
    big = bytes(range(256)) * 2048  # 512 KiB: several socket reads
    # Send from a thread: one frame larger than the kernel socket buffer
    # needs a concurrent reader to drain it.
    sender = threading.Thread(target=a.send, args=(9, big))
    sender.start()
    ftype, payload = b.recv()
    sender.join()
    assert (ftype, payload) == (9, big)
    a.close()
    b.close()


def test_oversized_frames_fail_loudly():
    a, b = socket_pair()
    with pytest.raises(WireError):
        a.send(1, b"x" * (MAX_FRAME_BYTES + 1))
    # A corrupt length prefix on the read side must also refuse.
    a.sock.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1, 1, 0))
    with pytest.raises(WireError):
        b.recv()
    a.close()
    b.close()


def test_frames_counter_ticks_both_directions():
    class Tally:
        value = 0

        def inc(self, n: int = 1) -> None:
            self.value += n

    tally = Tally()
    a, b = socket_pair(frames=tally)
    a.send(1, b"x")
    b.send(2, b"y")
    assert a.recv() == (2, b"y")
    # a sent one and received one; b's side has no counter attached.
    assert tally.value == 2
    a.close()
    b.close()
