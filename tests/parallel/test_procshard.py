"""Process-backed shards: bit-identity and crash/replay recovery.

The fabric contract mirrors the sharded-service contract one process
boundary out: an :class:`~repro.service.AnalysisService` built on
:class:`~repro.parallel.ProcessShardFabric` must answer every per-job
query bit-identically to the same service with in-process shards — for
the same batches, the same interleaving, the same sequence numbers —
even when a shard child is SIGKILLed mid-run and rebuilt by spool
replay.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import Obs
from repro.parallel import ProcessShardFabric
from repro.sensors.model import SensorType
from repro.service import AnalysisService
from tests.service.util import make_summary

N_RANKS = 4
N_JOBS = 2
WINDOW_US = 2000.0


def _batches(job: int):
    """Deterministic sequenced per-rank batches for one job."""
    out = []
    for rank in range(N_RANKS):
        for seq in range(3):
            rows = [
                make_summary(
                    rank,
                    sensor_id,
                    SensorType.COMPUTATION if sensor_id == 1 else SensorType.NETWORK,
                    "g" if slice_index % 2 else "",
                    slice_index,
                    10.0 + job + rank * 0.5 + slice_index * 0.25,
                    job_id=job,
                )
                for sensor_id in (1, 2)
                for slice_index in range(seq * 2, seq * 2 + 2)
            ]
            out.append((rank, rows, seq))
    return out


def _feed(service: AnalysisService) -> None:
    ports = [service.register_job(job, N_RANKS) for job in range(N_JOBS)]
    for job, port in enumerate(ports):
        for rank, rows, seq in _batches(job):
            assert port.receive_batch(rank, list(rows), seq=seq)
    service.finish()


def _assert_identical(a: AnalysisService, b: AnalysisService) -> None:
    for job in range(N_JOBS):
        pa, pb = a.ports[job], b.ports[job]
        for stype in SensorType:
            assert np.array_equal(
                pa.performance_matrix(stype),
                pb.performance_matrix(stype),
                equal_nan=True,
            ), f"job {job} {stype} matrix differs across the process boundary"
        assert pa.detect_inter_process() == pb.detect_inter_process()
        assert pa.stored_summaries == pb.stored_summaries
        assert pa.duplicate_summaries == pb.duplicate_summaries
        assert pa.history._standard == pb.history._standard


def test_process_shards_bit_identical_to_in_process():
    ref = AnalysisService(3, window_us=WINDOW_US)
    _feed(ref)
    fabric = ProcessShardFabric()
    svc = AnalysisService(3, window_us=WINDOW_US, fabric=fabric)
    _feed(svc)
    _assert_identical(ref, svc)
    assert fabric.restarts() == 0
    # close() syncs every merger before the children go away, so late
    # queries answer from stable state, unchanged.
    svc.close()
    _assert_identical(ref, svc)


def test_redelivered_subbatches_apply_exactly_once():
    ref = AnalysisService(2, window_us=WINDOW_US)
    _feed(ref)
    with ProcessShardFabric() as fabric:
        svc = AnalysisService(2, window_us=WINDOW_US, fabric=fabric)
        port = svc.register_job(0, N_RANKS)
        other = svc.register_job(1, N_RANKS)
        for rank, rows, seq in _batches(0):
            assert port.receive_batch(rank, list(rows), seq=seq)
            # Transport-level redelivery: same seq, same rows — the
            # front's watermark drops it before the shard hop.
            assert not port.receive_batch(rank, list(rows), seq=seq)
        for rank, rows, seq in _batches(1):
            assert other.receive_batch(rank, list(rows), seq=seq)
        svc.finish()
        _assert_identical(ref, svc)


def test_killed_shard_child_recovers_by_spool_replay():
    obs = Obs.create()
    ref = AnalysisService(3, window_us=WINDOW_US)
    _feed(ref)
    with ProcessShardFabric() as fabric:
        svc = AnalysisService(3, window_us=WINDOW_US, obs=obs, fabric=fabric)
        ports = [svc.register_job(job, N_RANKS) for job in range(N_JOBS)]
        half = len(_batches(0)) // 2
        for job, port in enumerate(ports):
            for rank, rows, seq in _batches(job)[:half]:
                assert port.receive_batch(rank, list(rows), seq=seq)
        svc.finish()  # make sure applies reached the children
        # Murder every shard child mid-run: recovery must replay the
        # full frame spool into fresh processes.
        for shard in svc.shards:
            os.kill(shard.pid(), signal.SIGKILL)
        time.sleep(0.1)
        for job, port in enumerate(ports):
            for rank, rows, seq in _batches(job)[half:]:
                assert port.receive_batch(rank, list(rows), seq=seq)
        svc.finish()
        _assert_identical(ref, svc)
        assert fabric.restarts() == len(svc.shards)
        assert (
            obs.metrics.counter("parallel.worker_restart").value == len(svc.shards)
        )


def test_repeated_child_deaths_exhaust_max_restarts():
    with ProcessShardFabric(max_restarts=1) as fabric:
        svc = AnalysisService(1, window_us=WINDOW_US, fabric=fabric)
        port = svc.register_job(0, N_RANKS)
        shard = svc.shards[0]
        with pytest.raises(ReproError, match="giving up"):
            for attempt in range(4):
                os.kill(shard.pid(), signal.SIGKILL)
                time.sleep(0.05)
                rank, rows, seq = _batches(0)[attempt]
                port.receive_batch(rank, list(rows), seq=seq)
                svc.finish()  # forces the apply → send → PeerDied path
