"""Parallel multi-job runner: ``workers=N`` is bit-identical to serial.

Only phase 1 (compile + simulate, independent per job) fans out to the
process pool; the time-ordered replay, back-pressure drive and merged
per-job reports are a deterministic function of its outputs.  So the
whole :func:`~repro.api.run_multi_job` result — matrices, regions,
inter-process events, coverage confidence, channel counters — must be
identical for any worker count, and for process-backed shards too.
"""

from __future__ import annotations

import numpy as np

from repro.api import JobSpec, run_multi_job, run_vsensor
from repro.obs import Obs
from repro.parallel import JobTask, simulate_job, simulate_jobs_parallel
from repro.runtime.channel import ChannelConfig
from repro.runtime.transport import RetryPolicy
from repro.sim import MachineConfig
from repro.sim.faults import CpuContention
from tests.conftest import SIMPLE_MPI_PROGRAM


def _machine(seed: int) -> MachineConfig:
    return MachineConfig(n_ranks=4, ranks_per_node=2, seed=seed)


def _specs(span: float) -> list[JobSpec]:
    faults = [
        CpuContention(node_ids=(1,), t0=0.2 * span, t1=0.7 * span, cpu_factor=0.3)
    ]
    return [
        JobSpec(SIMPLE_MPI_PROGRAM, _machine(11), faults=faults),
        JobSpec(
            SIMPLE_MPI_PROGRAM,
            _machine(23),
            channel=ChannelConfig(drop_rate=0.1, dup_rate=0.1, seed=5),
            retry_policy=RetryPolicy(timeout_us=span / 50, max_attempts=30),
        ),
        JobSpec(SIMPLE_MPI_PROGRAM, _machine(47)),
    ]


def _kwargs(span: float) -> dict:
    return dict(n_shards=3, window_us=span / 10, batch_period_us=span / 10, store=None)


def _assert_runs_identical(a, b) -> None:
    assert set(a.jobs) == set(b.jobs)
    for job_id in a.jobs:
        ra, rb = a.jobs[job_id].report, b.jobs[job_id].report
        assert set(ra.matrices) == set(rb.matrices)
        for stype in ra.matrices:
            assert np.array_equal(
                ra.matrices[stype], rb.matrices[stype], equal_nan=True
            ), f"job {job_id} {stype} matrix differs from the serial run"
        for stype in ra.rank_means:
            assert np.array_equal(
                ra.rank_means[stype], rb.rank_means[stype], equal_nan=True
            )
        assert ra.regions == rb.regions
        assert ra.inter_events == rb.inter_events
        assert ra.coverage_confidence == rb.coverage_confidence
        assert ra.degraded_ranks == rb.degraded_ranks
        assert ra.duplicate_batches == rb.duplicate_batches
        assert a.jobs[job_id].channel_stats == b.jobs[job_id].channel_stats
        assert a.jobs[job_id].sim.total_time == b.jobs[job_id].sim.total_time


def _span() -> float:
    return run_vsensor(SIMPLE_MPI_PROGRAM, _machine(11), store=None).sim.total_time


def test_worker_pool_run_is_bit_identical_to_serial():
    span = _span()
    specs = _specs(span)
    kw = _kwargs(span)
    serial = run_multi_job(specs, **kw)
    fanned = run_multi_job(specs, workers=2, **kw)
    _assert_runs_identical(serial, fanned)
    # More workers than jobs is fine (idle workers never dispatch).
    wide = run_multi_job(specs, workers=5, **kw)
    _assert_runs_identical(serial, wide)


def test_process_shards_end_to_end_match_default(tmp_path):
    span = _span()
    specs = _specs(span)
    kw = _kwargs(span)
    serial = run_multi_job(specs, **kw)
    obs = Obs.create()
    fabric_run = run_multi_job(
        specs, workers=2, shard_processes=True, obs=obs, **kw
    )
    _assert_runs_identical(serial, fabric_run)
    assert fabric_run.fabric is not None
    assert fabric_run.fabric.restarts() == 0
    assert obs.metrics.counter("parallel.dispatch").value == len(specs)


def test_simulate_jobs_parallel_matches_direct_calls():
    span = _span()
    tasks = [
        JobTask(
            job_id=job_id,
            source=SIMPLE_MPI_PROGRAM,
            machine=_machine(seed),
            faults=(),
            detector=None,
            rule=None,
            engine="bytecode",
            max_depth=3,
            batch_period_us=span / 10,
        )
        for job_id, seed in ((0, 11), (1, 23))
    ]
    direct = [simulate_job(task) for task in tasks]
    pooled = simulate_jobs_parallel(tasks, 2, obs=None, max_restarts=2)
    assert len(pooled) == len(direct)
    for (_, sim_d, run_d), (_, sim_p, run_p) in zip(direct, pooled):
        assert sim_d.total_time == sim_p.total_time
        assert run_d.server.events == run_p.server.events
