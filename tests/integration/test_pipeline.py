"""End-to-end pipeline integration tests."""

import numpy as np
import pytest

from repro.api import compile_and_instrument, run_uninstrumented, run_vsensor
from repro.sensors.model import SensorType
from repro.sim import (
    CpuContention,
    MachineConfig,
    NetworkDegradation,
    SlowMemoryNode,
)
from repro.sim.noise import NoiseConfig
from tests.conftest import SIMPLE_MPI_PROGRAM


def machine(n_ranks=8, **kw):
    return MachineConfig(n_ranks=n_ranks, ranks_per_node=4, **kw)


def test_static_result_complete(simple_module):
    static = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    assert static.identification.sensor_count >= 2
    assert static.plan.selected
    assert "vs_tick" in static.source


def test_full_run_produces_report():
    run = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    assert run.sim.total_time > 0
    assert run.report.n_ranks == 8
    assert run.report.bytes_to_server > 0
    assert run.report.matrices  # at least one component observed


def test_report_matrices_have_rank_rows():
    run = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    for matrix in run.report.matrices.values():
        assert matrix.shape[0] == 8


def test_clean_run_mostly_healthy():
    run = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    comp = run.report.matrices.get(SensorType.COMPUTATION)
    assert comp is not None
    finite = comp[np.isfinite(comp)]
    assert np.median(finite) > 0.8


def test_overhead_under_paper_bound():
    base = run_uninstrumented(SIMPLE_MPI_PROGRAM, machine())
    run = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    overhead = run.sim.total_time / base.total_time - 1.0
    assert overhead < 0.04  # the paper's <4% headline


def test_slow_memory_node_flagged():
    """The Fig. 21 scenario at small scale."""
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        machine(),
        faults=[SlowMemoryNode(node_id=1, mem_factor=0.4)],
        window_us=20_000,
    )
    suspects = run.report.suspect_ranks(SensorType.COMPUTATION, threshold=0.9)
    assert set(suspects) == {4, 5, 6, 7}


def test_contention_window_localized():
    """The Fig. 20 scenario: injected noise localized in time and ranks.

    The fixture program runs ~3 ms at this scale, so the injection window
    sits mid-run at 1-2 ms and the matrix uses 500 µs windows.
    """
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        machine(),
        faults=[CpuContention(node_ids=(0,), t0=1_000.0, t1=2_000.0, cpu_factor=0.25)],
        window_us=500,
        batch_period_us=500,
    )
    comp_regions = [
        r for r in run.report.regions if r.sensor_type is SensorType.COMPUTATION
    ]
    assert comp_regions
    main_region = max(comp_regions, key=lambda r: r.cells)
    # Localized to node 0's ranks and to the injection window (one matrix
    # window of slack on either side).
    assert main_region.rank_hi <= 3
    assert main_region.t_start_us >= 500.0
    assert main_region.t_end_us <= 3_000.0


def test_network_degradation_hits_network_matrix():
    """The Fig. 22 scenario: congestion shows in the NET component."""
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        machine(),
        faults=[NetworkDegradation(t0=1_000.0, t1=2_500.0, factor=0.1)],
        window_us=500,
    )
    net = run.report.matrices.get(SensorType.NETWORK)
    assert net is not None
    finite_cols = [c for c in range(net.shape[1]) if np.isfinite(net[:, c]).any()]
    degraded = [c for c in finite_cols if np.nanmean(net[:, c]) < 0.6]
    assert degraded, "expected degraded network windows"


def test_deterministic_end_to_end():
    r1 = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    r2 = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    assert r1.sim.total_time == r2.sim.total_time
    assert r1.report.bytes_to_server == r2.report.bytes_to_server


def test_quiet_machine_no_false_positives():
    quiet = machine(
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0)
    )
    run = run_vsensor(SIMPLE_MPI_PROGRAM, quiet)
    comp_regions = [
        r for r in run.report.regions if r.sensor_type is SensorType.COMPUTATION
    ]
    assert comp_regions == []


def test_data_volume_far_below_tracer():
    """§6.4: vSensor's data volume is orders of magnitude below a tracer's
    on communication-heavy programs."""
    from repro.baselines import EventTracer
    from repro.frontend.parser import parse_source
    from repro.sim import Simulator

    run = run_vsensor(SIMPLE_MPI_PROGRAM, machine())
    tracer = EventTracer()
    Simulator(parse_source(SIMPLE_MPI_PROGRAM), machine()).run(tracer)
    assert tracer.stats().bytes > 0
    # Slice summaries are bounded by wall-time, not event count.
    assert run.report.bytes_to_server < tracer.stats().bytes * 20
