"""Golden regression: the Fig 18-20 injection scenario survives transports.

CG on 32 ranks with two CPU-contention episodes (nodes 1 and 3, at
25-45% and 60-80% of the run) is the paper's flagship localization
result.  This module pins the detected event set — region type, rank
band, time band, and the inter-process verdicts — under the default seed,
and then asserts the *same* event set emerges when the batches travel

* through the shared-file spool transport, and
* over a lossy channel (10% drop + duplication + reordering) with the
  sequenced retry transport — the PR's acceptance scenario.
"""

from __future__ import annotations

import pytest

from repro.api import compile_and_instrument, run_vsensor
from repro.runtime.server import AnalysisServer
from repro.runtime.transport import FileSpool, SpoolingRuntimeMixin
from repro.runtime.vsensor_hooks import VSensorRuntime
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig, Simulator
from repro.workloads import get_workload

pytestmark = pytest.mark.slow

N_RANKS = 32
PER_NODE = 8
SCALE = 3
MIN_CELLS = 4


def _machine():
    return MachineConfig(n_ranks=N_RANKS, ranks_per_node=PER_NODE)


@pytest.fixture(scope="module")
def scenario():
    source = get_workload("CG").source(scale=SCALE)
    probe = run_vsensor(source, _machine())
    span = probe.sim.total_time
    injections = [
        CpuContention(node_ids=(1,), t0=0.25 * span, t1=0.45 * span, cpu_factor=0.35),
        CpuContention(node_ids=(3,), t0=0.60 * span, t1=0.80 * span, cpu_factor=0.35),
    ]
    return source, span, injections


def _region_signature(report):
    """Comparable event set: component, rank band, window band."""
    return sorted(
        (r.sensor_type.value, r.rank_lo, r.rank_hi,
         round(r.t_start_us / report.window_us), round(r.t_end_us / report.window_us))
        for r in report.regions
        if r.sensor_type is SensorType.COMPUTATION and r.cells >= MIN_CELLS
    )


def _inter_signature(server_or_events):
    events = getattr(server_or_events, "inter_events", server_or_events)
    return sorted(
        (e.sensor_type.value, e.window_index, e.slow_ranks)
        for e in events
        if e.sensor_type is SensorType.COMPUTATION
    )


@pytest.fixture(scope="module")
def golden(scenario):
    source, span, injections = scenario
    run = run_vsensor(
        source, _machine(), faults=injections,
        window_us=span / 16, batch_period_us=span / 16,
    )
    return run


def test_golden_run_localizes_both_episodes(golden, scenario):
    _source, span, _injections = scenario
    regions = _region_signature(golden.report)
    assert len(regions) == 2, "exactly the two injections must appear"
    (first, second) = sorted(regions, key=lambda r: r[3])
    assert (first[1], first[2]) == (8, 15), "episode 1 on node 1 = ranks 8-15"
    assert (second[1], second[2]) == (24, 31), "episode 2 on node 3 = ranks 24-31"
    assert _inter_signature(golden.runtime.server), "inter-process verdicts exist"


def test_spool_transport_matches_golden(golden, scenario, tmp_path):
    source, span, injections = scenario
    static = compile_and_instrument(source)
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=N_RANKS,
        server=AnalysisServer(
            n_ranks=N_RANKS, window_us=span / 16, batch_period_us=span / 16
        ),
    )
    mixin = SpoolingRuntimeMixin(spool=FileSpool(directory=str(tmp_path)))
    mixin.attach(runtime)
    sim = Simulator(
        static.program.module, _machine(), faults=tuple(injections),
        sensors=static.program.sensors,
    ).run(runtime)
    mixin.finish(runtime)
    report = runtime.report(sim.total_time)

    assert _region_signature(report) == _region_signature(golden.report)
    assert _inter_signature(runtime.server) == _inter_signature(golden.runtime.server)
    # Intra-process detection happens rank-side: bit-identical by construction.
    assert report.intra_events == golden.report.intra_events
    assert report.degraded_ranks == ()


def test_lossy_channel_matches_golden(golden, scenario):
    """Acceptance: 10% drop + reorder + duplication, same localized events."""
    source, span, injections = scenario
    run = run_vsensor(
        source, _machine(), faults=injections,
        window_us=span / 16, batch_period_us=span / 16,
        channel="drop=0.1,dup=0.1,reorder=0.2",
    )
    assert _region_signature(run.report) == _region_signature(golden.report)
    assert _inter_signature(run.runtime.server) == _inter_signature(
        golden.runtime.server
    )
    assert run.report.intra_events == golden.report.intra_events
    stats = run.channel_stats
    assert stats is not None and stats["dropped"] > 0, "loss must actually occur"
    assert stats["retried"] > 0
    assert run.report.degraded_ranks == (), "retries recover every batch"
    assert run.report.coverage_confidence == pytest.approx(1.0)
