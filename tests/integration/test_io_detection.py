"""IO-component detection end to end (extension of §6's case studies)."""

import numpy as np
import pytest

from repro.api import run_vsensor
from repro.sensors.model import SensorType
from repro.sim import IoDegradation, MachineConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def chkpt_run():
    source = get_workload("CHKPT").source()
    machine = MachineConfig(n_ranks=8, ranks_per_node=4)
    base = run_vsensor(source, machine, window_us=10_000)
    span = base.sim.total_time
    episode = IoDegradation(t0=0.3 * span, t1=0.7 * span, factor=0.2)
    degraded = run_vsensor(
        source, machine, faults=[episode], window_us=span / 10, batch_period_us=span / 10
    )
    return base, degraded, episode, span


def test_io_sensors_identified(chkpt_run):
    base, _d, _e, _s = chkpt_run
    types = {s.sensor_type for s in base.static.plan.selected}
    assert SensorType.IO in types


def test_io_matrix_produced(chkpt_run):
    base, _d, _e, _s = chkpt_run
    assert SensorType.IO in base.report.matrices


def test_healthy_io_matrix_clean(chkpt_run):
    base, _d, _e, _s = chkpt_run
    io = base.report.matrices[SensorType.IO]
    finite = io[np.isfinite(io)]
    assert np.median(finite) > 0.9


def test_io_degradation_band_detected(chkpt_run):
    _b, degraded, episode, span = chkpt_run
    io = degraded.report.matrices[SensorType.IO]
    regions = [r for r in degraded.report.regions if r.sensor_type is SensorType.IO]
    assert regions, "the IO slowdown must form a variance region"
    big = max(regions, key=lambda r: r.cells)
    # All ranks affected (a filesystem-wide storm) within the episode.
    assert big.rank_lo == 0 and big.rank_hi == 7


def test_io_fault_leaves_computation_clean(chkpt_run):
    _b, degraded, _e, _s = chkpt_run
    comp = degraded.report.matrices[SensorType.COMPUTATION]
    finite = comp[np.isfinite(comp)]
    assert np.median(finite) > 0.9


def test_node_local_io_fault_localizes():
    source = get_workload("CHKPT").source()
    machine = MachineConfig(n_ranks=8, ranks_per_node=4)
    probe = run_vsensor(source, machine)
    span = probe.sim.total_time
    episode = IoDegradation(t0=0.0, t1=span * 2, factor=0.2, node_ids=(1,))
    run = run_vsensor(source, machine, faults=[episode], window_us=span / 8)
    suspects = run.report.suspect_ranks(SensorType.IO, threshold=0.9)
    assert suspects == [4, 5, 6, 7]
