"""Lowering tests: AST to three-address IR."""

import pytest

from repro.errors import LoweringError
from repro.frontend.parser import parse_source
from repro.ir import (
    BinInstr,
    Branch,
    CallInstr,
    ConstInt,
    Jump,
    Load,
    LoadElem,
    Ret,
    Store,
    StoreElem,
    lower_module,
)


def lower(src):
    return lower_module(parse_source(src))


def instrs_of(src, fn="main"):
    return list(lower(src).function(fn).instructions())


class TestBasicLowering:
    def test_assignment_produces_store(self):
        instrs = instrs_of("int main() { int x; x = 5; return 0; }")
        stores = [i for i in instrs if isinstance(i, Store)]
        assert any(s.var == "x" for s in stores)

    def test_var_read_produces_load(self):
        instrs = instrs_of("int main() { int x; int y; y = x; return 0; }")
        assert any(isinstance(i, Load) and i.var == "x" for i in instrs)

    def test_binop_lowered(self):
        instrs = instrs_of("int main() { int x; x = 1 + 2; return 0; }")
        bin_instrs = [i for i in instrs if isinstance(i, BinInstr)]
        assert len(bin_instrs) == 1
        assert bin_instrs[0].op == "+"

    def test_array_access(self):
        instrs = instrs_of("global int a[4]; int main() { int x; x = a[1]; a[2] = x; return 0; }")
        assert any(isinstance(i, LoadElem) and i.arr == "a" for i in instrs)
        assert any(isinstance(i, StoreElem) and i.arr == "a" for i in instrs)

    def test_call_lowered_with_args(self):
        instrs = instrs_of("void f(int a) { } int main() { f(3); return 0; }")
        calls = [i for i in instrs if isinstance(i, CallInstr)]
        assert len(calls) == 1
        assert calls[0].callee == "f"
        assert calls[0].args == [ConstInt(3)]

    def test_call_in_expr_stmt_discards_value(self):
        instrs = instrs_of("int f() { return 1; } int main() { f(); return 0; }")
        call = next(i for i in instrs if isinstance(i, CallInstr))
        assert call.dest is None

    def test_call_in_expression_keeps_value(self):
        instrs = instrs_of("int f() { return 1; } int main() { int x; x = f() + 1; return 0; }")
        call = next(i for i in instrs if isinstance(i, CallInstr))
        assert call.dest is not None

    def test_void_function_gets_bare_ret(self):
        instrs = instrs_of("void f() { }", fn="f")
        rets = [i for i in instrs if isinstance(i, Ret)]
        assert len(rets) == 1 and rets[0].value is None

    def test_int_function_default_return_zero(self):
        instrs = instrs_of("int main() { int x; x = 1; }")
        ret = next(i for i in instrs if isinstance(i, Ret))
        assert ret.value == ConstInt(0)


class TestControlFlow:
    def test_if_produces_branch(self):
        fn = lower("int main() { int x; if (x) x = 1; return 0; }").function("main")
        branches = [i for i in fn.instructions() if isinstance(i, Branch)]
        assert len(branches) == 1

    def test_if_else_block_count(self):
        fn = lower("int main() { int x; if (x) x = 1; else x = 2; return 0; }").function("main")
        labels = [b.label for b in fn.blocks]
        assert any("if.then" in l for l in labels)
        assert any("if.else" in l for l in labels)
        assert any("if.end" in l for l in labels)

    def test_for_produces_header_body_step_exit(self):
        fn = lower("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }").function("main")
        labels = [b.label for b in fn.blocks]
        for part in ("for.header", "for.body", "for.step", "for.end"):
            assert any(part in l for l in labels), part

    def test_while_produces_header(self):
        fn = lower("int main() { int x; while (x) x = x - 1; return 0; }").function("main")
        assert any("while.header" in b.label for b in fn.blocks)

    def test_break_jumps_to_exit(self):
        fn = lower("int main() { for (;;) break; return 0; }").function("main")
        jumps = [i for i in fn.instructions() if isinstance(i, Jump)]
        assert any("for.end" in j.target.label for j in jumps)

    def test_continue_jumps_to_step(self):
        fn = lower(
            "int main() { int i; for (i = 0; i < 3; i = i + 1) { continue; } return 0; }"
        ).function("main")
        jumps = [i for i in fn.instructions() if isinstance(i, Jump)]
        assert any("for.step" in j.target.label for j in jumps)

    def test_break_outside_loop_raises(self):
        with pytest.raises(LoweringError, match="break outside loop"):
            lower("int main() { break; return 0; }")

    def test_continue_outside_loop_raises(self):
        with pytest.raises(LoweringError, match="continue outside loop"):
            lower("int main() { continue; return 0; }")

    def test_dead_code_after_return_dropped(self):
        fn = lower("int main() { return 1; x = 2; }").function("main")
        assert not any(isinstance(i, Store) for i in fn.instructions())

    def test_unreachable_blocks_pruned(self):
        fn = lower("int main() { for (;;) { } return 0; }").function("main")
        # The for.end block is unreachable (infinite loop) but harmless if
        # kept; what matters is all kept blocks are terminated.
        for block in fn.blocks:
            assert block.is_terminated


class TestStructuralInvariants:
    def test_every_block_terminated(self, paper_module):
        module = lower_module(paper_module)
        for fn in module.functions.values():
            for block in fn.blocks:
                assert block.is_terminated, f"{fn.name}:{block.label}"

    def test_registers_single_assignment(self, paper_module):
        module = lower_module(paper_module)
        for fn in module.functions.values():
            seen = set()
            for instr in fn.instructions():
                if instr.dst is not None:
                    assert instr.dst not in seen
                    seen.add(instr.dst)

    def test_preds_consistent_with_successors(self, paper_module):
        module = lower_module(paper_module)
        for fn in module.functions.values():
            for block in fn.blocks:
                for succ in block.successors():
                    assert block in succ.preds

    def test_ast_back_links_present(self, paper_module):
        module = lower_module(paper_module)
        for fn in module.functions.values():
            for instr in fn.instructions():
                assert instr.ast_node is not None

    def test_globals_registered(self):
        module = lower("global int G; global float a[4]; int main() { return 0; }")
        assert module.globals == {"G": None, "a": 4}

    def test_redeclaration_raises(self):
        with pytest.raises(LoweringError, match="redeclaration"):
            lower("int main() { int x; int x; return 0; }")

    def test_funcptr_call_marked_indirect(self):
        module = lower(
            "void f() { } int main() { funcptr fp; fp = &f; fp(); return 0; }"
        )
        calls = [i for i in module.function("main").instructions() if isinstance(i, CallInstr)]
        assert any(c.is_indirect for c in calls)

    def test_direct_call_not_indirect(self):
        module = lower("void f() { } int main() { f(); return 0; }")
        calls = [i for i in module.function("main").instructions() if isinstance(i, CallInstr)]
        assert not any(c.is_indirect for c in calls)
