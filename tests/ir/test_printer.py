"""IR printer smoke tests."""

from repro.frontend.parser import parse_source
from repro.ir import format_ir_function, format_ir_module, lower_module


def test_module_dump_contains_functions_and_globals(paper_module):
    text = format_ir_module(lower_module(paper_module))
    assert "func foo(x, y) -> int {" in text
    assert "func main() -> int {" in text
    assert "global GLBV" in text


def test_every_instruction_formats(paper_module):
    module = lower_module(paper_module)
    for fn in module.functions.values():
        text = format_ir_function(fn)
        assert text.count("\n") >= len(fn.blocks)


def test_store_load_format():
    module = lower_module(parse_source("int main() { int x; x = 1; return x; }"))
    text = format_ir_function(module.function("main"))
    assert "store x, 1" in text
    assert "= load x" in text


def test_branch_format_mentions_labels():
    module = lower_module(parse_source("int main() { int x; if (x) x = 1; return 0; }"))
    text = format_ir_function(module.function("main"))
    assert "br %" in text


def test_indirect_call_format():
    module = lower_module(
        parse_source("void f() { } int main() { funcptr p; p = &f; p(); return 0; }")
    )
    text = format_ir_function(module.function("main"))
    assert "icall p()" in text
    assert "= &f" in text
