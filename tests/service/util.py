"""Shared helpers for the service test suite."""

from __future__ import annotations

from repro.runtime.records import SliceSummary
from repro.sensors.model import SensorType


def make_summary(
    rank: int,
    sensor_id: int,
    stype: SensorType,
    group: str,
    slice_index: int,
    duration: float,
    miss: float = 0.1,
    job_id: int = 0,
) -> SliceSummary:
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=3,
        mean_cache_miss=miss,
        job_id=job_id,
    )
