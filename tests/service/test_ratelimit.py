"""Per-tenant token-bucket rate limiting at the ingest front.

The service can be built with ``rate_limit_rows_per_ms``: each tenant
then gets a token bucket (rows per virtual millisecond, burst capacity
``rate_burst_rows``, default 4x the rate).  Over-rate batches are
rejected through the same retry-after machinery as back-pressure — the
sequence number stays unconsumed, the transport re-times its backoff to
the bucket's refill, and watermark dedup upholds exactly-once effect.
Tokens are debited only on admission, so rejections never burn budget.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs import Obs
from repro.runtime.channel import perfect_channel
from repro.runtime.transport import ReliableTransport, RetryPolicy
from repro.sensors.model import SensorType
from repro.service import AnalysisService
from tests.service.util import make_summary


def _service(rate=1.0, burst=None, obs=None, **kw):
    return AnalysisService(
        1,
        window_us=2000.0,
        rate_limit_rows_per_ms=rate,
        rate_burst_rows=burst,
        obs=obs,
        **kw,
    )


def _batch(rank, slices, sensor=1):
    return [
        make_summary(rank, sensor, SensorType.COMPUTATION, "", s, 10.0 + s)
        for s in slices
    ]


def test_rate_limit_config_validation():
    with pytest.raises(ReproError):
        AnalysisService(1, rate_limit_rows_per_ms=0.0)
    with pytest.raises(ReproError):
        AnalysisService(1, rate_limit_rows_per_ms=-1.0)


def test_default_burst_is_four_x_rate():
    service = _service(rate=2.5)
    assert service.rate_burst_rows == 10.0
    assert _service(rate=2.5, burst=3.0).rate_burst_rows == 3.0
    # No rate limit -> no burst either.
    plain = AnalysisService(1)
    assert plain.rate_limit_rows_per_ms is None
    assert plain.rate_burst_rows is None


def test_over_rate_batch_rejected_with_refill_timed_hint():
    # burst=4 rows, rate=1 row/ms.  The first 4-row batch drains the
    # bucket at virtual t=3000 (summaries carry their slice timestamps);
    # the next 1-row batch at the same instant overdraws by one row, so
    # the hint lands exactly 1 ms out.
    service = _service(rate=1.0, burst=4.0)
    port = service.register_job(0, 1)
    assert port.receive_batch(0, _batch(0, [0, 1, 2, 3]), seq=0) is True
    assert port.receive_batch(0, _batch(0, [3], sensor=2), seq=1) is False
    assert port.ratelimited_batches == 1
    assert port.rejected_batches == 1
    assert not port.is_acked(0, 1)
    hint = port.pop_retry_hint(0, 1)
    assert hint == pytest.approx(4000.0)
    # At the hinted time the bucket has refilled enough to admit it.
    service.pump(hint)
    assert port.receive_batch(0, _batch(0, [3], sensor=2), seq=1) is True
    service.finish()
    assert port.stored_summaries == 5
    assert port.ack_watermark(0) == 1


def test_rejection_does_not_burn_tokens():
    service = _service(rate=1.0, burst=4.0)
    port = service.register_job(0, 1)
    # Pin the clock at slice 0 (distinct sensors, so nothing dedups)
    # with an admitted 2-row batch, then overdraw twice: the rejections
    # leave the bucket untouched, so a batch that still fits the
    # remaining 2 tokens passes immediately.
    def rows(sensors):
        return [
            make_summary(0, s, SensorType.COMPUTATION, "", 0, 10.0) for s in sensors
        ]

    assert port.receive_batch(0, rows([1, 2]), seq=0) is True
    assert port.receive_batch(0, rows([3, 4, 5]), seq=1) is False
    assert port.receive_batch(0, rows([3, 4, 5]), seq=1) is False
    assert port.ratelimited_batches == 2
    assert port.receive_batch(0, rows([3, 4]), seq=1) is True
    service.finish()
    assert port.stored_summaries == 4


def test_transport_paces_to_the_bucket_and_loses_nothing():
    obs = Obs.create()
    # 2-row batches arrive ~2000 virtual us apart but the bucket refills
    # only one row per 2000 us, so roughly every other batch is deferred.
    service = _service(rate=0.5, burst=2.0, obs=obs)
    port = service.register_job(0, 1)
    transport = ReliableTransport(
        server=port,  # type: ignore[arg-type]
        channel=perfect_channel(),
        policy=RetryPolicy(timeout_us=100.0, max_attempts=80),
        metrics=obs.metrics,
        job_id=0,
    )
    n_batches = 6
    for i in range(n_batches):
        transport.send_batch(0, _batch(0, [2 * i, 2 * i + 1]), now=i * 10.0)
    while transport._pending or transport.channel.pending():
        targets = [p.next_retry_at for p in transport._pending.values()]
        due = transport.channel.next_due()
        if due is not None:
            targets.append(due)
        if not targets:
            break
        t = min(targets)
        service.pump(t)
        transport.pump(t)
    service.finish()
    # Exactly-once effect despite repeated rate rejections.
    assert port.stored_summaries == 2 * n_batches
    assert port.ack_watermark(0) == n_batches - 1
    assert transport.gave_up == {}
    counters = obs.metrics.as_dict()["counters"]
    assert counters.get("service.ratelimit.rejected", 0) == port.ratelimited_batches
    assert port.ratelimited_batches >= 1
    assert port._retry_hints == {}


def test_buckets_are_per_tenant():
    service = _service(rate=1.0, burst=4.0)
    a = service.register_job(1, 1)
    b = service.register_job(2, 1)
    # Tenant A drains its bucket; tenant B's is untouched.
    assert a.receive_batch(0, _batch(0, [0, 1, 2, 3]), seq=0) is True
    assert a.receive_batch(0, _batch(0, [3]), seq=1) is False
    assert b.receive_batch(0, _batch(0, [0, 1, 2, 3]), seq=0) is True
    assert a.ratelimited_batches == 1
    assert b.ratelimited_batches == 0


def test_unsequenced_ingest_bypasses_rate_limit():
    # Direct deliveries have no retry path; like admission control, the
    # bucket never rejects them.
    service = _service(rate=1.0, burst=1.0)
    port = service.register_job(0, 1)
    for i in range(3):
        assert port.receive_batch(0, _batch(0, [2 * i, 2 * i + 1])) is True
    assert port.ratelimited_batches == 0
    service.finish()
    assert port.stored_summaries == 6
