"""Back-pressure unit tests: bounded queues, retry-after, exactly-once.

A slow shard with a full bounded queue must (a) reject with a
retry-after admission decision that leaves the sequence number
unconsumed, (b) have ``ReliableTransport`` honor that hint instead of
its own backoff, (c) never drop or double-apply a batch (watermark
dedup holds end to end), and (d) account every rejection in the
``service.backpressure.*`` counters.
"""

from __future__ import annotations

from repro.obs import Obs
from repro.runtime.channel import perfect_channel
from repro.runtime.transport import ReliableTransport, RetryPolicy
from repro.sensors.model import SensorType
from repro.service import AnalysisService, ShardCostModel
from tests.service.util import make_summary


def _slow_service(base_us=10_000.0, queue_limit=1, n_shards=1, obs=None):
    return AnalysisService(
        n_shards,
        window_us=2000.0,
        queue_limit=queue_limit,
        cost=ShardCostModel(base_us=base_us),
        obs=obs,
    )


def _batch(rank, slices, sensor=1):
    return [
        make_summary(rank, sensor, SensorType.COMPUTATION, "", s, 10.0 + s)
        for s in slices
    ]


def _drive_to_quiescence(service, transport):
    """The api-layer drive loop: pump shards, then the transport, at each
    next event time until nothing is pending."""
    while transport._pending or transport.channel.pending():
        targets = [p.next_retry_at for p in transport._pending.values()]
        due = transport.channel.next_due()
        if due is not None:
            targets.append(due)
        if not targets:
            break
        t = min(targets)
        service.pump(t)
        transport.pump(t)
    service.finish()


def test_full_queue_rejects_with_retry_after_and_keeps_seq_unconsumed():
    service = _slow_service()
    port = service.register_job(0, 1)
    assert port.receive_batch(0, _batch(0, [0]), seq=0) is True
    # Queue (capacity 1) is now occupied and the shard is busy until
    # t=10000: the next sequenced batch must be rejected.
    assert port.receive_batch(0, _batch(0, [1]), seq=1) is False
    assert port.rejected_batches == 1
    # The sequence number was not consumed — the redelivery will be new.
    assert not port.is_acked(0, 1)
    assert port.ack_watermark(0) == 0
    hint = port.pop_retry_hint(0, 1)
    assert hint is not None and hint >= 10_000.0
    # One-shot: the transport popped it, a second probe finds nothing.
    assert port.pop_retry_hint(0, 1) is None
    # At the hinted time the head has been applied and capacity is back.
    service.pump(hint)
    assert port.receive_batch(0, _batch(0, [1]), seq=1) is True
    service.finish()
    assert port.stored_summaries == 2
    assert port.ack_watermark(0) == 1


def test_transport_honors_retry_after_over_its_own_backoff():
    service = _slow_service(base_us=10_000.0)
    port = service.register_job(0, 1)
    transport = ReliableTransport(
        server=port,  # type: ignore[arg-type]
        channel=perfect_channel(),
        policy=RetryPolicy(timeout_us=100.0, max_attempts=50),
        job_id=0,
    )
    transport.send_batch(0, _batch(0, [0]), now=0.0)
    transport.send_batch(0, _batch(0, [1]), now=0.0)  # rejected, hint=10000
    pending = transport._pending[(0, 0, 1)]
    assert pending.next_retry_at == 10_000.0  # hint, not clock + 100
    sent_before = transport.channel.stats.sent
    transport.pump(5_000.0)  # before the hint: no retransmit
    assert transport.channel.stats.sent == sent_before
    _drive_to_quiescence(service, transport)
    assert port.stored_summaries == 2
    assert transport.gave_up == {}
    # The deferred copy was on time, not late.
    assert transport.channel.stats.late == 0


def test_no_drop_no_double_apply_under_sustained_pressure():
    obs = Obs.create()
    service = _slow_service(base_us=5_000.0, obs=obs)
    port = service.register_job(0, 2)
    transport = ReliableTransport(
        server=port,  # type: ignore[arg-type]
        channel=perfect_channel(),
        policy=RetryPolicy(timeout_us=1_000.0, max_attempts=60),
        metrics=obs.metrics,
        job_id=0,
    )
    n_batches = 8
    for i in range(n_batches):
        transport.send_batch(0, _batch(0, [2 * i, 2 * i + 1]), now=i * 100.0)
    _drive_to_quiescence(service, transport)

    # Exactly-once effect: every row stored once, nothing dropped.
    assert port.stored_summaries == 2 * n_batches
    assert port.ack_watermark(0) == n_batches - 1
    assert transport.gave_up == {}
    shard_server = service.shards[0].servers[0]
    assert shard_server.duplicate_batches == 0
    assert shard_server.duplicate_summaries == 0

    # Every rejection is accounted: the front counter, the per-port
    # tally, and the transport's deferral counter all agree, and every
    # parked hint was consumed.
    counters = obs.metrics.as_dict()["counters"]
    rejected = counters.get("service.backpressure.rejected", 0)
    assert rejected >= 1
    assert port.rejected_batches == rejected
    assert counters.get("transport.backpressure_deferred", 0) == rejected
    assert port._retry_hints == {}


def test_tenants_do_not_share_blame_for_backpressure():
    """Two jobs hitting one slow shard: rejections are counted per port,
    and both jobs' data still lands exactly once."""
    obs = Obs.create()
    service = _slow_service(base_us=4_000.0, queue_limit=1, obs=obs)
    ports = {j: service.register_job(j, 1) for j in (1, 2)}
    transports = {
        j: ReliableTransport(
            server=ports[j],  # type: ignore[arg-type]
            channel=perfect_channel(),
            policy=RetryPolicy(timeout_us=500.0, max_attempts=60),
            metrics=obs.metrics,
            job_id=j,
        )
        for j in (1, 2)
    }
    for i in range(4):
        for j in (1, 2):
            transports[j].send_batch(0, _batch(0, [i]), now=i * 50.0)
    # Drive both transports together against the shared shards.
    while any(t._pending or t.channel.pending() for t in transports.values()):
        targets = []
        for t in transports.values():
            targets.extend(p.next_retry_at for p in t._pending.values())
            due = t.channel.next_due()
            if due is not None:
                targets.append(due)
        if not targets:
            break
        now = min(targets)
        service.pump(now)
        for t in transports.values():
            t.pump(now)
    service.finish()
    for j in (1, 2):
        assert ports[j].stored_summaries == 4
        assert ports[j].ack_watermark(0) == 3
        assert transports[j].gave_up == {}
    counters = obs.metrics.as_dict()["counters"]
    total_rejected = counters.get("service.backpressure.rejected", 0)
    assert total_rejected == sum(p.rejected_batches for p in ports.values())


def test_unsequenced_direct_ingest_bypasses_admission_control():
    """Direct (transport-less) deliveries have no retry path, so the
    front force-enqueues them even past the bound rather than lose data."""
    service = _slow_service(base_us=10_000.0, queue_limit=1)
    port = service.register_job(0, 1)
    for i in range(3):
        assert port.receive_batch(0, _batch(0, [i])) is True
    assert port.rejected_batches == 0
    service.finish()
    assert port.stored_summaries == 3
