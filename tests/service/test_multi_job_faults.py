"""Multi-job fault injection: tenants do not perturb each other.

Two flavors of isolation, both stated as bit-identity against solo runs
through the same sharded service path:

* a tenant whose transport degrades (lossy channel + exhausted retries)
  must not change a co-resident faulted tenant's matrices, regions,
  F-score, or coverage confidence;
* two lossy-but-recovering tenants (drop 10–30%, ample retries) each
  produce exactly the report they would have produced alone, down to
  the channel counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import JobSpec, run_multi_job, run_vsensor
from repro.runtime.channel import ChannelConfig
from repro.runtime.quality import score_detection
from repro.runtime.transport import RetryPolicy
from repro.sensors.model import SensorType
from repro.sim import MachineConfig
from repro.sim.faults import CpuContention
from tests.conftest import SIMPLE_MPI_PROGRAM


def _machine(seed: int) -> MachineConfig:
    return MachineConfig(n_ranks=4, ranks_per_node=2, seed=seed)


@pytest.fixture(scope="module")
def span() -> float:
    probe = run_vsensor(SIMPLE_MPI_PROGRAM, _machine(11), store=None)
    return probe.sim.total_time


def _run_kwargs(span: float) -> dict:
    return dict(
        n_shards=3,
        window_us=span / 10,
        batch_period_us=span / 10,
        store=None,
    )


def _assert_reports_identical(a, b) -> None:
    assert set(a.matrices) == set(b.matrices)
    for stype in a.matrices:
        assert np.array_equal(
            a.matrices[stype], b.matrices[stype], equal_nan=True
        ), f"{stype} matrix differs between solo and combined runs"
    assert set(a.rank_means) == set(b.rank_means)
    for stype in a.rank_means:
        assert np.array_equal(
            a.rank_means[stype], b.rank_means[stype], equal_nan=True
        )
    assert a.regions == b.regions
    assert a.inter_events == b.inter_events
    assert a.coverage_confidence == b.coverage_confidence
    assert a.degraded_ranks == b.degraded_ranks
    assert a.duplicate_batches == b.duplicate_batches


def test_degraded_tenant_does_not_perturb_faulted_tenant(span):
    machine_a = _machine(11)
    faults = [
        CpuContention(node_ids=(1,), t0=0.2 * span, t1=0.6 * span, cpu_factor=0.25)
    ]
    spec_a = JobSpec(SIMPLE_MPI_PROGRAM, machine_a, faults=faults)
    # Tenant B: 30% drop and a single send attempt per batch — its ranks
    # are guaranteed to exhaust retries and be marked degraded.
    spec_b = JobSpec(
        SIMPLE_MPI_PROGRAM,
        _machine(23),
        channel=ChannelConfig(drop_rate=0.3, dup_rate=0.1, reorder_rate=0.2, seed=7),
        retry_policy=RetryPolicy(timeout_us=span / 50, max_attempts=1),
    )
    kw = _run_kwargs(span)
    solo = run_multi_job([spec_a], **kw)
    combined = run_multi_job([spec_a, spec_b], **kw)

    # B really is a degraded tenant in the combined run.
    report_b = combined.jobs[1].report
    assert combined.jobs[1].channel_stats["dropped"] > 0
    assert report_b.degraded_ranks != ()

    # A's entire analysis is unchanged by B's presence and damage.
    report_solo = solo.jobs[0].report
    report_combined = combined.jobs[0].report
    _assert_reports_identical(report_solo, report_combined)

    score_solo = score_detection(report_solo, faults, machine_a)
    score_combined = score_detection(report_combined, faults, machine_a)
    assert score_combined.f_score == score_solo.f_score
    assert score_combined.recall == score_solo.recall
    assert score_combined.f_score > 0.0  # the fault was actually found


def test_lossy_tenants_each_match_their_solo_reports(span):
    """Two tenants on 10% and 30% lossy channels with ample retries:
    the transport recovers everything and each job's combined-run report
    is bit-identical to its solo run — including the channel counters."""
    policy = RetryPolicy(timeout_us=span / 50, max_attempts=30)
    spec_a = JobSpec(
        SIMPLE_MPI_PROGRAM,
        _machine(31),
        channel=ChannelConfig(drop_rate=0.1, dup_rate=0.1, reorder_rate=0.3, seed=5),
        retry_policy=policy,
    )
    spec_b = JobSpec(
        SIMPLE_MPI_PROGRAM,
        _machine(47),
        channel=ChannelConfig(drop_rate=0.3, dup_rate=0.05, reorder_rate=0.2, seed=9),
        retry_policy=policy,
    )
    kw = _run_kwargs(span)
    solo_a = run_multi_job([spec_a], **kw)
    solo_b = run_multi_job([spec_b], **kw)
    combined = run_multi_job([spec_a, spec_b], **kw)

    for job_id, solo in ((0, solo_a), (1, solo_b)):
        solo_run = solo.jobs[0]
        combined_run = combined.jobs[job_id]
        _assert_reports_identical(solo_run.report, combined_run.report)
        assert combined_run.channel_stats == solo_run.channel_stats
        # Loss actually happened and was repaired, not avoided.
        assert combined_run.channel_stats["dropped"] > 0
        assert combined_run.report.degraded_ranks == ()
        assert combined_run.report.coverage_confidence == pytest.approx(
            solo_run.report.coverage_confidence
        )


def test_clean_tenant_sees_no_variance_from_neighbor_fault(span):
    """A clean tenant sharing shards with a heavily faulted tenant must
    report the same (empty) inter-process picture as when alone."""
    faults = [
        CpuContention(node_ids=(0, 1), t0=0.1 * span, t1=0.9 * span, cpu_factor=0.1)
    ]
    spec_faulted = JobSpec(SIMPLE_MPI_PROGRAM, _machine(61), faults=faults)
    spec_clean = JobSpec(SIMPLE_MPI_PROGRAM, _machine(71))
    kw = _run_kwargs(span)
    solo_clean = run_multi_job([spec_clean], **kw)
    combined = run_multi_job([spec_faulted, spec_clean], **kw)
    _assert_reports_identical(solo_clean.jobs[0].report, combined.jobs[1].report)
    clean_score = score_detection(
        combined.jobs[1].report, [], _machine(71)
    )
    assert clean_score.precision == 1.0  # nothing spurious leaked across tenants
