"""Differential suite: sharded service vs unsharded reference server.

The service contract is **bit-identity**: for every job, every query the
merged per-job view answers (matrices, rank means, inter-process events,
history standards, stored rows) must equal what a single unsharded
``AnalysisServer`` fed only that job's records would answer — for any
shard count, any job count, any interleaving of jobs' batches, and any
redelivery schedule.  Approximate agreement is a failure; these mirror
the engine-equality suites of PRs 5–6 one layer up.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType
from repro.service import AnalysisService
from repro.service.router import ShardRouter
from repro.service.shard import ShardCostModel
from tests.service.util import make_summary

N_RANKS = 4


@st.composite
def job_pools(draw):
    """Per-job pools of sequenced per-rank batches with unique identities."""
    n_jobs = draw(st.integers(1, 3))
    pools = {}
    for job in range(n_jobs):
        keys = draw(
            st.sets(
                st.tuples(
                    st.integers(0, N_RANKS - 1),        # rank
                    st.sampled_from([1, 2, 3]),         # sensor
                    st.sampled_from(["", "H", "L"]),    # group
                    st.integers(0, 5),                  # slice
                ),
                min_size=1,
                max_size=25,
            )
        )
        summaries = []
        for rank, sensor_id, group, slice_index in sorted(keys):
            duration = draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
            stype = SensorType.COMPUTATION if sensor_id == 1 else SensorType.NETWORK
            summaries.append(
                make_summary(rank, sensor_id, stype, group, slice_index, duration)
            )
        batches = []
        for rank in range(N_RANKS):
            mine = [s for s in summaries if s.rank == rank]
            size = draw(st.integers(1, 4))
            for seq, start in enumerate(range(0, len(mine), size)):
                batches.append((rank, mine[start : start + size], seq))
        pools[job] = batches
    return pools


def _reference_for(batches) -> AnalysisServer:
    """An unsharded server fed only this job's batches, in pool order."""
    ref = AnalysisServer(n_ranks=N_RANKS, window_us=2000.0, engine="reference")
    for rank, batch, seq in batches:
        ref.receive_batch(rank, list(batch), seq=seq)
    return ref


def _assert_job_equivalent(port, ref: AnalysisServer) -> None:
    for stype in SensorType:
        assert np.array_equal(
            ref.performance_matrix(stype), port.performance_matrix(stype), equal_nan=True
        ), f"{stype} matrix differs"
        assert np.array_equal(
            ref.mean_rank_performance(stype),
            port.mean_rank_performance(stype),
            equal_nan=True,
        )
    assert ref.detect_inter_process() == port.detect_inter_process()
    assert ref.history._standard == port.history._standard
    assert ref.stored_summaries == port.stored_summaries
    assert ref.duplicate_summaries == port.duplicate_summaries


@given(
    pools=job_pools(),
    n_shards=st.integers(1, 6),
    order_seed=st.integers(0, 2**32 - 1),
    dup_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_sharded_queries_bit_identical_under_redelivery(
    pools, n_shards, order_seed, dup_seed
):
    """Jobs' batches interleaved in random global order, with random
    redelivery: every job's merged view matches its solo reference."""
    rng = random.Random(dup_seed)
    stream = [
        (job, rank, batch, seq)
        for job, batches in pools.items()
        for rank, batch, seq in batches
    ]
    stream += [item for item in stream if rng.random() < 0.4]
    random.Random(order_seed).shuffle(stream)

    service = AnalysisService(n_shards, window_us=2000.0)
    ports = {job: service.register_job(job, N_RANKS) for job in pools}
    refs = {job: AnalysisServer(n_ranks=N_RANKS, window_us=2000.0, engine="reference")
            for job in pools}
    for job, rank, batch, seq in stream:
        accepted_port = ports[job].receive_batch(rank, list(batch), seq=seq)
        accepted_ref = refs[job].receive_batch(rank, list(batch), seq=seq)
        assert accepted_port == accepted_ref
    service.finish()
    for job in pools:
        _assert_job_equivalent(ports[job], refs[job])
        # The front's per-job accounting matches the solo server's too:
        # same deliveries went into both.
        port = ports[job]
        ref = refs[job]
        assert port.batches_received == ref.batches_received
        assert port.bytes_received == ref.bytes_received
        assert port.duplicate_batches == ref.duplicate_batches
        assert port.summaries_received == ref.summaries_received


@given(
    pools=job_pools(),
    n_shards=st.integers(1, 4),
    order_seed=st.integers(0, 2**32 - 1),
    query_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_sharded_queries_bit_identical_with_interleaved_queries(
    pools, n_shards, order_seed, query_seed
):
    """Merged-view queries between ingests (incremental merger refreshes
    mid-stream) never diverge from the reference."""
    stream = [
        (job, rank, batch, seq)
        for job, batches in pools.items()
        for rank, batch, seq in batches
    ]
    random.Random(order_seed).shuffle(stream)
    rng = random.Random(query_seed)

    service = AnalysisService(n_shards, window_us=2000.0)
    ports = {job: service.register_job(job, N_RANKS) for job in pools}
    refs = {job: AnalysisServer(n_ranks=N_RANKS, window_us=2000.0, engine="reference")
            for job in pools}
    for job, rank, batch, seq in stream:
        ports[job].receive_batch(rank, list(batch), seq=seq)
        refs[job].receive_batch(rank, list(batch), seq=seq)
        if rng.random() < 0.3:
            probe = rng.choice(sorted(pools))
            stype = rng.choice(list(SensorType))
            service.finish()  # make queued work queryable
            assert np.array_equal(
                refs[probe].performance_matrix(stype),
                ports[probe].performance_matrix(stype),
                equal_nan=True,
            )
    service.finish()
    for job in pools:
        _assert_job_equivalent(ports[job], refs[job])


@given(
    pools=job_pools(),
    order_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_sharded_with_queue_delays_still_bit_identical(pools, order_seed):
    """A nonzero deterministic cost model (queued, delayed applies) only
    changes *when* rows land in shard stores, never what queries answer
    once drained."""
    stream = [
        (job, rank, batch, seq)
        for job, batches in pools.items()
        for rank, batch, seq in batches
    ]
    random.Random(order_seed).shuffle(stream)
    service = AnalysisService(
        3,
        window_us=2000.0,
        cost=ShardCostModel(base_us=40.0, per_row_us=3.0),
        queue_limit=10_000,
    )
    ports = {job: service.register_job(job, N_RANKS) for job in pools}
    for job, rank, batch, seq in stream:
        assert ports[job].receive_batch(rank, list(batch), seq=seq) in (True, False)
    service.finish()
    for job, batches in pools.items():
        _assert_job_equivalent(ports[job], _reference_for(batches))


def test_single_shard_service_equals_unsharded_server():
    """Degenerate sharding (N=1) is exactly the unsharded server."""
    batches = []
    for rank in range(N_RANKS):
        for seq in range(3):
            batches.append(
                (
                    rank,
                    [
                        make_summary(
                            rank, s, SensorType.COMPUTATION, "", seq, 10.0 + rank + s
                        )
                        for s in (1, 2)
                    ],
                    seq,
                )
            )
    service = AnalysisService(1, window_us=2000.0)
    port = service.register_job(0, N_RANKS)
    for rank, batch, seq in batches:
        port.receive_batch(rank, batch, seq=seq)
    service.finish()
    _assert_job_equivalent(port, _reference_for(batches))


def test_job_isolation_identical_rows_do_not_collide():
    """Two jobs sending byte-identical rows stay fully isolated: neither
    sees the other's rows as duplicates, and each merged view holds its
    own copy."""
    service = AnalysisService(2, window_us=2000.0)
    a = service.register_job(1, N_RANKS)
    b = service.register_job(2, N_RANKS)
    batch = [make_summary(0, 1, SensorType.COMPUTATION, "", 0, 10.0)]
    assert a.receive_batch(0, list(batch), seq=0)
    assert b.receive_batch(0, list(batch), seq=0)
    service.finish()
    assert a.stored_summaries == 1
    assert b.stored_summaries == 1
    assert a.duplicate_summaries == 0
    assert b.duplicate_summaries == 0


def test_router_is_deterministic_and_stream_sticky():
    router = ShardRouter(5)
    other = ShardRouter(5)
    for job in range(3):
        for rank in range(4):
            for sensor in range(6):
                shard = router.shard_of(job, rank, sensor)
                assert 0 <= shard < 5
                assert shard == other.shard_of(job, rank, sensor)
    batch = [
        make_summary(0, s, SensorType.COMPUTATION, "", sl, 5.0)
        for s in (1, 2, 3)
        for sl in range(3)
    ]
    split = router.split(7, 0, batch)
    assert sum(len(rows) for rows in split.values()) == len(batch)
    for shard_id, rows in split.items():
        for s in rows:
            assert router.shard_of(7, 0, s.sensor_id) == shard_id
        # order within each sub-batch preserves the original batch order
        idx = [batch.index(s) for s in rows]
        assert idx == sorted(idx)


def test_router_spreads_streams_across_shards():
    router = ShardRouter(4)
    counts = router.placement(job=0, n_ranks=16, sensor_ids=list(range(8)))
    assert set(counts) == {0, 1, 2, 3}
    assert sum(counts.values()) == 16 * 8
    # consistent hashing with vnodes: no shard is starved or hogs >60%
    assert min(counts.values()) > 0
    assert max(counts.values()) < 0.6 * 16 * 8
