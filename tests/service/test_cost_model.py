"""ShardCostModel and the shard's measured-cost EWMA on edge batches.

Zero-row sub-batches are legal (a router split can assign a rank's rows
entirely to other shards while a sequenced marker still lands here), so
the cost model and the measured EWMA must stay finite, positive, and
monotone-sane when ``rows == 0`` — a degenerate estimate would corrupt
``busy_until`` and every retry-after hint derived from it.
"""

from __future__ import annotations

import math

from repro.service.shard import ShardCostModel, ShardWorker


class _NullServer:
    """Accepts any batch; the cost path is what is under test."""

    def receive_batch(self, rank, rows, seq=None):
        return True


def _worker(cost: ShardCostModel) -> ShardWorker:
    return ShardWorker(shard_id=0, server_factory=lambda job: _NullServer(), cost=cost)


def test_deterministic_estimate_of_zero_rows_is_base_cost():
    assert ShardCostModel(base_us=5.0, per_row_us=2.0).estimate(0) == 5.0
    assert ShardCostModel().estimate(0) == 0.0  # default: free
    assert ShardCostModel(per_row_us=3.0).estimate(4) == 12.0


def test_measured_ewma_updates_on_zero_row_batch():
    worker = _worker(ShardCostModel(measured=True))
    seed = worker._avg_cost_us
    worker.enqueue(0, 0, 0, [], now=0.0)
    worker.drain()
    # The apply was near-instant, so the EWMA moved a quarter of the way
    # from its seed toward ~0 — finite, positive, strictly below seed.
    assert math.isfinite(worker._avg_cost_us)
    assert 0.0 < worker._avg_cost_us < seed
    assert worker.applied_batches == 1
    assert worker.applied_rows == 0


def test_measured_ewma_converges_under_repeated_zero_row_batches():
    worker = _worker(ShardCostModel(measured=True))
    for seq in range(32):
        worker.enqueue(0, 0, seq, [], now=float(seq))
        worker.drain()
    # 32 quarter-steps toward ~0µs applies: well below the 100µs seed.
    assert math.isfinite(worker._avg_cost_us)
    assert 0.0 < worker._avg_cost_us < 10.0


def test_retry_after_stays_strictly_future_with_zero_row_head():
    now = 50.0
    # Deterministic zero-cost model: projected completion == enqueue
    # time, so the strictly-future clamp must kick in.
    worker = _worker(ShardCostModel())
    worker.enqueue(0, 0, 0, [], now=now)
    assert worker.retry_after(now) >= now + 1.0
    # Measured mode projects the EWMA, also strictly ahead.
    measured = _worker(ShardCostModel(measured=True))
    measured.enqueue(0, 0, 0, [], now=now)
    assert measured.retry_after(now) > now


def test_busy_until_never_regresses_across_zero_row_applies():
    worker = _worker(ShardCostModel(base_us=2.0))
    worker.enqueue(0, 0, 0, [], now=10.0)
    worker.enqueue(0, 0, 1, [], now=10.0)
    worker.drain()
    first = worker.busy_until
    assert first == 14.0  # two base-cost applies back to back
    worker.enqueue(0, 0, 2, [], now=0.0)  # stale enqueue time
    worker.drain()
    assert worker.busy_until >= first  # clock is monotone regardless
