"""Differential testing: the interpreter vs a Python ground-truth evaluator.

Hypothesis generates random integer straight-line programs; both the
simulator's interpreter and a direct Python evaluation compute the final
value of every variable, and they must agree exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_source
from repro.sim.hooks import NullHooks
from repro.sim.interp import RankInterp
from repro.sim.machine import MachineConfig
from repro.sim.noise import NoiseConfig

VARS = ["a", "b", "c", "d"]


@st.composite
def straight_line_program(draw):
    """Random sequence of integer assignments with ground truth."""
    n_stmts = draw(st.integers(min_value=1, max_value=12))
    env = {v: 0 for v in VARS}
    lines = []

    def expr_and_value(depth=0):
        kind = draw(
            st.sampled_from(
                ["lit", "var", "bin"] if depth < 3 else ["lit", "var"]
            )
        )
        if kind == "lit":
            value = draw(st.integers(min_value=-50, max_value=50))
            return (f"({value})" if value < 0 else str(value)), value
        if kind == "var":
            name = draw(st.sampled_from(VARS))
            return name, env[name]
        op = draw(st.sampled_from(["+", "-", "*"]))
        left_text, left_val = expr_and_value(depth + 1)
        right_text, right_val = expr_and_value(depth + 1)
        value = {"+": left_val + right_val, "-": left_val - right_val, "*": left_val * right_val}[op]
        return f"({left_text} {op} {right_text})", value

    for _ in range(n_stmts):
        target = draw(st.sampled_from(VARS))
        text, value = expr_and_value()
        lines.append(f"{target} = {text};")
        env[target] = value

    decls = " ".join(f"global int {v};" for v in VARS)
    body = "\n    ".join(lines)
    src = f"{decls}\nint main() {{\n    {body}\n    return 0;\n}}"
    return src, env


def run_program(src):
    machine = MachineConfig(
        n_ranks=1,
        ranks_per_node=1,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )
    interp = RankInterp(
        module=parse_source(src),
        rank=0,
        n_ranks=1,
        machine=machine,
        faults=(),
        hooks=NullHooks(),
    )
    for _ in interp.run():
        raise AssertionError("straight-line program blocked on MPI")
    return interp.globals


@given(program=straight_line_program())
@settings(max_examples=150, deadline=None)
def test_interpreter_matches_python_ground_truth(program):
    src, expected = program
    final = run_program(src)
    for var, value in expected.items():
        assert final[var] == value, f"{var}: interpreter={final[var]} python={value}\n{src}"


@given(
    values=st.lists(st.integers(min_value=-30, max_value=30), min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_loop_accumulation_matches(values):
    """Summing a list via an unrolled global-array loop matches Python."""
    n = len(values)
    stores = " ".join(f"xs[{i}] = {v};" if v >= 0 else f"xs[{i}] = 0 - {-v};" for i, v in enumerate(values))
    src = f"""
    global int xs[{n}];
    global int total;
    int main() {{
        int i;
        {stores}
        for (i = 0; i < {n}; i = i + 1) total = total + xs[i];
        return 0;
    }}
    """
    final = run_program(src)
    assert final["total"] == sum(values)


@given(n=st.integers(min_value=0, max_value=30), m=st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_nested_loop_trip_product(n, m):
    src = f"""
    global int count;
    int main() {{
        int i; int j;
        for (i = 0; i < {n}; i = i + 1) {{
            for (j = 0; j < {m}; j = j + 1) count = count + 1;
        }}
        return 0;
    }}
    """
    assert run_program(src)["count"] == n * m
