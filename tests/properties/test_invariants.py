"""Property-based tests of core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.history import SensorHistory
from repro.runtime.records import SensorRecord
from repro.runtime.smoothing import SliceAggregator
from repro.sensors.model import SensorType


# ---------------------------------------------------------------------------
# History invariants (§5.2-§5.3)
# ---------------------------------------------------------------------------


@given(durations=st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=200, deadline=None)
def test_history_normalized_performance_bounded(durations):
    """Normalized performance is always in (0, 1]."""
    history = SensorHistory()
    for d in durations:
        perf = history.observe(1, "", d)
        assert 0.0 < perf <= 1.0


@given(durations=st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=200, deadline=None)
def test_history_standard_is_running_minimum(durations):
    history = SensorHistory()
    for d in durations:
        history.observe(1, "", d)
    assert history.standard_time(1) == pytest.approx(min(durations))


@given(
    durations=st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_history_fastest_scores_one(durations):
    history = SensorHistory()
    perfs = [history.observe(7, "", d) for d in durations]
    best_index = int(np.argmin(durations))
    assert perfs[best_index] == 1.0


# ---------------------------------------------------------------------------
# Smoothing invariants (§5.1)
# ---------------------------------------------------------------------------


def _records(times_and_durations):
    out = []
    for t_end, dur in times_and_durations:
        out.append(
            SensorRecord(
                rank=0,
                sensor_id=1,
                sensor_type=SensorType.COMPUTATION,
                t_start=t_end - dur,
                t_end=t_end,
                instructions=1.0,
                cache_miss_rate=0.1,
            )
        )
    return out


@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=300),
    slice_us=st.sampled_from([10.0, 100.0, 1000.0]),
)
@settings(max_examples=100, deadline=None)
def test_smoothing_conserves_count_and_mass(durations, slice_us):
    """Every record lands in exactly one summary; total duration is
    conserved by the count-weighted means."""
    agg = SliceAggregator(rank=0, slice_us=slice_us)
    t = 0.0
    records = []
    for d in durations:
        t += d + 1.0
        records.append((t, d))
    summaries = []
    for rec in _records(records):
        summaries.extend(agg.add(rec))
    summaries.extend(agg.flush())

    assert sum(s.count for s in summaries) == len(durations)
    total = sum(s.mean_duration * s.count for s in summaries)
    assert total == pytest.approx(sum(durations), rel=1e-9)


@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=300),
)
@settings(max_examples=100, deadline=None)
def test_smoothing_means_within_extremes(durations):
    agg = SliceAggregator(rank=0, slice_us=100.0)
    t = 0.0
    summaries = []
    for d in durations:
        t += d + 1.0
        summaries.extend(agg.add(_records([(t, d)])[0]))
    summaries.extend(agg.flush())
    lo, hi = min(durations), max(durations)
    for s in summaries:
        assert lo - 1e-9 <= s.mean_duration <= hi + 1e-9


@given(durations=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_smoothing_slice_indices_monotone(durations):
    agg = SliceAggregator(rank=0, slice_us=50.0)
    t = 0.0
    indices = []
    for d in durations:
        t += d
        for s in agg.add(_records([(t, d)])[0]):
            indices.append(s.slice_index)
    for s in agg.flush():
        indices.append(s.slice_index)
    assert indices == sorted(indices)


# ---------------------------------------------------------------------------
# Sense statistics invariants (Fig. 15)
# ---------------------------------------------------------------------------


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e5),
            st.floats(min_value=0.1, max_value=1e3),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=100, deadline=None)
def test_sense_coverage_bounded(data):
    from repro.viz.figures import sense_stats

    starts = np.array([s for s, _ in data])
    ends = starts + np.array([d for _, d in data])
    total = float(ends.max()) + 1.0
    stats = sense_stats(starts, ends, total)
    assert 0.0 < stats.coverage <= 1.0


# ---------------------------------------------------------------------------
# Clock invariants
# ---------------------------------------------------------------------------


@given(
    chunks=st.lists(st.floats(min_value=0.1, max_value=500.0), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_clock_time_monotone_and_additive(chunks):
    """Advancing in chunks is equivalent to advancing once (noise-free),
    and time never decreases."""
    from repro.sim.clock import RankClock
    from repro.sim.machine import MachineConfig, NodeConfig
    from repro.sim.noise import NodeNoise, NoiseConfig

    cfg = NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0)

    def fresh():
        machine = MachineConfig(n_ranks=1, ranks_per_node=1, noise=cfg, mem_fraction=0.0)
        return RankClock(
            rank=0,
            node=NodeConfig(node_id=0),
            noise=NodeNoise(cfg, seed=1, node_id=0),
            machine=machine,
            faults=(),
        )

    stepped = fresh()
    prev = 0.0
    for c in chunks:
        _, now = stepped.advance_compute(c)
        assert now >= prev
        prev = now

    bulk = fresh()
    bulk.advance_compute(sum(chunks))
    assert stepped.now == pytest.approx(bulk.now, rel=1e-9)


# ---------------------------------------------------------------------------
# Identification soundness on generated loop nests
# ---------------------------------------------------------------------------


@st.composite
def loop_nest_program(draw):
    """A random 2-3 deep loop nest where each loop bound is either a
    constant (fixed) or the enclosing loop's index (variant)."""
    depth = draw(st.integers(min_value=2, max_value=3))
    bounds = []
    for level in range(depth):
        if level == 0:
            bounds.append(("const", draw(st.integers(min_value=2, max_value=9))))
        else:
            bounds.append(
                draw(
                    st.one_of(
                        st.tuples(st.just("const"), st.integers(min_value=2, max_value=9)),
                        st.just(("outer", 0)),
                    )
                )
            )
    names = ["i", "j", "k"][:depth]
    body = "count = count + 1;"
    for level in reversed(range(depth)):
        kind, value = bounds[level]
        bound = str(value) if kind == "const" else names[level - 1]
        body = f"for ({names[level]} = 0; {names[level]} < {bound}; {names[level]} = {names[level]} + 1) {{ {body} }}"
    decls = " ".join(f"int {n};" for n in names)
    src = f"global int count = 0;\nint main() {{ {decls} {body} return 0; }}"
    return src, bounds


@given(program=loop_nest_program())
@settings(max_examples=80, deadline=None)
def test_identification_soundness_on_loop_nests(program):
    """A nested loop is a sensor of its parent iff its bound chain below
    the parent is all-constant — checked against the generator's ground
    truth."""
    from repro.frontend.parser import parse_source
    from repro.sensors import SnippetKind, identify_vsensors

    src, bounds = program
    result = identify_vsensors(parse_source(src))
    loop_sensors = [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP]

    # Ground truth: loop at level L (>=1) is a sensor of its parent iff its
    # own bound is constant.  (Deeper fixedness also requires the chain up.)
    sensor_levels = set()
    for level in range(1, len(bounds)):
        if bounds[level][0] == "const":
            sensor_levels.add(level)
    found_levels = {s.snippet.depth for s in loop_sensors}
    assert found_levels == sensor_levels
