"""Delivery-order invariance of the analysis server (hypothesis).

The transport layer guarantees at-least-once delivery, not ordered
exactly-once delivery — so the server's matrices and inter-process
verdicts must be *bit-identical* under any permutation and any amount of
redelivery of the batch stream, as long as nothing is permanently lost
(loss = 0 after retries).  These properties pin that contract, both on
synthetic batch pools and on batches captured from a real simulated run.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType

N_RANKS = 4


def _summary(rank, sensor_id, stype, group, slice_index, duration, miss=0.1):
    return SliceSummary(
        rank=rank,
        sensor_id=sensor_id,
        sensor_type=stype,
        group=group,
        slice_index=slice_index,
        t_slice_start=slice_index * 1000.0,
        mean_duration=duration,
        count=3,
        mean_cache_miss=miss,
    )


@st.composite
def batch_pools(draw):
    """A pool of per-rank batches with unique summary identities."""
    keys = draw(
        st.sets(
            st.tuples(
                st.integers(0, N_RANKS - 1),        # rank
                st.sampled_from([1, 2]),            # sensor
                st.sampled_from(["", "H", "L"]),    # group
                st.integers(0, 5),                  # slice
            ),
            min_size=1,
            max_size=40,
        )
    )
    summaries = []
    for rank, sensor_id, group, slice_index in sorted(keys):
        duration = draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        stype = SensorType.COMPUTATION if sensor_id == 1 else SensorType.NETWORK
        summaries.append(_summary(rank, sensor_id, stype, group, slice_index, duration))
    # Chunk each rank's summaries into batches and number them.
    batches = []
    for rank in range(N_RANKS):
        mine = [s for s in summaries if s.rank == rank]
        size = draw(st.integers(1, 4))
        for seq, start in enumerate(range(0, len(mine), size)):
            batches.append((rank, mine[start : start + size], seq))
    return batches


def _deliver(batches) -> AnalysisServer:
    server = AnalysisServer(n_ranks=N_RANKS, window_us=2000.0)
    for rank, batch, seq in batches:
        server.receive_batch(rank, list(batch), seq=seq)
    server.detect_inter_process()
    return server


def _assert_equivalent(a: AnalysisServer, b: AnalysisServer) -> None:
    for stype in SensorType:
        assert np.array_equal(
            a.performance_matrix(stype), b.performance_matrix(stype), equal_nan=True
        ), f"{stype} matrix differs"
    assert a.inter_events == b.inter_events
    assert a.degraded == b.degraded


@given(pool=batch_pools(), order_seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_matrices_invariant_under_permutation(pool, order_seed):
    baseline = _deliver(pool)
    shuffled = list(pool)
    random.Random(order_seed).shuffle(shuffled)
    _assert_equivalent(baseline, _deliver(shuffled))


@given(
    pool=batch_pools(),
    order_seed=st.integers(0, 2**32 - 1),
    dup_seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_matrices_invariant_under_permutation_plus_duplication(pool, order_seed, dup_seed):
    baseline = _deliver(pool)
    rng = random.Random(dup_seed)
    redelivered = list(pool) + [b for b in pool if rng.random() < 0.5]
    random.Random(order_seed).shuffle(redelivered)
    replayed = _deliver(redelivered)
    _assert_equivalent(baseline, replayed)
    assert replayed.duplicate_batches == len(redelivered) - len(pool)


# -- the same property on batches captured from a real run -------------------


class _BatchRecorder:
    """Duck-typed server stand-in that records the rank batch stream."""

    batch_period_us = 2_000.0

    def __init__(self):
        self.batches: list[tuple[int, tuple]] = []

    def receive_batch(self, rank, summaries):
        self.batches.append((rank, tuple(summaries)))


@pytest.fixture(scope="module")
def real_batches():
    from repro.api import compile_and_instrument
    from repro.runtime.vsensor_hooks import VSensorRuntime
    from repro.sim import MachineConfig, Simulator
    from tests.conftest import SIMPLE_MPI_PROGRAM

    static = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    recorder = _BatchRecorder()
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=N_RANKS,
        server=recorder,  # type: ignore[arg-type]
    )
    machine = MachineConfig(n_ranks=N_RANKS, ranks_per_node=2)
    Simulator(static.program.module, machine, sensors=static.program.sensors).run(runtime)
    seqs: dict[int, int] = {}
    numbered = []
    for rank, batch in recorder.batches:
        seq = seqs.get(rank, 0)
        seqs[rank] = seq + 1
        numbered.append((rank, batch, seq))
    assert len(numbered) >= N_RANKS
    return numbered


@given(order_seed=st.integers(0, 2**32 - 1), dup_seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_real_run_batches_invariant(real_batches, order_seed, dup_seed):
    baseline = _deliver(real_batches)
    rng = random.Random(dup_seed)
    redelivered = list(real_batches) + [b for b in real_batches if rng.random() < 0.3]
    random.Random(order_seed).shuffle(redelivered)
    _assert_equivalent(baseline, _deliver(redelivered))
