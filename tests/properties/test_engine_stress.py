"""Engine stress: randomized well-formed MPI schedules never deadlock.

Hypothesis generates SPMD programs with random (but collectively
consistent) sequences of collectives, pairwise exchanges and compute
bursts; every run must terminate with all ranks finishing and identical
match counts across repeats (determinism).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_source
from repro.sim import MachineConfig, Simulator
from repro.sim.noise import NoiseConfig

N_RANKS = 4


def quiet_machine():
    return MachineConfig(
        n_ranks=N_RANKS,
        ranks_per_node=2,
        noise=NoiseConfig(jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0),
    )


_OPS = st.sampled_from(
    [
        "MPI_Barrier();",
        "MPI_Allreduce(16);",
        "MPI_Alltoall(32);",
        "MPI_Bcast(0, 8);",
        "MPI_Allgather(8);",
        "compute_units(50);",
        # pairwise exchange: even<->odd neighbour
        "pairwise();",
        # ring exchange
        "ring();",
    ]
)

_PRELUDE = """
void pairwise() {
    int r; int peer;
    r = MPI_Comm_rank();
    if (r % 2 == 0) peer = r + 1;
    else peer = r - 1;
    if (peer < MPI_Comm_size()) MPI_Sendrecv(peer, 16);
}
void ring() {
    int r; int size; int peer;
    r = MPI_Comm_rank();
    size = MPI_Comm_size();
    peer = r + 1;
    if (peer >= size) peer = 0;
    MPI_Sendrecv(peer, 16);
}
"""


@given(ops=st.lists(_OPS, min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_random_schedules_terminate(ops):
    body = "\n        ".join(ops)
    src = f"""
    {_PRELUDE}
    int main() {{
        {body}
        return 0;
    }}
    """
    module = parse_source(src)
    result = Simulator(module, quiet_machine()).run()
    assert result.n_ranks == N_RANKS
    assert all(r.finish_time >= 0 for r in result.ranks)


@given(ops=st.lists(_OPS, min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_random_schedules_deterministic(ops):
    body = "\n        ".join(ops)
    src = f"""
    {_PRELUDE}
    int main() {{
        {body}
        return 0;
    }}
    """
    module = parse_source(src)
    a = Simulator(module, quiet_machine()).run()
    b = Simulator(module, quiet_machine()).run()
    assert a.total_time == b.total_time
    assert a.mpi_matches == b.mpi_matches


@given(
    bursts=st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_skewed_compute_then_barrier_converges(bursts):
    """Rank-dependent compute followed by a barrier: everyone leaves the
    barrier at the same time regardless of skew."""
    lines = []
    for i, burst in enumerate(bursts):
        lines.append(f"if (MPI_Comm_rank() == {i % N_RANKS}) compute_units({burst});")
        lines.append("MPI_Barrier();")
    src = "int main() {\n" + "\n".join(lines) + "\nreturn 0;\n}"
    result = Simulator(parse_source(src), quiet_machine()).run()
    times = result.finish_times()
    assert max(times) - min(times) < 1e-6
