"""Property tests of the instrumentation-selection invariants (§4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.parser import parse_source
from repro.instrument import select_sensors
from repro.sensors import identify_vsensors
from repro.sensors.asttools import subtree_ids


@st.composite
def random_program(draw):
    """A random SPMD-ish program from a small grammar: nested constant or
    variant loops, calls to one of two helper functions, MPI ops."""
    n_top = draw(st.integers(min_value=1, max_value=3))
    pieces = []
    for i in range(n_top):
        kind = draw(st.sampled_from(["const_loop", "variant_loop", "call", "mpi"]))
        if kind == "const_loop":
            bound = draw(st.integers(min_value=2, max_value=9))
            inner = draw(st.sampled_from(["c = c + 1;", "helper();", "compute_units(4);"]))
            pieces.append(f"for (k = 0; k < {bound}; k = k + 1) {{ {inner} }}")
        elif kind == "variant_loop":
            pieces.append("for (k = 0; k < n + 1; k = k + 1) { c = c + 1; }")
        elif kind == "call":
            pieces.append(draw(st.sampled_from(["helper();", "helper2(5);", "helper2(n);"])))
        else:
            pieces.append(draw(st.sampled_from(["MPI_Barrier();", "MPI_Allreduce(8);"])))
    body = "\n            ".join(pieces)
    return f"""
    global int c = 0;
    void helper() {{ int i; for (i = 0; i < 6; i = i + 1) c = c + 1; }}
    void helper2(int m) {{ int i; for (i = 0; i < m; i = i + 1) c = c + 1; }}
    int main() {{
        int n; int k;
        for (n = 0; n < 12; n = n + 1) {{
            {body}
        }}
        return 0;
    }}
    """


@given(src=random_program())
@settings(max_examples=80, deadline=None)
def test_selection_invariants(src):
    result = identify_vsensors(parse_source(src))
    plan = select_sensors(result)

    # 1. Selected sensors are a subset of identified sensors.
    sensor_ids = {s.sensor_id for s in result.sensors}
    for sensor in plan.selected:
        assert sensor.sensor_id in sensor_ids

    # 2. Every selected sensor is global (the scope rule).
    assert all(s.is_global for s in plan.selected)

    # 3. No two selected sensors nest within one function.
    for a in plan.selected:
        sub_a = subtree_ids(a.snippet.node)
        for b in plan.selected:
            if a is b or a.function != b.function:
                continue
            assert b.sensor_id not in sub_a, "AST-nested sensors both selected"

    # 4. The partition accounting is total: every identified sensor is
    # selected or in exactly one rejection bucket.
    rejected = (
        {s.sensor_id for s in plan.rejected_scope}
        | {s.sensor_id for s in plan.rejected_depth}
        | {s.sensor_id for s in plan.rejected_nested}
        | {s.sensor_id for s in plan.rejected_tiny}
    )
    selected = {s.sensor_id for s in plan.selected}
    assert selected | rejected == sensor_ids
    assert not (selected & rejected)


@given(src=random_program())
@settings(max_examples=40, deadline=None)
def test_instrumented_source_always_reparses(src):
    from repro.instrument import instrument_module

    module = parse_source(src)
    result = identify_vsensors(module)
    plan = select_sensors(result)
    program = instrument_module(module, plan.selected)
    reparsed = parse_source(program.source)
    assert reparsed.has_function("main")
    # Probe pairs are balanced.
    assert program.source.count("vs_tick") == program.source.count("vs_tock")


@given(src=random_program(), depth=st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_depth_cut_respected(src, depth):
    result = identify_vsensors(parse_source(src))
    plan = select_sensors(result, max_depth=depth)
    assert all(s.snippet.depth < depth for s in plan.selected)
