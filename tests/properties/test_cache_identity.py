"""Cache transparency property (hypothesis).

For arbitrary (workload, config) pairs, compiling through a warm artifact
cache must be *bit-identical* to a fresh uncached compile — emitted source,
sensor registry, and selection plan alike — including after targeted
invalidation of a mid-pipeline artifact (which forces that stage to
recompute while everything downstream of it stays cached).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.api import compile_and_instrument
from repro.pipeline import ArtifactStore
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())
MID_PASSES = ["lower", "cfa", "dataflow", "identify", "select"]

configs = st.fixed_dictionaries(
    {
        "max_depth": st.integers(min_value=1, max_value=4),
        "min_estimated_work": st.sampled_from([0.0, 50.0]),
    }
)


def signature(static):
    return (
        static.source,
        sorted(static.program.sensors),
        sorted(s.sensor_id for s in static.plan.selected),
        [(d.code, str(d.span)) for d in static.diagnostics],
    )


@settings(max_examples=12, deadline=None)
@given(workload=st.sampled_from(WORKLOADS), config=configs)
def test_warm_cache_bit_identical_to_fresh(workload, config):
    source = all_workloads()[workload].source(scale=1)
    store = ArtifactStore()
    compile_and_instrument(source, filename=workload, store=store, **config)
    warm = compile_and_instrument(source, filename=workload, store=store, **config)
    fresh = compile_and_instrument(source, filename=workload, store=None, **config)
    assert warm.profile.hits == 7
    assert signature(warm) == signature(fresh)


@settings(max_examples=10, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    config=configs,
    victim=st.sampled_from(MID_PASSES),
)
def test_invalidated_mid_pipeline_artifact_recomputes_identically(
    workload, config, victim
):
    source = all_workloads()[workload].source(scale=1)
    store = ArtifactStore()
    baseline = compile_and_instrument(source, filename=workload, store=store, **config)
    store.invalidate_pass(victim)
    recomputed = compile_and_instrument(
        source, filename=workload, store=store, **config
    )
    outcome = {t.name: t.cache_hit for t in recomputed.profile.timings}
    assert outcome[victim] is False
    # keys derive from upstream keys, so everything downstream still hits
    downstream = recomputed.profile.timings[
        [t.name for t in recomputed.profile.timings].index(victim) + 1 :
    ]
    assert all(t.cache_hit for t in downstream)
    assert signature(recomputed) == signature(baseline)
