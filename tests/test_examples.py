"""Smoke tests for the example scripts (the fast ones run end to end)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "bad_node_hunt",
        "network_degradation",
        "noise_injection_study",
        "custom_program",
        "live_monitoring",
    ],
)
def test_example_importable_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "Suspect ranks" in out
    assert "[8, 9, 10, 11]" in out


def test_custom_program_runs(capsys):
    load_example("custom_program").main()
    out = capsys.readouterr().out
    assert "with the model" in out
    assert "dynamic-rule groups" in out
