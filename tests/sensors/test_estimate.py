"""Workload-estimator tests (§4 granularity estimation)."""

import pytest

from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source
from repro.sensors.estimate import WorkloadEstimator, const_value


def estimator_for(src):
    module = parse_source(src)
    return module, WorkloadEstimator(module)


def first_loop(module, fn="main"):
    return next(
        s for s in A.walk_stmts(module.function(fn).body) if isinstance(s, A.ForStmt)
    )


class TestConstValue:
    def test_literals(self):
        mod = parse_source("int main() { int x; x = 42; return 0; }")
        expr = mod.function("main").body.stmts[1].value
        assert const_value(expr) == 42

    @pytest.mark.parametrize(
        "text,expected",
        [("2 * 16", 32), ("10 - 3", 7), ("-(4)", -4), ("9 / 2", 4), ("9 % 4", 1), ("1 + 2 * 3", 7)],
    )
    def test_folding(self, text, expected):
        mod = parse_source(f"int main() {{ int x; x = {text}; return 0; }}")
        expr = mod.function("main").body.stmts[1].value
        assert const_value(expr) == expected

    def test_variable_not_folded(self):
        mod = parse_source("int main() { int x; int y; x = y + 1; return 0; }")
        expr = mod.function("main").body.stmts[2].value
        assert const_value(expr) is None

    def test_division_by_zero_unknown(self):
        mod = parse_source("int main() { int x; x = 1 / 0; return 0; }")
        expr = mod.function("main").body.stmts[1].value
        assert const_value(expr) is None


class TestTripCount:
    def test_canonical_loop(self):
        mod, est = estimator_for("int main() { int i; for (i = 0; i < 10; i = i + 1) { } return 0; }")
        assert est.trip_count(first_loop(mod)) == 10

    def test_strided_loop(self):
        mod, est = estimator_for("int main() { int i; for (i = 0; i < 10; i = i + 3) { } return 0; }")
        assert est.trip_count(first_loop(mod)) == 4  # 0,3,6,9

    def test_le_bound(self):
        mod, est = estimator_for("int main() { int i; for (i = 1; i <= 5; i = i + 1) { } return 0; }")
        assert est.trip_count(first_loop(mod)) == 5

    def test_empty_range(self):
        mod, est = estimator_for("int main() { int i; for (i = 9; i < 3; i = i + 1) { } return 0; }")
        assert est.trip_count(first_loop(mod)) == 0

    def test_variable_bound_unknown(self):
        mod, est = estimator_for(
            "int main() { int i; int n; for (i = 0; i < n; i = i + 1) { } return 0; }"
        )
        assert est.trip_count(first_loop(mod)) is None

    def test_non_canonical_step_unknown(self):
        mod, est = estimator_for(
            "int main() { int i; for (i = 0; i < 8; i = i * 2 + 1) { } return 0; }"
        )
        assert est.trip_count(first_loop(mod)) is None


class TestSnippetEstimates:
    def test_loop_estimate_scales_with_trips(self):
        mod10, est10 = estimator_for(
            "int main() { int i; for (i = 0; i < 10; i = i + 1) compute_units(5); return 0; }"
        )
        mod100, est100 = estimator_for(
            "int main() { int i; for (i = 0; i < 100; i = i + 1) compute_units(5); return 0; }"
        )
        small = est10.estimate_snippet(first_loop(mod10))
        large = est100.estimate_snippet(first_loop(mod100))
        assert small is not None and large is not None
        assert large == pytest.approx(small * 10, rel=0.2)

    def test_compute_units_counted(self):
        mod, est = estimator_for(
            "int main() { int i; for (i = 0; i < 10; i = i + 1) compute_units(50); return 0; }"
        )
        estimate = est.estimate_snippet(first_loop(mod))
        assert estimate >= 500

    def test_while_loop_unknown(self):
        mod, est = estimator_for(
            "int main() { int x = 5; while (x > 0) x = x - 1; return 0; }"
        )
        loop = next(
            s for s in A.walk_stmts(mod.function("main").body) if isinstance(s, A.WhileStmt)
        )
        assert est.estimate_snippet(loop) is None

    def test_defined_function_cost(self):
        mod, est = estimator_for(
            """
            void work() { int i; for (i = 0; i < 20; i = i + 1) compute_units(10); }
            int main() { work(); return 0; }
            """
        )
        assert est.estimate_function("work") >= 200

    def test_recursion_unknown(self):
        mod, est = estimator_for(
            "int f(int n) { if (n) return f(n - 1); return 0; } int main() { f(3); return 0; }"
        )
        assert est.estimate_function("f") is None

    def test_extern_with_const_workload(self):
        mod, est = estimator_for("int main() { MPI_Allreduce(64); return 0; }")
        call = next(
            e
            for e in A.walk_all_exprs(mod.function("main").body)
            if isinstance(e, A.CallExpr)
        )
        assert est.estimate_snippet(call) is not None

    def test_extern_with_variable_workload_unknown(self):
        mod, est = estimator_for("int main() { int n; MPI_Allreduce(n); return 0; }")
        call = next(
            e
            for e in A.walk_all_exprs(mod.function("main").body)
            if isinstance(e, A.CallExpr)
        )
        assert est.estimate_snippet(call) is None


class TestSelectionIntegration:
    def test_min_work_threshold_skips_tiny_sensors(self):
        from repro.instrument import select_sensors
        from repro.sensors import identify_vsensors

        src = """
        global int c = 0;
        void tiny() { int i; for (i = 0; i < 2; i = i + 1) c = c + 1; }
        void big() { int i; for (i = 0; i < 50; i = i + 1) compute_units(100); }
        int main() {
            int n;
            for (n = 0; n < 5; n = n + 1) { tiny(); big(); }
            return 0;
        }
        """
        result = identify_vsensors(parse_source(src))
        plain = select_sensors(result, min_estimated_work=0.0)
        filtered = select_sensors(result, min_estimated_work=100.0)
        assert len(filtered.selected) < len(plain.selected)
        names = {s.snippet.node.callee for s in filtered.selected if isinstance(s.snippet.node, A.CallExpr)}
        assert "big" in names and "tiny" not in names
