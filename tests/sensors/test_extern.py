"""Extern registry tests (§3.5 default descriptions)."""

import pytest

from repro.sensors.extern import (
    RET_ARGS,
    RET_CONST,
    RET_NONFIXED,
    RET_RANK,
    ExternModel,
    ExternRegistry,
    default_extern_registry,
)


@pytest.fixture
def registry():
    return default_extern_registry()


def test_mpi_functions_described(registry):
    for name in ["MPI_Send", "MPI_Recv", "MPI_Barrier", "MPI_Alltoall", "MPI_Allreduce", "MPI_Bcast"]:
        assert registry.known(name), name


def test_libc_functions_described(registry):
    for name in ["printf", "fread", "fwrite", "sqrt", "rand"]:
        assert registry.known(name), name


def test_undescribed_is_unknown(registry):
    assert registry.lookup("mystery") is None


def test_comm_rank_returns_rank(registry):
    assert registry.lookup("MPI_Comm_rank").ret == RET_RANK


def test_send_workload_is_count_argument(registry):
    model = registry.lookup("MPI_Send")
    assert model.workload_args == (1,)
    assert model.dest_arg == 0
    assert model.category == "net"


def test_fread_ret_nonfixed(registry):
    assert registry.lookup("fread").ret == RET_NONFIXED
    assert registry.lookup("fread").category == "io"


def test_sqrt_pure(registry):
    assert registry.lookup("sqrt").ret == RET_ARGS
    assert not registry.lookup("sqrt").probe_worthy


def test_register_custom_model():
    reg = ExternRegistry()
    reg.register(ExternModel("my_io", workload_args=(0,), ret=RET_CONST, category="io"))
    assert reg.known("my_io")
    assert reg.lookup("my_io").workload_args == (0,)


def test_copy_is_independent(registry):
    copy = registry.copy()
    copy.register(ExternModel("extra"))
    assert not registry.known("extra")
    assert copy.known("extra")


def test_user_description_enables_sensor():
    """Registering a description for an unknown extern turns snippets
    containing it into sensor candidates (the §3.5 user option)."""
    from repro.frontend.parser import parse_source
    from repro.sensors import identify_vsensors

    src = """
    int main() {
        int n;
        for (n = 0; n < 5; n = n + 1) my_transfer(0, 64);
        return 0;
    }
    """
    assert identify_vsensors(parse_source(src)).sensors == []

    reg = default_extern_registry()
    reg.register(ExternModel("my_transfer", workload_args=(1,), ret=RET_CONST, category="net", dest_arg=0))
    result = identify_vsensors(parse_source(src), externs=reg)
    assert len(result.sensors) == 1
