"""Multi-process (rank) analysis tests (§3.4)."""

from repro.frontend.parser import parse_source
from repro.sensors import SnippetKind, identify_vsensors


def ident(src):
    return identify_vsensors(parse_source(src))


def test_rank_in_branch_marks_rank_variant():
    result = ident(
        """
        global int count = 0;
        int main() {
            int n; int k; int rank;
            rank = MPI_Comm_rank();
            for (n = 0; n < 10; n = n + 1) {
                for (k = 0; k < 8; k = k + 1) { if (rank % 2) count = count + 1; }
            }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP)
    assert not loop.rank_invariant
    # Still a sensor (fixed over iterations for a given rank).
    assert loop.is_global


def test_rank_in_bound_marks_rank_variant():
    result = ident(
        """
        global int count = 0;
        int main() {
            int n; int k; int rank;
            rank = MPI_Comm_rank();
            for (n = 0; n < 10; n = n + 1) {
                for (k = 0; k < rank + 2; k = k + 1) count = count + 1;
            }
            return 0;
        }
        """
    )
    loop = next((s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP), None)
    assert loop is not None
    assert not loop.rank_invariant


def test_gethostname_also_rank_source():
    result = ident(
        """
        global int count = 0;
        int main() {
            int n; int k; int host;
            host = gethostname();
            for (n = 0; n < 10; n = n + 1) {
                for (k = 0; k < 8; k = k + 1) { if (host > 3) count = count + 1; }
            }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP)
    assert not loop.rank_invariant


def test_comm_size_is_not_rank_dependent():
    """Comm size is identical on every process: workload stays comparable."""
    result = ident(
        """
        global int count = 0;
        int main() {
            int n; int k; int size;
            size = MPI_Comm_size();
            for (n = 0; n < 10; n = n + 1) {
                for (k = 0; k < size; k = k + 1) count = count + 1;
            }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP)
    assert loop.rank_invariant


def test_rank_dependence_propagates_through_callee():
    result = ident(
        """
        global int count = 0;
        int my_id() { return MPI_Comm_rank(); }
        void work(int r) {
            int i;
            for (i = 0; i < 8; i = i + 1) { if (r % 2) count = count + 1; }
        }
        int main() {
            int n; int r;
            r = my_id();
            for (n = 0; n < 10; n = n + 1) work(r);
            return 0;
        }
        """
    )
    call = next(s for s in result.sensors if s.function == "main" and s.snippet.kind is SnippetKind.CALL)
    assert not call.rank_invariant


def test_pure_computation_rank_invariant():
    result = ident(
        """
        global int count = 0;
        int main() {
            int n; int k;
            for (n = 0; n < 10; n = n + 1) {
                for (k = 0; k < 8; k = k + 1) count = count + 1;
            }
            return 0;
        }
        """
    )
    assert all(s.rank_invariant for s in result.sensors)
