"""Direct tests of bottom-up function summaries (§3.3, §3.5)."""

import pytest

from repro.callgraph import build_call_graph, preprocess_call_graph
from repro.frontend.parser import parse_source
from repro.ir import lower_module
from repro.sensors.extern import default_extern_registry
from repro.sensors.summaries import compute_summaries


def summaries_of(src):
    module = lower_module(parse_source(src))
    cg = build_call_graph(module)
    prep = preprocess_call_graph(cg)
    return compute_summaries(module, cg, prep, default_extern_registry())


class TestWorkloadSummaries:
    def test_constant_work_function(self):
        table = summaries_of(
            """
            void f() { int i; for (i = 0; i < 10; i = i + 1) compute_units(5); }
            int main() { f(); return 0; }
            """
        )
        s = table.summaries["f"].workload
        assert s.fixed
        assert s.params == set() and s.globals == set()

    def test_param_driven_work(self):
        table = summaries_of(
            """
            void f(int n) { int i; for (i = 0; i < n; i = i + 1) compute_units(5); }
            int main() { f(3); return 0; }
            """
        )
        s = table.summaries["f"].workload
        assert s.fixed
        assert s.params == {"n"}

    def test_global_driven_work(self):
        table = summaries_of(
            """
            global int N = 8;
            void f() { int i; for (i = 0; i < N; i = i + 1) compute_units(5); }
            int main() { f(); return 0; }
            """
        )
        assert table.summaries["f"].workload.globals == {"N"}

    def test_workload_dep_propagates_through_callee(self):
        table = summaries_of(
            """
            void inner(int k) { int i; for (i = 0; i < k; i = i + 1) compute_units(2); }
            void outer(int n) { inner(n + 1); }
            int main() { outer(3); return 0; }
            """
        )
        assert table.summaries["outer"].workload.params == {"n"}

    def test_rank_source_poisons_workload(self):
        table = summaries_of(
            """
            global int c = 0;
            void f() {
                int i; int r;
                r = MPI_Comm_rank();
                for (i = 0; i < r + 1; i = i + 1) c = c + 1;
            }
            int main() { f(); return 0; }
            """
        )
        assert table.summaries["f"].workload.rank

    def test_undescribed_extern_poisons_workload(self):
        table = summaries_of(
            """
            void f() { mystery(); }
            int main() { f(); return 0; }
            """
        )
        assert table.summaries["f"].workload.nonfixed

    def test_recursive_function_never_fixed(self):
        table = summaries_of(
            """
            int f(int n) { if (n) return f(n - 1); return 0; }
            int main() { f(2); return 0; }
            """
        )
        assert table.summaries["f"].never_fixed
        assert table.summaries["f"].workload.nonfixed


class TestReturnSummaries:
    def test_constant_return(self):
        table = summaries_of("int f() { return 7; } int main() { f(); return 0; }")
        s = table.summaries["f"].ret
        assert s.fixed and not s.params and not s.globals

    def test_param_return(self):
        table = summaries_of("int f(int x) { return x * 2; } int main() { f(1); return 0; }")
        assert table.summaries["f"].ret.params == {"x"}

    def test_rank_return(self):
        table = summaries_of(
            "int me() { return MPI_Comm_rank(); } int main() { me(); return 0; }"
        )
        assert table.summaries["me"].ret.rank

    def test_rand_return_nonfixed(self):
        table = summaries_of("int r() { return rand(); } int main() { r(); return 0; }")
        assert table.summaries["r"].ret.nonfixed


class TestModSets:
    def test_direct_global_store(self):
        table = summaries_of(
            "global int G; void f() { G = 1; } int main() { f(); return 0; }"
        )
        assert table.summaries["f"].mods == {"G"}

    def test_transitive_mods(self):
        table = summaries_of(
            """
            global int G;
            void leaf() { G = 1; }
            void mid() { leaf(); }
            int main() { mid(); return 0; }
            """
        )
        assert table.summaries["mid"].mods == {"G"}
        assert table.summaries["main"].mods == {"G"}

    def test_array_global_mod(self):
        table = summaries_of(
            "global int a[4]; void f() { a[0] = 1; } int main() { f(); return 0; }"
        )
        assert table.summaries["f"].mods == {"a"}

    def test_recursive_mods_converge(self):
        table = summaries_of(
            """
            global int G;
            int f(int n) { G = G + 1; if (n) f(n - 1); return 0; }
            int main() { f(2); return 0; }
            """
        )
        assert table.summaries["f"].mods == {"G"}


class TestCategoryFlags:
    def test_direct_net(self):
        table = summaries_of("void f() { MPI_Barrier(); } int main() { f(); return 0; }")
        assert table.summaries["f"].contains_net
        assert not table.summaries["f"].contains_io

    def test_transitive_io(self):
        table = summaries_of(
            """
            void w() { fwrite(8); }
            void mid() { w(); }
            int main() { mid(); return 0; }
            """
        )
        assert table.summaries["mid"].contains_io
        assert table.summaries["main"].contains_io

    def test_pure_compute_neither(self):
        table = summaries_of("void f() { compute_units(5); } int main() { f(); return 0; }")
        s = table.summaries["f"]
        assert not s.contains_net and not s.contains_io
