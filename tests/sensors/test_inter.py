"""Inter-procedural analysis tests (§3.3, §3.5)."""

import pytest

from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source
from repro.sensors import SnippetKind, identify_vsensors


def ident(src):
    return identify_vsensors(parse_source(src))


def call_sensors(result, callee=None):
    out = [s for s in result.sensors if s.snippet.kind is SnippetKind.CALL]
    if callee is not None:
        out = [s for s in out if isinstance(s.snippet.node, A.CallExpr) and s.snippet.node.callee == callee]
    return out


def test_call_with_constant_arg_is_sensor():
    result = ident(
        """
        void work(int n) { int i; for (i = 0; i < n; i = i + 1) compute_units(5); }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) work(32);
            return 0;
        }
        """
    )
    sensors = call_sensors(result, "work")
    assert len(sensors) == 1
    assert sensors[0].is_global


def test_call_with_loop_index_arg_rejected():
    result = ident(
        """
        void work(int n) { int i; for (i = 0; i < n; i = i + 1) compute_units(5); }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) work(t);
            return 0;
        }
        """
    )
    assert call_sensors(result, "work") == []


def test_workload_irrelevant_arg_ignored():
    """y never feeds control flow in the callee, so varying it is fine."""
    result = ident(
        """
        int work(int n, int y) {
            int i; int acc = 0;
            for (i = 0; i < n; i = i + 1) acc = acc + y;
            return acc;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) work(32, t);
            return 0;
        }
        """
    )
    sensors = call_sensors(result, "work")
    assert len(sensors) == 1


def test_inner_snippet_promoted_through_single_site():
    """A callee loop depending on a param is global when the single call
    site passes a program-constant."""
    result = ident(
        """
        global int count = 0;
        void work(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) count = count + 1;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) work(32);
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.function == "work")
    assert loop.is_global
    assert loop.param_deps == {"n"}


def test_inner_snippet_with_deps_not_promoted_across_two_sites():
    """The loop in work depends on n and work is called with two different
    constants: the records would mix two workloads, so the snippet is not a
    sensor at all (it has no enclosing loop within work either)."""
    result = ident(
        """
        global int count = 0;
        void work(int n) {
            int i;
            for (i = 0; i < n; i = i + 1) count = count + 1;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) { work(32); work(64); }
            return 0;
        }
        """
    )
    assert [s for s in result.sensors if s.function == "work"] == []
    # The two call sites themselves remain (per-site) sensors.
    assert len(call_sensors(result, "work")) == 2


def test_dependency_free_snippet_promoted_across_many_sites():
    result = ident(
        """
        global int count = 0;
        void work() {
            int i;
            for (i = 0; i < 16; i = i + 1) count = count + 1;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) { work(); work(); work(); }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.function == "work")
    assert loop.is_global


def test_global_dep_fixed_when_never_written():
    result = ident(
        """
        global int N = 24;
        global int count = 0;
        void work() {
            int i;
            for (i = 0; i < N; i = i + 1) count = count + 1;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) work();
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.function == "work")
    assert loop.is_global
    assert loop.global_deps == {"N"}


def test_global_dep_written_in_caller_loop_rejected():
    result = ident(
        """
        global int N = 24;
        global int count = 0;
        void work() {
            int i;
            for (i = 0; i < N; i = i + 1) count = count + 1;
        }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) { work(); N = N + 1; }
            return 0;
        }
        """
    )
    work_sensors = [s for s in result.sensors if s.function == "work"]
    # Fixed inside work (no enclosing loops there) but not globally.
    assert all(not s.is_global for s in work_sensors)


def test_call_to_recursive_function_never_sensor():
    result = ident(
        """
        int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) fact(5);
            return 0;
        }
        """
    )
    assert call_sensors(result, "fact") == []


def test_snippets_inside_recursive_function_never_sensors():
    result = ident(
        """
        global int count = 0;
        int fact(int n) {
            int i;
            for (i = 0; i < 4; i = i + 1) count = count + 1;
            if (n < 2) return 1;
            return n * fact(n - 1);
        }
        int main() { fact(5); return 0; }
        """
    )
    assert [s for s in result.sensors if s.function == "fact"] == []


def test_address_taken_function_never_sensor():
    result = ident(
        """
        global int count = 0;
        void work() { int i; for (i = 0; i < 4; i = i + 1) count = count + 1; }
        int main() {
            int t;
            funcptr p;
            p = &work;
            for (t = 0; t < 10; t = t + 1) work();
            return 0;
        }
        """
    )
    assert [s for s in result.sensors if s.function == "work"] == []


def test_undescribed_extern_poisons_snippet():
    result = ident(
        """
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) mystery_function(3);
            return 0;
        }
        """
    )
    assert result.sensors == []


def test_described_extern_with_constant_size_is_sensor():
    result = ident(
        """
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) MPI_Allreduce(64);
            return 0;
        }
        """
    )
    assert len(call_sensors(result, "MPI_Allreduce")) == 1


def test_described_extern_with_varying_size_rejected():
    result = ident(
        """
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) MPI_Allreduce(t);
            return 0;
        }
        """
    )
    assert call_sensors(result, "MPI_Allreduce") == []


def test_callee_return_value_feeding_bound():
    """A bound computed by a pure callee from constants stays fixed."""
    result = ident(
        """
        global int count = 0;
        int bound() { return 12; }
        int main() {
            int t; int k; int m;
            for (t = 0; t < 10; t = t + 1) {
                m = bound();
                for (k = 0; k < m; k = k + 1) count = count + 1;
            }
            return 0;
        }
        """
    )
    loops = [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP and s.scope_loops]
    assert len(loops) == 1


def test_callee_return_from_rand_rejected():
    result = ident(
        """
        global int count = 0;
        int bound() { return rand() % 5; }
        int main() {
            int t; int k; int m;
            for (t = 0; t < 10; t = t + 1) {
                m = bound();
                for (k = 0; k < m; k = k + 1) count = count + 1;
            }
            return 0;
        }
        """
    )
    inner = [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP and s.snippet.depth == 1]
    assert inner == []


def test_transitive_promotion_two_levels():
    result = ident(
        """
        global int count = 0;
        void inner() { int i; for (i = 0; i < 8; i = i + 1) count = count + 1; }
        void middle() { inner(); }
        int main() {
            int t;
            for (t = 0; t < 10; t = t + 1) middle();
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.function == "inner")
    assert loop.is_global


def test_unreachable_function_not_global():
    result = ident(
        """
        global int count = 0;
        void orphan() { int i; for (i = 0; i < 8; i = i + 1) count = count + 1; }
        int main() { return 0; }
        """
    )
    orphan_sensors = [s for s in result.sensors if s.function == "orphan"]
    assert all(not s.is_global for s in orphan_sensors)
