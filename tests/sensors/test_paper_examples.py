"""The paper's own identification examples, end to end (Figs. 4, 6, 8, 9).

These tests pin the implementation to the published semantics: each
assertion corresponds to a verdict the paper states in prose.
"""

import pytest

from repro.frontend import ast_nodes as A
from repro.sensors import SensorType, SnippetKind, identify_vsensors


def sensors_by_line(result):
    return {(s.function, s.loc.line, s.snippet.kind): s for s in result.sensors}


class TestFigure4And8:
    """The running example: foo(x, y) called as foo(n,k) and foo(k,n)."""

    @pytest.fixture
    def result(self, paper_module):
        return identify_vsensors(paper_module)

    def test_snippet_count(self, result):
        # Loops: foo{i, j}, main{n, k, k}; calls: foo, foo, MPI_Barrier.
        assert result.snippet_count == 8

    def test_inner_j_loop_is_global_sensor(self, result):
        """Paper: the fixed inner loop is a v-sensor of its parent and, being
        argument/global independent, of the caller loops too."""
        sensor = next(
            s
            for s in result.sensors
            if s.function == "foo" and s.snippet.kind is SnippetKind.LOOP
        )
        assert sensor.is_global
        assert sensor.is_function_scope

    def test_i_loop_not_a_sensor(self, result):
        """foo's outer loop depends on argument x which varies at call sites."""
        foo_loops = [
            s
            for s in result.sensors
            if s.function == "foo" and s.snippet.kind is SnippetKind.LOOP
        ]
        assert len(foo_loops) == 1  # only the j loop

    def test_call1_sensor_of_k_loop_only(self, result):
        """Call-1 foo(n, k): v-sensor of Loop-2 (k) but not Loop-1 (n)."""
        calls = [
            s
            for s in result.sensors
            if s.function == "main" and s.snippet.kind is SnippetKind.CALL
            and isinstance(s.snippet.node, A.CallExpr)
            and s.snippet.node.callee == "foo"
        ]
        assert len(calls) == 1
        sensor = calls[0]
        assert len(sensor.scope_loops) == 1
        assert not sensor.is_function_scope
        assert not sensor.is_global
        # Call-2 foo(k, n) must be absent: its x argument varies in both loops.
        first_args = sensor.snippet.node.args[0]
        assert isinstance(first_args, A.VarRef) and first_args.name == "n"

    def test_count_loop_is_global_sensor(self, result):
        count_loops = [
            s
            for s in result.sensors
            if s.function == "main" and s.snippet.kind is SnippetKind.LOOP
        ]
        assert len(count_loops) == 1
        assert count_loops[0].is_global

    def test_barrier_call_is_network_sensor(self, result):
        barrier = next(
            s
            for s in result.sensors
            if isinstance(s.snippet.node, A.CallExpr)
            and s.snippet.node.callee == "MPI_Barrier"
        )
        assert barrier.sensor_type is SensorType.NETWORK
        assert barrier.is_global


class TestFigure6:
    """Intra-procedural analysis: three subloops with different verdicts."""

    @pytest.fixture
    def result(self, fig6_module):
        return identify_vsensors(fig6_module)

    def test_only_constant_bound_loop_is_sensor(self, result):
        loop_sensors = [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP]
        assert len(loop_sensors) == 1

    def test_sensor_is_the_first_subloop(self, result, fig6_module):
        sensor = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP)
        # First subloop starts on line 6 of the fixture source.
        lines = [s.loc.line for s in result.sensors]
        n_loop_line = fig6_module.function("main").body.stmts[2].loc.line
        assert sensor.loc.line > n_loop_line  # inside the n loop

    def test_variant_bound_loop_rejected(self, result, fig6_module):
        # The k<n loop and the k<10-with-if(k<n) loop are both rejected.
        assert result.sensor_count == 1


class TestFigure9:
    """Multi-process analysis: rank-dependent workload."""

    @pytest.fixture
    def result(self, fig9_module):
        return identify_vsensors(fig9_module)

    def test_both_loops_are_sensors(self, result):
        loop_sensors = [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP]
        assert len(loop_sensors) == 2

    def test_rank_dependent_loop_flagged(self, result):
        flags = sorted(s.rank_invariant for s in result.sensors if s.snippet.kind is SnippetKind.LOOP)
        assert flags == [False, True]

    def test_rank_invariant_loop_usable_across_processes(self, result):
        invariant = [s for s in result.sensors if s.rank_invariant and s.snippet.kind is SnippetKind.LOOP]
        assert len(invariant) == 1
        assert invariant[0].is_global
