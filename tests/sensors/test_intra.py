"""Intra-procedural analysis unit tests (§3.2).

Each test builds a small program and checks which snippets are sensors of
which loops — exercising the dependency-propagation rules one at a time.
"""

import pytest

from repro.frontend.parser import parse_source
from repro.sensors import SnippetKind, identify_vsensors


def loop_sensors(src):
    result = identify_vsensors(parse_source(src))
    return [s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP], result


def wrap(body):
    return f"""
    global int count = 0;
    int main() {{
        int n; int k; int m;
        for (n = 0; n < 50; n = n + 1) {{
            {body}
        }}
        return 0;
    }}
    """


def test_constant_bound_subloop_is_sensor():
    sensors, _ = loop_sensors(wrap("for (k = 0; k < 8; k = k + 1) count = count + 1;"))
    assert len(sensors) == 1
    assert sensors[0].is_global


def test_outer_index_in_bound_is_variant():
    sensors, _ = loop_sensors(wrap("for (k = 0; k < n; k = k + 1) count = count + 1;"))
    assert sensors == []


def test_outer_index_in_branch_is_variant():
    sensors, _ = loop_sensors(
        wrap("for (k = 0; k < 8; k = k + 1) { if (k < n) count = count + 1; }")
    )
    assert sensors == []


def test_outer_index_in_step_is_variant():
    sensors, _ = loop_sensors(wrap("for (k = 0; k < 8; k = k + n) count = count + 1;"))
    assert sensors == []


def test_value_rewritten_each_iteration_is_fixed():
    """m is re-established to a constant inside the outer loop before use."""
    sensors, _ = loop_sensors(
        wrap("m = 6; for (k = 0; k < m; k = k + 1) count = count + 1;")
    )
    assert len(sensors) == 1


def test_value_rewritten_from_outer_index_is_variant():
    sensors, _ = loop_sensors(
        wrap("m = n + 1; for (k = 0; k < m; k = k + 1) count = count + 1;")
    )
    assert sensors == []


def test_accumulator_bound_is_variant():
    """m grows across iterations of the outer loop (an accumulator)."""
    sensors, _ = loop_sensors(
        wrap("m = m + 1; for (k = 0; k < m; k = k + 1) count = count + 1;")
    )
    assert sensors == []


def test_unreinitialized_inner_counter_is_variant():
    """The inner loop keeps k's value across outer iterations."""
    sensors, _ = loop_sensors(wrap("for (; k < 40; k = k + 1) count = count + 1;"))
    assert sensors == []


def test_mixed_pre_loop_and_in_loop_definition_is_variant():
    """m is set before the loop and re-set after the subloop: the first
    outer iteration sees the pre-loop value, later ones the in-loop value."""
    src = """
    global int count = 0;
    int main() {
        int n; int k; int m;
        m = 6;
        for (n = 0; n < 50; n = n + 1) {
            for (k = 0; k < m; k = k + 1) count = count + 1;
            m = 6;
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert sensors == []


def test_pre_loop_constant_only_is_fixed():
    src = """
    global int count = 0;
    int main() {
        int n; int k; int m;
        m = 6;
        for (n = 0; n < 50; n = n + 1) {
            for (k = 0; k < m; k = k + 1) count = count + 1;
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert len(sensors) == 1
    assert sensors[0].is_global


def test_array_bound_is_nonfixed():
    src = """
    global int sizes[4];
    global int count = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 50; n = n + 1) {
            for (k = 0; k < sizes[0]; k = k + 1) count = count + 1;
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert sensors == []


def test_global_modified_in_loop_is_variant():
    src = """
    global int B = 10;
    global int count = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 50; n = n + 1) {
            for (k = 0; k < B; k = k + 1) count = count + 1;
            B = B + 1;
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert sensors == []


def test_global_never_modified_is_fixed():
    src = """
    global int B = 10;
    global int count = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 50; n = n + 1) {
            for (k = 0; k < B; k = k + 1) count = count + 1;
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert len(sensors) == 1


def test_while_loop_with_constant_condition_work():
    src = """
    global int count = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 50; n = n + 1) {
            k = 0;
            while (k < 9) { count = count + 1; k = k + 1; }
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    # k is re-initialized right before the while: fixed.
    assert len(sensors) == 1


def test_while_on_unanalyzable_value_rejected():
    src = """
    global int count = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 50; n = n + 1) {
            k = rand() % 5;
            while (k > 0) { count = count + 1; k = k - 1; }
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    assert sensors == []


def test_scope_chain_partial():
    """Middle loop bound variant in the outer loop: sensor of inner only."""
    src = """
    global int count = 0;
    int main() {
        int a; int b; int c;
        for (a = 0; a < 10; a = a + 1) {
            for (b = 0; b < a + 2; b = b + 1) {
                for (c = 0; c < 7; c = c + 1) count = count + 1;
            }
        }
        return 0;
    }
    """
    sensors, _ = loop_sensors(src)
    # The c loop is fixed in b and in a (7 is constant): global.
    # The b loop itself is variant in a.
    assert len(sensors) == 1
    assert sensors[0].is_global


def test_uninitialized_local_bound_is_nonfixed():
    sensors, _ = loop_sensors(wrap("for (k = 0; k < m; k = k + 1) count = count + 1;"))
    assert sensors == []


def test_snippet_depth_recorded():
    src = """
    global int count = 0;
    int main() {
        int a; int b;
        for (a = 0; a < 10; a = a + 1) {
            for (b = 0; b < 7; b = b + 1) count = count + 1;
        }
        return 0;
    }
    """
    sensors, result = loop_sensors(src)
    inner = next(s for s in sensors if s.scope_loops)
    assert inner.snippet.depth == 1
