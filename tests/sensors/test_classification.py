"""Sensor classification tests (Computation / Network / IO, §3.1)."""

from repro.frontend.parser import parse_source
from repro.sensors import SensorType, SnippetKind, identify_vsensors


def ident(src):
    return identify_vsensors(parse_source(src))


def types_of(result):
    return {(s.function, s.snippet.spelled): s.sensor_type for s in result.sensors}


def test_pure_loop_is_computation():
    result = ident(
        """
        global int c = 0;
        int main() {
            int n; int k;
            for (n = 0; n < 5; n = n + 1) { for (k = 0; k < 5; k = k + 1) c = c + 1; }
            return 0;
        }
        """
    )
    assert all(s.sensor_type is SensorType.COMPUTATION for s in result.sensors)


def test_mpi_call_is_network():
    result = ident("int main() { int n; for (n = 0; n < 5; n = n + 1) MPI_Barrier(); return 0; }")
    assert result.sensors[0].sensor_type is SensorType.NETWORK


def test_io_call_is_io():
    result = ident("int main() { int n; for (n = 0; n < 5; n = n + 1) fwrite(16); return 0; }")
    sensor = next(s for s in result.sensors if s.snippet.kind is SnippetKind.CALL)
    assert sensor.sensor_type is SensorType.IO


def test_loop_containing_mpi_is_network():
    result = ident(
        """
        int main() {
            int n; int k;
            for (n = 0; n < 5; n = n + 1) {
                for (k = 0; k < 3; k = k + 1) MPI_Allreduce(8);
            }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP and s.snippet.depth == 1)
    assert loop.sensor_type is SensorType.NETWORK


def test_network_priority_over_io():
    result = ident(
        """
        int main() {
            int n;
            for (n = 0; n < 5; n = n + 1) {
                int k;
                for (k = 0; k < 2; k = k + 1) { fwrite(8); MPI_Barrier(); }
            }
            return 0;
        }
        """
    )
    loop = next(s for s in result.sensors if s.snippet.kind is SnippetKind.LOOP and s.snippet.depth == 1)
    assert loop.sensor_type is SensorType.NETWORK


def test_classification_through_callee():
    result = ident(
        """
        void sync() { MPI_Barrier(); }
        int main() {
            int n;
            for (n = 0; n < 5; n = n + 1) sync();
            return 0;
        }
        """
    )
    call = next(s for s in result.sensors if s.function == "main")
    assert call.sensor_type is SensorType.NETWORK


def test_printf_classified_io():
    result = ident(
        """
        int main() {
            int n;
            for (n = 0; n < 5; n = n + 1) printf("x");
            return 0;
        }
        """
    )
    sensor = next(s for s in result.sensors if s.snippet.kind is SnippetKind.CALL)
    assert sensor.sensor_type is SensorType.IO
