"""Rejection-reason ("explain") tests."""

from repro.frontend.parser import parse_source
from repro.sensors import identify_vsensors


def rejections_of(src):
    result = identify_vsensors(parse_source(src))
    return {(s.function, s.loc.line): reason for s, reason in result.rejections}


def test_variant_loop_has_reason():
    src = """
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 10; n = n + 1) {
            for (k = 0; k < n; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    reasons = rejections_of(src)
    reason = reasons[("main", 6)]
    assert "n" in reason  # names the varying variable


def test_array_load_reason():
    src = """
    global int sizes[4];
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 10; n = n + 1) {
            for (k = 0; k < sizes[0]; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    reasons = rejections_of(src)
    assert "array load sizes[]" in reasons[("main", 7)]


def test_undescribed_extern_reason():
    src = """
    int main() {
        int n;
        for (n = 0; n < 10; n = n + 1) mystery(n);
        return 0;
    }
    """
    reasons = rejections_of(src)
    assert any("undescribed extern" in r for r in reasons.values())


def test_recursive_function_reason():
    src = """
    global int c = 0;
    int f(int n) {
        int i;
        for (i = 0; i < 4; i = i + 1) c = c + 1;
        if (n) f(n - 1);
        return 0;
    }
    int main() { f(3); return 0; }
    """
    reasons = rejections_of(src)
    assert any("recursive" in r for r in reasons.values())


def test_sensors_not_in_rejections(paper_module):
    result = identify_vsensors(paper_module)
    sensor_keys = {(s.function, s.loc.line) for s in result.sensors}
    rejection_keys = {(s.function, s.loc.line) for s, _r in result.rejections}
    assert not (sensor_keys & rejection_keys)


def test_every_snippet_accounted_for(paper_module):
    result = identify_vsensors(paper_module)
    assert len(result.sensors) + len(result.rejections) == len(result.snippets)
