"""Rejection-diagnostic ("explain") tests.

Every rejected snippet carries a structured Diagnostic: a stable reason
code, a source span, and the identify-pass provenance.
"""

from repro.diagnostics import ReasonCode, Severity
from repro.frontend.parser import parse_source
from repro.sensors import identify_vsensors


def rejections_of(src):
    result = identify_vsensors(parse_source(src))
    return {(s.function, s.loc.line): diag for s, diag in result.rejections}


def test_variant_loop_has_reason():
    src = """
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 10; n = n + 1) {
            for (k = 0; k < n; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    diag = rejections_of(src)[("main", 6)]
    assert "n" in diag.message  # names the varying variable
    assert diag.code in (ReasonCode.VARIANT_INPUT, ReasonCode.MIXED_DEFS)


def test_array_load_reason():
    src = """
    global int sizes[4];
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 10; n = n + 1) {
            for (k = 0; k < sizes[0]; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    diag = rejections_of(src)[("main", 7)]
    assert "array load sizes[]" in diag.message
    assert diag.code is ReasonCode.ARRAY_LOAD


def test_undescribed_extern_reason():
    src = """
    int main() {
        int n;
        for (n = 0; n < 10; n = n + 1) mystery(n);
        return 0;
    }
    """
    diags = rejections_of(src).values()
    assert any(d.code is ReasonCode.UNDESCRIBED_EXTERN for d in diags)
    assert any("undescribed extern" in d.message for d in diags)


def test_recursive_function_reason():
    src = """
    global int c = 0;
    int f(int n) {
        int i;
        for (i = 0; i < 4; i = i + 1) c = c + 1;
        if (n) f(n - 1);
        return 0;
    }
    int main() { f(3); return 0; }
    """
    diags = rejections_of(src).values()
    assert any(d.code is ReasonCode.RECURSIVE_FUNCTION for d in diags)


def test_sensors_not_in_rejections(paper_module):
    result = identify_vsensors(paper_module)
    sensor_keys = {(s.function, s.loc.line) for s in result.sensors}
    rejection_keys = {(s.function, s.loc.line) for s, _r in result.rejections}
    assert not (sensor_keys & rejection_keys)


def test_every_snippet_accounted_for(paper_module):
    result = identify_vsensors(paper_module)
    assert len(result.sensors) + len(result.rejections) == len(result.snippets)


def test_every_rejection_has_stable_code_and_span(paper_module):
    """The satellite guarantee: all rejections are machine-consumable."""
    result = identify_vsensors(paper_module)
    assert result.rejections
    for rejection in result.rejections:
        diag = rejection.diagnostic
        assert isinstance(diag.code, ReasonCode)
        assert diag.severity is Severity.NOTE
        assert diag.origin == "identify"
        assert not diag.span.is_unknown, diag
        assert diag.span.end_line >= diag.span.line
        # the span points into the snippet's source file (the disqualifying
        # definition may sit outside the snippet itself, on its use-def chain)
        assert diag.span.filename == rejection.snippet.loc.filename


def test_rejection_unpacks_as_pair(paper_module):
    result = identify_vsensors(paper_module)
    snippet, diag = result.rejections[0]
    assert snippet is result.rejections[0].snippet
    assert diag is result.rejections[0].diagnostic


def test_diagnostic_format_roundtrips_location():
    src = """
    global int sizes[4];
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 10; n = n + 1) {
            for (k = 0; k < sizes[0]; k = k + 1) c = c + 1;
        }
        return 0;
    }
    """
    result = identify_vsensors(parse_source(src, filename="prog.vsn"))
    lines = [r.diagnostic.format() for r in result.rejections]
    assert any(line.startswith("prog.vsn:") for line in lines)
    assert any("[array-load]" in line for line in lines)
