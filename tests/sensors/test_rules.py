"""Static-rule tests (§3.1, Fig. 5)."""

from repro.frontend.parser import parse_source
from repro.sensors import FixedDestinationRule, SensorType, identify_vsensors
from repro.sensors.rules import MaxLoopDepthRule, TypeFilterRule


NET_SRC = """
int main() {
    int n; int peer;
    peer = MPI_Comm_rank() + 1;
    for (n = 0; n < 5; n = n + 1) {
        MPI_Send(3, 64);
        MPI_Send(peer, 64);
    }
    return 0;
}
"""


def test_fixed_destination_rule_keeps_constant_dest():
    result = identify_vsensors(parse_source(NET_SRC), static_rules=[FixedDestinationRule()])
    dests = [s.snippet.node.args[0] for s in result.sensors]
    from repro.frontend import ast_nodes as A

    assert len(result.sensors) == 1
    assert isinstance(dests[0], A.IntLit)


def test_without_rule_both_sends_are_sensors():
    result = identify_vsensors(parse_source(NET_SRC))
    # Both sends have fixed size; destination is not a default workload factor.
    assert len(result.sensors) == 2


def test_more_strict_rules_produce_fewer_sensors():
    """Fig. 5: stricter static rules -> fewer sensors."""
    plain = identify_vsensors(parse_source(NET_SRC))
    strict = identify_vsensors(parse_source(NET_SRC), static_rules=[FixedDestinationRule()])
    assert len(strict.sensors) < len(plain.sensors)


def test_max_loop_depth_rule():
    src = """
    global int c = 0;
    int main() {
        int a; int b;
        for (a = 0; a < 5; a = a + 1) {
            for (b = 0; b < 5; b = b + 1) c = c + 1;
        }
        return 0;
    }
    """
    shallow = identify_vsensors(parse_source(src), static_rules=[MaxLoopDepthRule(1)])
    # The inner loop snippet is at depth 1 -> vetoed.
    assert all(s.snippet.depth < 1 for s in shallow.sensors)


def test_type_filter_rule():
    src = """
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 5; n = n + 1) {
            for (k = 0; k < 4; k = k + 1) c = c + 1;
            MPI_Barrier();
        }
        return 0;
    }
    """
    only_net = identify_vsensors(
        parse_source(src), static_rules=[TypeFilterRule({SensorType.NETWORK})]
    )
    assert all(s.sensor_type is SensorType.NETWORK for s in only_net.sensors)
    assert len(only_net.sensors) >= 1


def test_rule_does_not_touch_non_network_sensors():
    src = """
    global int c = 0;
    int main() {
        int n; int k;
        for (n = 0; n < 5; n = n + 1) { for (k = 0; k < 4; k = k + 1) c = c + 1; }
        return 0;
    }
    """
    plain = identify_vsensors(parse_source(src))
    ruled = identify_vsensors(parse_source(src), static_rules=[FixedDestinationRule()])
    assert len(plain.sensors) == len(ruled.sensors)
