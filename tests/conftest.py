"""Shared fixtures: canonical sources from the paper and tiny machines."""

from __future__ import annotations

import pytest

from repro.frontend import parse_source
from repro.sim import MachineConfig


# The paper's Figure 4 / Figure 8 running example, translated to the mini
# language.  Loop/call labels L1..L5 / C1..C3 follow the paper.
PAPER_EXAMPLE = """
global int GLBV = 40;
global int count = 0;
int foo(int x, int y) {
    int i; int j; int value = 0;
    for (i = 0; i < x; i = i + 1) {
        value = value + y;
        for (j = 0; j < 10; j = j + 1) value = value - 1;
    }
    if (x > GLBV) value = value - x * y;
    return value;
}
int main() {
    int n; int k;
    for (n = 0; n < 100; n = n + 1) {
        for (k = 0; k < 10; k = k + 1) {
            foo(n, k);
            foo(k, n);
        }
        for (k = 0; k < 10; k = k + 1) count = count + 1;
        MPI_Barrier();
    }
    return 0;
}
"""

# Figure 6: three subloops of an outer loop with different variance.
FIG6_EXAMPLE = """
global int count = 0;
int main() {
    int n; int k;
    for (n = 0; n < 100; n = n + 1) {
        for (k = 0; k < 10; k = k + 1) count = count + 1;
        for (k = 0; k < n; k = k + 1) count = count + 1;
        for (k = 0; k < 10; k = k + 1) { if (k < n) count = count + 1; }
    }
    return 0;
}
"""

# Figure 9: rank-dependent vs rank-invariant workload.
FIG9_EXAMPLE = """
global int count = 0;
int main() {
    int n; int k; int rank;
    rank = MPI_Comm_rank();
    for (n = 0; n < 100; n = n + 1) {
        for (k = 0; k < 10; k = k + 1) { if (rank % 2) count = count + 1; }
        for (k = 0; k < 10; k = k + 1) count = count + 1;
    }
    return 0;
}
"""

SIMPLE_MPI_PROGRAM = """
global int NITER = 10;
void kernel() {
    int i;
    for (i = 0; i < 10; i = i + 1) compute_units(20);
}
int main() {
    int n;
    for (n = 0; n < NITER; n = n + 1) {
        kernel();
        MPI_Allreduce(16);
    }
    return 0;
}
"""


@pytest.fixture
def paper_module():
    return parse_source(PAPER_EXAMPLE)


@pytest.fixture
def fig6_module():
    return parse_source(FIG6_EXAMPLE)


@pytest.fixture
def fig9_module():
    return parse_source(FIG9_EXAMPLE)


@pytest.fixture
def simple_module():
    return parse_source(SIMPLE_MPI_PROGRAM)


@pytest.fixture
def small_machine():
    """4 ranks on 2 nodes, noise disabled for determinism-sensitive tests."""
    from repro.sim.noise import NoiseConfig

    return MachineConfig(
        n_ranks=4,
        ranks_per_node=2,
        noise=NoiseConfig(
            jitter_sigma=0.0, interrupt_period_us=0.0, spike_rate_per_ms=0.0
        ),
    )


@pytest.fixture
def noisy_machine():
    return MachineConfig(n_ranks=4, ranks_per_node=2)
