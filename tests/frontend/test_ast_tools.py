"""Traversal-helper tests for ast_nodes."""

from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source


def body_of(src):
    return parse_source(src).function("main").body


def test_walk_stmts_covers_nesting():
    body = body_of("int main() { for (;;) { if (1) { x = 1; } } }")
    kinds = [type(s).__name__ for s in A.walk_stmts(body)]
    assert "ForStmt" in kinds and "IfStmt" in kinds and "Assign" in kinds


def test_child_stmts_of_for_includes_init_step_body():
    body = body_of("int main() { for (i = 0; i < 3; i = i + 1) { x = 1; } }")
    loop = body.stmts[0]
    children = A.child_stmts(loop)
    assert loop.init in children and loop.step in children and loop.body in children


def test_child_stmts_of_if_without_else():
    body = body_of("int main() { if (1) { x = 1; } }")
    assert len(A.child_stmts(body.stmts[0])) == 1


def test_walk_exprs_statement_scope_only():
    body = body_of("int main() { if (a + b) { x = c; } }")
    if_stmt = body.stmts[0]
    exprs = list(A.walk_exprs(if_stmt))
    names = {e.name for e in exprs if isinstance(e, A.VarRef)}
    # Only the condition's names; the nested assignment is a nested stmt.
    assert names == {"a", "b"}


def test_walk_all_exprs_includes_nested():
    body = body_of("int main() { if (a) { x = c + d; } }")
    names = {e.name for e in A.walk_all_exprs(body) if isinstance(e, A.VarRef)}
    assert {"a", "c", "d"} <= names


def test_collect_calls_nested_args():
    body = body_of("int main() { f(g(1), h(2)); }")
    calls = A.collect_calls(body)
    assert sorted(c.callee for c in calls) == ["f", "g", "h"]


def test_collect_loops():
    body = body_of("int main() { for (;;) { while (1) { x = 1; } } }")
    loops = A.collect_loops(body)
    assert len(loops) == 2


def test_module_global_names():
    mod = parse_source("global int a; global float b[3]; void main() { }")
    assert mod.global_names() == {"a", "b"}


def test_child_exprs_of_return_and_exprstmt():
    body = body_of("int main() { return a + 1; }")
    ret = body.stmts[0]
    assert len(A.child_exprs(ret)) == 1


def test_walk_exprs_on_bare_expression():
    body = body_of("int main() { x = a * (b + c); }")
    assign = body.stmts[0]
    exprs = list(A.walk_exprs(assign))
    binops = [e for e in exprs if isinstance(e, A.BinOp)]
    assert len(binops) == 2
