"""Pretty-printer tests: round-trip stability and structure preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import format_module, parse_source
from tests.conftest import FIG6_EXAMPLE, FIG9_EXAMPLE, PAPER_EXAMPLE, SIMPLE_MPI_PROGRAM


@pytest.mark.parametrize(
    "source",
    [PAPER_EXAMPLE, FIG6_EXAMPLE, FIG9_EXAMPLE, SIMPLE_MPI_PROGRAM],
    ids=["paper", "fig6", "fig9", "simple"],
)
def test_round_trip_is_stable(source):
    once = format_module(parse_source(source))
    twice = format_module(parse_source(once))
    assert once == twice


def test_parenthesization_preserved():
    src = "int main() { int x; x = (1 + 2) * 3; return x; }"
    out = format_module(parse_source(src))
    assert "(1 + 2) * 3" in out


def test_no_spurious_parens():
    src = "int main() { int x; x = 1 + 2 * 3; return x; }"
    out = format_module(parse_source(src))
    assert "1 + 2 * 3" in out


def test_string_escaping_round_trip():
    src = 'int main() { printf("a\\nb\\"c"); return 0; }'
    out = format_module(parse_source(src))
    reparsed = parse_source(out)
    call = reparsed.function("main").body.stmts[0].expr
    assert call.args[0].value == 'a\nb"c'


def test_global_array_rendered():
    out = format_module(parse_source("global float a[7];"))
    assert "global float a[7];" in out


def test_funcptr_and_addrof_rendered():
    src = "int main() { funcptr fp; fp = &main; fp(); return 0; }"
    out = format_module(parse_source(src))
    assert "&main" in out and "funcptr fp;" in out


def test_else_branch_rendered():
    src = "int main() { int x; if (x) { x = 1; } else { x = 2; } return x; }"
    out = format_module(parse_source(src))
    assert "else {" in out


def test_while_and_control_statements():
    src = "int main() { int x; while (x < 3) { x = x + 1; continue; } return 0; }"
    out = format_module(parse_source(src))
    assert "while (x < 3)" in out and "continue;" in out


# -- property-based round trip over generated expressions -------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=999).map(str),
        _names,
    )

    def extend(children):
        ops = st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"])
        return st.one_of(
            st.tuples(children, ops, children).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
            children.map(lambda e: f"(-{e})"),
            children.map(lambda e: f"(!{e})"),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(expr=_exprs())
@settings(max_examples=120, deadline=None)
def test_expression_round_trip_property(expr):
    """Parsing the printer's output yields the same printed form again."""
    src = f"int main() {{ int a; int b; int c; int x; int y; x = {expr}; return 0; }}"
    once = format_module(parse_source(src))
    twice = format_module(parse_source(once))
    assert once == twice
