"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as K


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is K.EOF

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is K.INT_LIT
        assert toks[0].text == "42"

    def test_float_literal(self):
        toks = tokenize("3.25")
        assert toks[0].kind is K.FLOAT_LIT
        assert toks[0].text == "3.25"

    def test_float_with_exponent(self):
        assert tokenize("1e6")[0].kind is K.FLOAT_LIT
        assert tokenize("2.5e-3")[0].kind is K.FLOAT_LIT
        assert tokenize("7E+2")[0].kind is K.FLOAT_LIT

    def test_integer_then_dot_method_like(self):
        # "1." without following digit stays an int followed by error char
        with pytest.raises(LexError):
            tokenize("1.x")

    def test_identifier(self):
        toks = tokenize("foo_bar2")
        assert toks[0].kind is K.IDENT
        assert toks[0].text == "foo_bar2"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_private")[0].kind is K.IDENT

    @pytest.mark.parametrize(
        "kw,kind",
        [
            ("int", K.KW_INT),
            ("float", K.KW_FLOAT),
            ("void", K.KW_VOID),
            ("funcptr", K.KW_FUNCPTR),
            ("global", K.KW_GLOBAL),
            ("if", K.KW_IF),
            ("else", K.KW_ELSE),
            ("for", K.KW_FOR),
            ("while", K.KW_WHILE),
            ("return", K.KW_RETURN),
            ("break", K.KW_BREAK),
            ("continue", K.KW_CONTINUE),
        ],
    )
    def test_keywords(self, kw, kind):
        assert tokenize(kw)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind is K.IDENT
        assert tokenize("format")[0].kind is K.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "op,kind",
        [
            ("<=", K.LE),
            (">=", K.GE),
            ("==", K.EQ),
            ("!=", K.NE),
            ("&&", K.AND),
            ("||", K.OR),
        ],
    )
    def test_two_char_operators(self, op, kind):
        assert tokenize(op)[0].kind is kind

    @pytest.mark.parametrize(
        "op,kind",
        [
            ("+", K.PLUS),
            ("-", K.MINUS),
            ("*", K.STAR),
            ("/", K.SLASH),
            ("%", K.PERCENT),
            ("<", K.LT),
            (">", K.GT),
            ("=", K.ASSIGN),
            ("!", K.NOT),
            ("&", K.AMP),
            ("(", K.LPAREN),
            (")", K.RPAREN),
            ("{", K.LBRACE),
            ("}", K.RBRACE),
            ("[", K.LBRACKET),
            ("]", K.RBRACKET),
            (";", K.SEMI),
            (",", K.COMMA),
        ],
    )
    def test_one_char_operators(self, op, kind):
        assert tokenize(op)[0].kind is kind

    def test_le_not_split(self):
        assert kinds("a<=b")[:3] == [K.IDENT, K.LE, K.IDENT]

    def test_ampersand_vs_and(self):
        assert tokenize("&&")[0].kind is K.AND
        assert tokenize("&")[0].kind is K.AMP


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* line1\nline2\n*/ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="unterminated block comment"):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc") == ["a", "b", "c"]


class TestStrings:
    def test_simple_string(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is K.STRING_LIT
        assert tok.text == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\nb"')[0].text == "a\nb"
        assert tokenize(r'"a\tb"')[0].text == "a\tb"
        assert tokenize(r'"a\"b"')[0].text == 'a"b'
        assert tokenize(r'"a\\b"')[0].text == "a\\b"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"oops')

    def test_string_with_newline_raises(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')

    def test_bad_escape_raises(self):
        with pytest.raises(LexError, match="bad escape"):
            tokenize(r'"\q"')


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.col) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.col) == (2, 3)

    def test_filename_propagates(self):
        tok = tokenize("x", filename="prog.c")[0]
        assert tok.loc.filename == "prog.c"

    def test_error_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\n  $")
        assert exc.value.line == 2
        assert exc.value.col == 3


class TestErrorCases:
    @pytest.mark.parametrize("ch", ["$", "#", "@", "~", "?"])
    def test_unexpected_character(self, ch):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize(ch)

    def test_error_message_includes_position(self):
        with pytest.raises(LexError, match="1:1"):
            tokenize("$")
