"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source


def first_stmt(source_body):
    mod = parse_source("int main() { " + source_body + " }")
    return mod.function("main").body.stmts[0]


def first_expr(expr_text):
    stmt = first_stmt(f"x = {expr_text};")
    assert isinstance(stmt, A.Assign)
    return stmt.value


class TestTopLevel:
    def test_empty_module(self):
        mod = parse_source("")
        assert mod.functions == []
        assert mod.globals == []

    def test_global_scalar(self):
        mod = parse_source("global int G = 40;")
        gv = mod.global_var("G")
        assert gv.var_type == "int"
        assert isinstance(gv.init, A.IntLit)
        assert gv.init.value == 40

    def test_global_array(self):
        mod = parse_source("global float arr[128];")
        gv = mod.global_var("arr")
        assert gv.array_size == 128
        assert gv.init is None

    def test_global_without_init(self):
        assert parse_source("global int G;").global_var("G").init is None

    def test_function_signature(self):
        mod = parse_source("int foo(int x, float y) { return x; }")
        fn = mod.function("foo")
        assert fn.ret_type == "int"
        assert [(p.name, p.var_type) for p in fn.params] == [("x", "int"), ("y", "float")]

    def test_void_function_no_params(self):
        fn = parse_source("void bar() { }").function("bar")
        assert fn.ret_type == "void"
        assert fn.params == []

    def test_multiple_functions(self):
        mod = parse_source("void a() { } void b() { a(); }")
        assert [f.name for f in mod.functions] == ["a", "b"]

    def test_module_function_lookup_missing(self):
        with pytest.raises(KeyError):
            parse_source("void a() { }").function("zzz")


class TestStatements:
    def test_var_decl_with_init(self):
        stmt = first_stmt("int v = 3;")
        assert isinstance(stmt, A.VarDecl)
        assert stmt.name == "v"
        assert stmt.init.value == 3

    def test_array_decl(self):
        stmt = first_stmt("float buf[16];")
        assert stmt.array_size == 16

    def test_funcptr_decl(self):
        stmt = first_stmt("funcptr fp;")
        assert stmt.var_type == "funcptr"

    def test_assignment(self):
        stmt = first_stmt("x = 1;")
        assert isinstance(stmt, A.Assign)
        assert isinstance(stmt.target, A.VarRef)

    def test_array_element_assignment(self):
        stmt = first_stmt("a[i + 1] = 2;")
        assert isinstance(stmt.target, A.ArrayRef)
        assert isinstance(stmt.target.index, A.BinOp)

    def test_if_without_else(self):
        stmt = first_stmt("if (x > 0) x = 1;")
        assert isinstance(stmt, A.IfStmt)
        assert stmt.else_body is None
        # single statements are wrapped in blocks
        assert isinstance(stmt.then_body, A.Block)

    def test_if_with_else(self):
        stmt = first_stmt("if (x) x = 1; else x = 2;")
        assert stmt.else_body is not None

    def test_if_else_if_chain(self):
        stmt = first_stmt("if (x) x = 1; else if (y) x = 2;")
        inner = stmt.else_body.stmts[0]
        assert isinstance(inner, A.IfStmt)

    def test_for_loop_parts(self):
        stmt = first_stmt("for (i = 0; i < 10; i = i + 1) x = x + 1;")
        assert isinstance(stmt, A.ForStmt)
        assert isinstance(stmt.init, A.Assign)
        assert isinstance(stmt.cond, A.BinOp)
        assert isinstance(stmt.step, A.Assign)

    def test_for_loop_empty_parts(self):
        stmt = first_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_loop(self):
        stmt = first_stmt("while (x < 5) x = x + 1;")
        assert isinstance(stmt, A.WhileStmt)

    def test_return_value(self):
        stmt = first_stmt("return 7;")
        assert isinstance(stmt, A.ReturnStmt)
        assert stmt.value.value == 7

    def test_return_bare(self):
        assert first_stmt("return;").value is None

    def test_break_continue(self):
        assert isinstance(first_stmt("break;"), A.BreakStmt)
        assert isinstance(first_stmt("continue;"), A.ContinueStmt)

    def test_expression_statement_call(self):
        stmt = first_stmt("foo(1, 2);")
        assert isinstance(stmt, A.ExprStmt)
        assert isinstance(stmt.expr, A.CallExpr)

    def test_nested_block(self):
        stmt = first_stmt("{ int y; y = 1; }")
        assert isinstance(stmt, A.Block)
        assert len(stmt.stmts) == 2


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = first_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_relational_over_logical(self):
        expr = first_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_precedence_or_loosest(self):
        expr = first_expr("a && b || c")
        assert expr.op == "||"

    def test_parentheses_override(self):
        expr = first_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_left_associativity(self):
        expr = first_expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_unary_minus(self):
        expr = first_expr("-x")
        assert isinstance(expr, A.UnaryOp)
        assert expr.op == "-"

    def test_unary_not(self):
        assert first_expr("!x").op == "!"

    def test_double_unary(self):
        expr = first_expr("--x")
        assert isinstance(expr.operand, A.UnaryOp)

    def test_call_with_args(self):
        expr = first_expr("f(1, g(2), h())")
        assert expr.callee == "f"
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], A.CallExpr)

    def test_array_index(self):
        expr = first_expr("arr[i * 2]")
        assert isinstance(expr, A.ArrayRef)

    def test_addr_of_function(self):
        expr = first_expr("&foo")
        assert isinstance(expr, A.AddrOf)
        assert expr.func_name == "foo"

    def test_float_literal(self):
        assert isinstance(first_expr("2.5"), A.FloatLit)

    def test_string_literal_argument(self):
        stmt = first_stmt('printf("hi");')
        assert isinstance(stmt.expr.args[0], A.StringLit)

    def test_modulo(self):
        assert first_expr("a % 2").op == "%"

    def test_comparison_chain_parses_left(self):
        expr = first_expr("a == b != c")
        assert expr.op == "!="


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() {",          # unterminated block
            "int main() { x = ; }",  # missing rhs
            "int main() { 1 = x; }", # bad assignment target
            "int () { }",            # missing name
            "main() { }",            # missing type
            "int main() { for (x) ; }",  # bad for header
            "global int;",           # missing global name
            "int main() { x = (1; }",    # unbalanced paren
        ],
    )
    def test_bad_programs_raise(self, source):
        with pytest.raises(ParseError):
            parse_source(source)

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse_source("int main() {\n  x = ;\n}")
        assert exc.value.line == 2


class TestNodeIdentity:
    def test_node_ids_unique(self, paper_module):
        ids = set()
        for fn in paper_module.functions:
            for stmt in A.walk_stmts(fn.body):
                assert stmt.node_id not in ids
                ids.add(stmt.node_id)

    def test_nodes_hash_by_identity(self):
        mod = parse_source("int main() { x = 1; x = 1; }")
        a, b = mod.function("main").body.stmts
        assert a != b
        assert hash(a) != hash(b)
