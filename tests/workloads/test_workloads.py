"""Workload-analogue tests: structure and analyzability."""

import pytest

from repro.api import compile_and_instrument
from repro.frontend.parser import parse_source
from repro.workloads import all_workloads

NAMES = ["BT", "CG", "FT", "LU", "SP", "AMG", "LULESH", "RAXML"]


@pytest.fixture(scope="module")
def statics():
    return {name: compile_and_instrument(all_workloads()[name].source()) for name in NAMES}


@pytest.mark.parametrize("name", NAMES)
def test_sources_parse(name):
    parse_source(all_workloads()[name].source())


@pytest.mark.parametrize("name", NAMES)
def test_each_has_sensors(name, statics):
    assert statics[name].identification.sensor_count > 0


@pytest.mark.parametrize("name", NAMES)
def test_each_instruments_something(name, statics):
    assert len(statics[name].plan.selected) > 0


@pytest.mark.parametrize("name", NAMES)
def test_instrumented_source_reparses(name, statics):
    parse_source(statics[name].source)


def test_ft_is_alltoall_dominated(statics):
    """FT must carry an MPI_Alltoall network sensor (the §6.5 showcase)."""
    from repro.frontend import ast_nodes as A

    sensors = statics["FT"].plan.selected
    names = {
        s.snippet.node.callee
        for s in sensors
        if isinstance(s.snippet.node, A.CallExpr)
    }
    assert any("transpose" in n or "Alltoall" in n for n in names)


def test_amg_has_low_sensor_fraction(statics):
    """Adaptive refinement defeats most of AMG's snippets (Table 1)."""
    frac = {}
    for name in NAMES:
        ident = statics[name].identification
        frac[name] = ident.sensor_count / max(1, ident.snippet_count)
    assert frac["AMG"] == min(frac.values())


def test_bt_has_most_comp_sensors(statics):
    """BT is the paper's high computation-sensor-count program."""
    from repro.sensors.model import SensorType

    comp_counts = {
        name: sum(
            1
            for s in statics[name].plan.selected
            if s.sensor_type is SensorType.COMPUTATION
        )
        for name in NAMES
    }
    assert comp_counts["BT"] == max(comp_counts.values())


def test_scale_parameter_grows_source_iterations():
    wl = all_workloads()["CG"]
    assert "NITER = 15" in wl.source(1)
    assert "NITER = 30" in wl.source(2)


def test_kloc_positive():
    for name in NAMES:
        assert all_workloads()[name].kloc() > 0


def test_machine_factory():
    machine = all_workloads()["CG"].machine(n_ranks=16)
    assert machine.n_ranks == 16


def test_get_workload_case_insensitive():
    from repro.workloads import get_workload

    assert get_workload("cg").name == "CG"
