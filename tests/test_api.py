"""High-level API surface tests."""

import pytest

from repro.api import StaticResult, compile_and_instrument, run_uninstrumented, run_vsensor
from repro.instrument.annotations import Annotations, SnippetRef
from repro.sim import MachineConfig
from tests.conftest import SIMPLE_MPI_PROGRAM


def test_static_result_fields():
    static = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    assert isinstance(static, StaticResult)
    assert static.module.has_function("main")
    assert static.identification.sensor_count > 0
    assert "vs_tick" in static.source


def test_min_estimated_work_parameter():
    full = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    filtered = compile_and_instrument(SIMPLE_MPI_PROGRAM, min_estimated_work=1e9)
    assert len(filtered.plan.selected) <= len(full.plan.selected)


def test_annotations_parameter():
    # Exclude every identified sensor: nothing instrumented.
    probe = compile_and_instrument(SIMPLE_MPI_PROGRAM)
    marks = Annotations(
        exclude=[SnippetRef(s.function, s.loc.line) for s in probe.identification.sensors]
    )
    static = compile_and_instrument(SIMPLE_MPI_PROGRAM, annotations=marks)
    assert static.plan.selected == []
    assert "vs_tick" not in static.source


def test_run_vsensor_returns_everything():
    run = run_vsensor(SIMPLE_MPI_PROGRAM, MachineConfig(n_ranks=4, ranks_per_node=2))
    assert run.sim.total_time > 0
    assert run.report is not None
    assert run.runtime.server.summaries_received > 0
    assert run.static.plan.selected


def test_run_uninstrumented_has_no_records():
    result = run_uninstrumented(SIMPLE_MPI_PROGRAM, MachineConfig(n_ranks=4, ranks_per_node=2))
    assert all(r.sensor_records == 0 for r in result.ranks)


def test_extra_hooks_receive_events():
    from repro.sim.hooks import RawRecorder

    recorder = RawRecorder()
    run = run_vsensor(
        SIMPLE_MPI_PROGRAM,
        MachineConfig(n_ranks=4, ranks_per_node=2),
        extra_hooks=[recorder],
    )
    assert len(recorder.records) == sum(r.sensor_records for r in run.sim.ranks)


def test_seed_controls_determinism():
    m1 = MachineConfig(n_ranks=4, ranks_per_node=2, seed=1)
    m2 = MachineConfig(n_ranks=4, ranks_per_node=2, seed=2)
    r1a = run_vsensor(SIMPLE_MPI_PROGRAM, m1)
    r1b = run_vsensor(SIMPLE_MPI_PROGRAM, MachineConfig(n_ranks=4, ranks_per_node=2, seed=1))
    r2 = run_vsensor(SIMPLE_MPI_PROGRAM, m2)
    assert r1a.sim.total_time == r1b.sim.total_time
    assert r1a.sim.total_time != r2.sim.total_time
