"""Bad-node hunt: the paper's CG case study (§6.5, Fig. 21).

A CG run on a cluster where one node's memory subsystem performs at 55%.
vSensor's computation matrix shows a persistent light band on the node's
ranks; after "reporting the node to the administrator" and resubmitting on
healthy nodes, the run gets measurably faster (the paper saw 21%).

Run::

    python examples/bad_node_hunt.py
"""

from repro.api import run_uninstrumented, run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig, SlowMemoryNode
from repro.viz import ascii_heatmap
from repro.workloads import get_workload


def main() -> None:
    cg = get_workload("CG")
    source = cg.source(scale=2)
    n_ranks, per_node = 64, 8
    bad_node = 5  # ranks 40-47

    machine = MachineConfig(n_ranks=n_ranks, ranks_per_node=per_node, mem_fraction=0.5)
    faults = [SlowMemoryNode(node_id=bad_node, mem_factor=0.55)]

    print(f"Running CG with {n_ranks} ranks; node {bad_node} has 55% memory performance...")
    run = run_vsensor(source, machine, faults=faults, window_us=20_000)

    comp = run.report.matrices[SensorType.COMPUTATION]
    print("\nComputation performance matrix (light band = slow ranks):")
    print(ascii_heatmap(comp, max_rows=32, max_cols=70))

    suspects = run.report.suspect_ranks(SensorType.COMPUTATION, threshold=0.92)
    nodes = sorted({r // per_node for r in suspects})
    print(f"\nPersistently slow ranks: {suspects}")
    print(f"=> all on node(s) {nodes}; run a memory benchmark there to confirm.")

    # "Resubmit" on healthy nodes and compare (the paper: 80.04s -> 66.05s).
    with_bad = run_uninstrumented(source, machine, faults=faults)
    without_bad = run_uninstrumented(source, machine)
    gain = 1.0 - without_bad.total_time / with_bad.total_time
    print(
        f"\nJob time with bad node   : {with_bad.total_time / 1e3:8.1f} ms\n"
        f"Job time without bad node: {without_bad.total_time / 1e3:8.1f} ms\n"
        f"Improvement from replacing the node: {gain:.0%} (paper observed 21%)"
    )


if __name__ == "__main__":
    main()
