"""Live monitoring: noticing variance before the job finishes.

The dynamic module updates its report periodically (workflow step 8), so
a user watching the dashboard sees a developing problem while the program
is still running.  This example attaches a LiveReporter that prints a
one-line status per snapshot and flags the first moment variance appears;
the run suffers CPU contention on one node partway through.

Run::

    python examples/live_monitoring.py
"""

from repro.api import run_vsensor
from repro.runtime.live import LiveReporter, first_detection_time
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig
from repro.workloads import get_workload


def main() -> None:
    source = get_workload("CG").source(scale=3)
    machine = MachineConfig(n_ranks=16, ranks_per_node=8)

    probe = run_vsensor(source, machine)
    span = probe.sim.total_time
    fault = CpuContention(node_ids=(1,), t0=0.4 * span, t1=0.8 * span, cpu_factor=0.3)

    def on_snapshot(snapshot):
        t = snapshot.virtual_time_us / 1e3
        comp_low = snapshot.low_cells.get(SensorType.COMPUTATION, 0)
        status = f"!! {comp_low} degraded cells" if comp_low else "healthy"
        print(f"  [t={t:8.1f} ms] live report update: {status}")

    reporter = LiveReporter(period_us=span / 12, callback=on_snapshot)
    print(f"Running CG (~{span / 1e3:.0f} ms) with contention injected at "
          f"{fault.t0 / 1e3:.0f}-{fault.t1 / 1e3:.0f} ms on node 1...\n")
    run = run_vsensor(
        source,
        machine,
        faults=[fault],
        window_us=span / 24,
        batch_period_us=span / 24,
        live=reporter,
    )

    detected = first_detection_time(reporter, component=SensorType.COMPUTATION)
    print(f"\nInjection started at {fault.t0 / 1e3:.1f} ms;")
    if detected is not None:
        print(f"first live snapshot showing it: {detected / 1e3:.1f} ms "
              f"(program ran until {run.sim.total_time / 1e3:.1f} ms).")
        print("The user could have acted "
              f"{(run.sim.total_time - detected) / 1e3:.0f} ms before job end.")
    else:
        print("not detected (increase the injection strength).")


if __name__ == "__main__":
    main()
