"""Noise-injection study: profiler vs vSensor (§6.4, Figs. 18-20).

An external "noiser" steals CPU from two node groups during two 10-window
episodes of a CG run.  The mpiP-style profile shows the *MPI* column
growing — misleading, since the injected noise is pure CPU contention
(noise scheduled during communication waits is accounted as MPI time).
vSensor's computation matrix instead shows exactly which ranks were slowed
and when.

Run::

    python examples/noise_injection_study.py
"""

from repro.api import run_vsensor
from repro.baselines import MpiProfiler
from repro.frontend import parse_source
from repro.sensors.model import SensorType
from repro.sim import CpuContention, MachineConfig, Simulator
from repro.viz import ascii_heatmap
from repro.workloads import get_workload


def profile_run(source, machine, faults=()):
    profiler = MpiProfiler()
    Simulator(parse_source(source), machine, faults=tuple(faults)).run(profiler)
    return profiler.profile()


def print_profile(profile, label):
    comp = profile.comp_time()
    mpi = profile.mpi_time
    print(f"\nmpiP-style profile — {label}")
    print("  rank group   comp(ms)   mpi(ms)")
    n = profile.n_ranks
    for lo in range(0, n, n // 4):
        hi = min(lo + n // 4, n)
        c = sum(comp[lo:hi]) / (hi - lo) / 1e3
        m = sum(mpi[lo:hi]) / (hi - lo) / 1e3
        print(f"  {lo:3d}-{hi - 1:3d}     {c:8.2f}  {m:8.2f}")


def main() -> None:
    cg = get_workload("CG")
    source = cg.source(scale=3)
    machine = MachineConfig(n_ranks=32, ranks_per_node=8)

    clean = profile_run(source, machine)
    span = max(clean.total_time)
    injections = [
        CpuContention(node_ids=(1,), t0=0.25 * span, t1=0.45 * span, cpu_factor=0.35),
        CpuContention(node_ids=(3,), t0=0.60 * span, t1=0.80 * span, cpu_factor=0.35),
    ]

    noisy = profile_run(source, machine, faults=injections)
    print_profile(clean, "normal run (Fig. 18)")
    print_profile(noisy, "noise-injected run (Fig. 19)")
    print(
        "\nNote how the injected CPU noise mostly inflates the *MPI* column —"
        "\nthe profile points at the network even though the noise is CPU-side."
    )

    run = run_vsensor(source, machine, faults=injections, window_us=span / 16)
    comp = run.report.matrices[SensorType.COMPUTATION]
    print("\nvSensor computation matrix (Fig. 20) — two white blocks:")
    print(ascii_heatmap(comp, max_rows=32, max_cols=70))
    for region in run.report.regions:
        if region.sensor_type is SensorType.COMPUTATION and region.cells >= 2:
            print("  " + region.describe())


if __name__ == "__main__":
    main()
