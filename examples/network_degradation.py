"""Network-degradation detection: the paper's FT case study (§6.5, Fig. 22).

FT exchanges data with ``MPI_Alltoall`` every step, making it acutely
sensitive to interconnect congestion.  A degradation episode is injected
mid-run; vSensor's *network* performance matrix shows the time band, while
the computation matrix stays clean — the per-component attribution that
tells the user "it's the network, resubmitting won't help unless it
clears".

Run::

    python examples/network_degradation.py
"""

import numpy as np

from repro.api import run_uninstrumented, run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig, NetworkDegradation
from repro.viz import ascii_heatmap
from repro.workloads import get_workload


def main() -> None:
    ft = get_workload("FT")
    source = ft.source(scale=2)
    machine = MachineConfig(n_ranks=32, ranks_per_node=8)

    baseline = run_uninstrumented(source, machine)
    span = baseline.total_time
    # Congest the fabric for the middle ~60% of the run at 20% performance.
    episode = NetworkDegradation(t0=0.2 * span, t1=2.0 * span, factor=0.2)

    print(f"Normal FT run: {span / 1e3:.1f} ms. Injecting congestion...")
    degraded = run_uninstrumented(source, machine, faults=[episode])
    slowdown = degraded.total_time / span
    print(
        f"Congested run: {degraded.total_time / 1e3:.1f} ms "
        f"({slowdown:.2f}x slower; the paper's episode caused 3.37x)"
    )

    run = run_vsensor(source, machine, faults=[episode], window_us=span / 12)
    net = run.report.matrices[SensorType.NETWORK]
    comp = run.report.matrices[SensorType.COMPUTATION]

    print("\nNetwork performance matrix (light band = congestion window):")
    print(ascii_heatmap(net, max_rows=16, max_cols=70))
    print("\nComputation performance matrix (should stay dark):")
    print(ascii_heatmap(comp, max_rows=16, max_cols=70))

    net_regions = [r for r in run.report.regions if r.sensor_type is SensorType.NETWORK]
    if net_regions:
        big = max(net_regions, key=lambda r: r.cells)
        print(f"\nLargest network variance region: {big.describe()}")
        print("All ranks are affected at once — the signature of a fabric-wide problem.")
    comp_mean = float(np.nanmean(comp))
    print(f"\nMean computation performance stayed at {comp_mean:.2f}.")


if __name__ == "__main__":
    main()
