"""Quickstart: the whole vSensor pipeline on a tiny program.

Run::

    python examples/quickstart.py

Steps shown: write a program in the mini language, identify its v-sensors,
inspect the instrumented source, run it on a simulated 16-rank cluster with
one bad node, and read the variance report.
"""

from repro.api import run_vsensor
from repro.sensors.model import SensorType
from repro.sim import MachineConfig, SlowMemoryNode
from repro.viz import ascii_heatmap

PROGRAM = """
global int NITER = 40;

void stencil() {
    int i;
    for (i = 0; i < 24; i = i + 1) compute_units(40);
}

void reduce_residual() {
    MPI_Allreduce(16);
}

int main() {
    int step;
    for (step = 0; step < NITER; step = step + 1) {
        stencil();
        reduce_residual();
    }
    return 0;
}
"""


def main() -> None:
    machine = MachineConfig(n_ranks=16, ranks_per_node=4)
    # Node 2 (ranks 8-11) has degraded memory — the paper's "bad node".
    faults = [SlowMemoryNode(node_id=2, mem_factor=0.5)]

    run = run_vsensor(PROGRAM, machine, faults=faults, window_us=10_000)

    print("=== Static module ===")
    ident = run.static.identification
    print(f"snippet candidates : {ident.snippet_count}")
    print(f"identified sensors : {ident.sensor_count}")
    print(f"instrumented       : {run.static.plan.summary()}")
    for sensor in run.static.plan.selected:
        print(f"  - {sensor.describe()}")

    print("\n=== Instrumented source (excerpt) ===")
    for line in run.static.source.splitlines():
        if "vs_tick" in line or "vs_tock" in line:
            print("  " + line.strip())

    print("\n=== Dynamic module ===")
    print(run.report.summary())

    comp = run.report.matrices.get(SensorType.COMPUTATION)
    if comp is not None:
        print("\nComputation performance matrix (ranks x time; light = slow):")
        print(ascii_heatmap(comp, max_rows=16, max_cols=60))

    suspects = run.report.suspect_ranks(SensorType.COMPUTATION, threshold=0.9)
    print(f"\nSuspect ranks (persistently slow): {suspects}")
    print("Expected: ranks 8-11 — they live on the degraded node 2.")


if __name__ == "__main__":
    main()
