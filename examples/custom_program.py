"""Extending vSensor: your own program, extern models, and rules.

Shows the three extension points the paper describes (§3.1, §3.5):

1. describing an external function's workload so snippets containing it
   can be sensors,
2. adding a *static* rule (here: network sensors must have a literal
   destination),
3. adding a *dynamic* rule (grouping records by cache-miss band) so
   consistently-slow high-miss records stop masquerading as variance.

Run::

    python examples/custom_program.py
"""

from repro.api import compile_and_instrument, run_vsensor
from repro.runtime.dynrules import CacheMissBands
from repro.sensors import FixedDestinationRule
from repro.sensors.extern import RET_CONST, ExternModel, default_extern_registry
from repro.sim import MachineConfig

PROGRAM = """
global int STEPS = 30;

void solve_tile() {
    int i;
    for (i = 0; i < 16; i = i + 1) compute_units(30);
}

int main() {
    int s; int peer;
    peer = MPI_Comm_rank() + 1;
    for (s = 0; s < STEPS; s = s + 1) {
        solve_tile();
        dma_push(3, 128);
        dma_push(peer, 128);
        MPI_Barrier();
    }
    return 0;
}
"""


def main() -> None:
    # 1. Undescribed externs are never-fixed: dma_push kills its snippets.
    plain = compile_and_instrument(PROGRAM)
    print(f"without a model for dma_push : {plain.plan.summary()} instrumented")

    # Describe it: arg 1 is the transfer size, arg 0 the destination.
    registry = default_extern_registry()
    registry.register(
        ExternModel("dma_push", workload_args=(1,), ret=RET_CONST, category="net", dest_arg=0, base_cost=2.0, unit_cost=0.5)
    )
    described = compile_and_instrument(PROGRAM, externs=registry)
    print(f"with the model               : {described.plan.summary()} instrumented")

    # 2. A static rule: keep only network sensors with a constant peer.
    strict = compile_and_instrument(
        PROGRAM, externs=registry, static_rules=[FixedDestinationRule()]
    )
    print(f"plus fixed-destination rule  : {strict.plan.summary()} instrumented")

    # 3. A dynamic rule at runtime: group records by cache-miss band.
    machine = MachineConfig(n_ranks=8, ranks_per_node=4)
    run = run_vsensor(
        PROGRAM,
        machine,
        externs=registry,
        rule=CacheMissBands(band_width=0.10),
        window_us=10_000,
    )
    print("\n" + run.report.summary())
    groups = {s.group for d in run.runtime.detectors.values() for s in d.summaries}
    print(f"dynamic-rule groups observed : {sorted(groups)}")


if __name__ == "__main__":
    main()
