"""Command-line driver: the tool chain as a usable tool.

Subcommands mirror the workflow steps::

    python -m repro identify  prog.vsn            # steps 1-2: list v-sensors
    python -m repro instrument prog.vsn           # steps 3-5: emit modified source
    python -m repro run prog.vsn --ranks 32 ...   # steps 6-8: simulate + report
    python -m repro workloads                     # list the bundled analogues
    python -m repro history append|show|scan ...  # cross-run regression hunting

``run`` accepts fault injections in a compact syntax::

    --fault slowmem:NODE[:FACTOR]
    --fault badnode:NODE[:FACTOR]
    --fault contention:NODE[,NODE...]:T0_MS:T1_MS[:FACTOR]
    --fault netdeg:T0_MS:T1_MS[:FACTOR]

and either a source file or ``--workload NAME`` for a bundled analogue.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import compile_and_instrument, run_vsensor
from repro.errors import ReproError
from repro.sensors.model import SensorType
from repro.sim import (
    BadNode,
    CpuContention,
    Fault,
    IoDegradation,
    MachineConfig,
    NetworkDegradation,
    SlowMemoryNode,
)
from repro.viz import ascii_heatmap, matrix_to_csv, write_pgm


def _load_source(args) -> str:
    if getattr(args, "workload", None):
        from repro.workloads import get_workload

        return get_workload(args.workload).source(scale=getattr(args, "scale", 1) or 1)
    if not args.program:
        raise ReproError("give a program file or --workload NAME")
    with open(args.program, encoding="utf-8") as fh:
        return fh.read()


def parse_fault(spec: str) -> Fault:
    """Parse one ``--fault`` specification (times in milliseconds)."""
    parts = spec.split(":")
    kind = parts[0].lower()
    try:
        if kind == "slowmem":
            node = int(parts[1])
            factor = float(parts[2]) if len(parts) > 2 else 0.55
            return SlowMemoryNode(node_id=node, mem_factor=factor)
        if kind == "badnode":
            node = int(parts[1])
            factor = float(parts[2]) if len(parts) > 2 else 0.6
            return BadNode(node_id=node, cpu_factor=factor, mem_factor=factor)
        if kind == "contention":
            nodes = tuple(int(n) for n in parts[1].split(","))
            t0, t1 = float(parts[2]) * 1000.0, float(parts[3]) * 1000.0
            factor = float(parts[4]) if len(parts) > 4 else 0.5
            return CpuContention(node_ids=nodes, t0=t0, t1=t1, cpu_factor=factor)
        if kind == "netdeg":
            t0, t1 = float(parts[1]) * 1000.0, float(parts[2]) * 1000.0
            factor = float(parts[3]) if len(parts) > 3 else 0.3
            return NetworkDegradation(t0=t0, t1=t1, factor=factor)
        if kind == "iodeg":
            t0, t1 = float(parts[1]) * 1000.0, float(parts[2]) * 1000.0
            factor = float(parts[3]) if len(parts) > 3 else 0.3
            return IoDegradation(t0=t0, t1=t1, factor=factor)
    except (IndexError, ValueError) as exc:
        raise ReproError(f"bad fault spec {spec!r}: {exc}") from exc
    raise ReproError(
        f"unknown fault kind {kind!r} (slowmem|badnode|contention|netdeg|iodeg)"
    )


def _compile_kwargs(args) -> dict:
    """Keyword arguments shared by every compiling subcommand."""
    kwargs = {"max_depth": args.max_depth}
    if getattr(args, "no_cache", False):
        kwargs["store"] = None
    return kwargs


def _print_pass_profile(static) -> None:
    print("\nper-pass profile:")
    print(static.profile.format_table())


def _print_fusability(module) -> None:
    """Lockstep-tier fusability tally of the compiled instrumented program."""
    from repro.sensors.extern import default_extern_registry
    from repro.sim.bytecode import compile_module, fusability_summary

    counts = fusability_summary(compile_module(module, default_extern_registry()))
    fusable = sum(counts.get(k, 0) for k in ("vector", "branch", "call"))
    convergence = sum(counts.get(k, 0) for k in ("rendezvous", "observe"))
    forced = counts.get("diverge", 0)
    detail = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print("\nlockstep fusability (bytecode instructions):")
    print(
        f"   fusable={fusable} convergence-points={convergence}"
        f" forced-divergence={forced}  ({detail})"
    )


def cmd_identify(args) -> int:
    source = _load_source(args)
    static = compile_and_instrument(
        source, filename=args.program or args.workload, **_compile_kwargs(args)
    )
    ident = static.identification
    print(f"snippet candidates : {ident.snippet_count}")
    print(f"identified sensors : {ident.sensor_count}")
    print(f"selected           : {static.plan.summary()}")
    for sensor in ident.sensors:
        marker = "*" if sensor.selected else " "
        print(f" {marker} {sensor.describe()}")
    print("(* = selected for instrumentation)")
    if args.explain:
        print("\nrejected snippets (identify):")
        for rejection in ident.rejections:
            snippet = rejection.snippet
            print(f"   {snippet.spelled} @ {rejection.diagnostic.format()}")
        later = static.plan.diagnostics + static.program.diagnostics
        if later:
            print("\ndropped sensors (select/instrument):")
            for diag in later:
                print(f"   {diag.format()}")
        _print_fusability(static.program.module)
    if args.profile_passes:
        _print_pass_profile(static)
    return 0


def cmd_instrument(args) -> int:
    source = _load_source(args)
    static = compile_and_instrument(source, **_compile_kwargs(args))
    out = args.output
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(static.source)
        print(f"instrumented {len(static.plan.selected)} sensor(s) -> {out}")
    else:
        sys.stdout.write(static.source)
    if args.profile_passes:
        _print_pass_profile(static)
    return 0


def cmd_run(args) -> int:
    import time

    source = _load_source(args)
    machine = MachineConfig(
        n_ranks=args.ranks,
        ranks_per_node=args.ranks_per_node,
        seed=args.seed,
    )
    faults = [parse_fault(spec) for spec in args.fault or []]
    obs = None
    if args.trace_out or args.metrics_out or args.obs_summary:
        from repro.obs import Obs

        obs = Obs.create()
    if args.shards:
        return _run_sharded(args, source, faults, obs)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    wall_t0 = time.perf_counter()
    run = run_vsensor(
        source,
        machine,
        faults=faults,
        window_us=args.window_ms * 1000.0,
        engine=args.engine,
        analysis_engine=args.analysis_engine,
        channel=args.channel,
        obs=obs,
        overhead_budget=args.overhead_budget,
        governor_policy=args.governor_policy,
        history_store=args.history_store,
        history_label=args.history_label or "",
        history_workload=args.workload or "",
        **_compile_kwargs(args),
    )
    wall_s = time.perf_counter() - wall_t0
    if profiler is not None:
        import io
        import pstats
        from pathlib import Path

        profiler.disable()
        out = Path("out")
        out.mkdir(exist_ok=True)
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(40)
        (out / "profile.txt").write_text(buf.getvalue())
        print("profile written to out/profile.txt")
    print(f"instrumented : {run.static.plan.summary()}")
    print(f"total time   : {run.sim.total_time / 1e3:.2f} ms")
    if run.history_entry is not None:
        entry = run.history_entry
        print(
            f"history      : appended run {entry.seq} to "
            f"{entry.fingerprint[:12]} in {args.history_store}"
        )
    if args.profile_passes:
        _print_pass_profile(run.static)
    if obs is not None:
        from repro.obs import flame_summary, write_chrome_trace, write_metrics

        if args.trace_out:
            write_chrome_trace(obs.tracer, args.trace_out)
            print(f"trace written to {args.trace_out} (chrome://tracing / Perfetto)")
        if args.metrics_out:
            write_metrics(obs.metrics, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        if args.obs_summary:
            report = obs.overhead_report(wall_s)
            print()
            print(flame_summary(obs.tracer))
            print(
                f"observability self-cost: {report['overhead_fraction']:.3%} of "
                f"{wall_s * 1e3:.1f} ms wall "
                f"({report['spans']} spans, {report['metric_ops']} metric ops)"
            )
    print(run.report.summary())
    governor = run.runtime.governor
    if governor is not None and (args.obs_summary or governor.decisions):
        print()
        print(governor.format_tally())
    for sensor_type in SensorType:
        matrix = run.report.matrices.get(sensor_type)
        if matrix is None:
            continue
        print(f"\n{sensor_type.value} performance matrix (light = slow):")
        print(ascii_heatmap(matrix, max_rows=args.matrix_rows, max_cols=args.matrix_cols))
        suspects = run.report.suspect_ranks(sensor_type, threshold=0.9)
        if suspects:
            print(f"persistently slow ranks: {suspects}")
        if args.export:
            base = f"{args.export}_{sensor_type.value.lower()}"
            write_pgm(matrix, base + ".pgm")
            matrix_to_csv(matrix, base + ".csv", window_us=args.window_ms * 1000.0)
            print(f"exported {base}.pgm / .csv")
    return 0


def _run_sharded(args, source: str, faults, obs) -> int:
    """``run --shards N [--jobs J]``: the multi-tenant sharded service.

    Each job replays the same program as its own tenant on a machine with
    a distinct noise seed — the fleet setting where one shared analysis
    service ingests every tenant's summaries concurrently.
    """
    from repro.api import JobSpec, run_multi_job

    kwargs = _compile_kwargs(args)
    jobs = [
        JobSpec(
            source=source,
            machine=MachineConfig(
                n_ranks=args.ranks,
                ranks_per_node=args.ranks_per_node,
                seed=args.seed + job,
            ),
            job_id=job,
            faults=faults,
            channel=args.channel,
            engine=args.engine,
            max_depth=kwargs["max_depth"],
        )
        for job in range(args.jobs)
    ]
    run = run_multi_job(
        jobs,
        n_shards=args.shards,
        window_us=args.window_ms * 1000.0,
        analysis_engine=args.analysis_engine,
        obs=obs,
        workers=args.workers,
        shard_processes=args.shard_processes,
        **({"store": kwargs["store"]} if "store" in kwargs else {}),
    )
    print(f"sharded service : {run.service.describe()}")
    if run.fabric is not None and run.fabric.restarts():
        print(f"shard restarts  : {run.fabric.restarts()}")
    for job_id, job_run in sorted(run.jobs.items()):
        report = job_run.report
        print(
            f"  job {job_id}: ranks={report.n_ranks} "
            f"intra={report.intra_events} inter={report.inter_events} "
            f"data={report.bytes_to_server / 1024:.1f}KiB "
            f"degraded={list(report.degraded_ranks)}"
        )
    if obs is not None:
        from repro.obs import write_chrome_trace, write_metrics

        if args.trace_out:
            write_chrome_trace(obs.tracer, args.trace_out)
            print(f"trace written to {args.trace_out}")
        if args.metrics_out:
            write_metrics(obs.metrics, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
    first = min(run.jobs)
    print(f"\njob {first} report:")
    print(run.jobs[first].report.summary())
    return 0


def _history_hunter(args):
    from repro.history import EDivisive, RegressionHunter

    detector = EDivisive(
        seed=args.scan_seed,
        permutations=args.permutations,
        significance=args.significance,
        min_segment=args.min_segment,
    )
    return RegressionHunter(detector=detector)


def cmd_history_append(args) -> int:
    """Run one configuration and append its baselines to a store."""
    source = _load_source(args)
    machine = MachineConfig(
        n_ranks=args.ranks, ranks_per_node=args.ranks_per_node, seed=args.seed
    )
    faults = [parse_fault(spec) for spec in args.fault or []]
    run = run_vsensor(
        source,
        machine,
        faults=faults,
        window_us=args.window_ms * 1000.0,
        engine=args.engine,
        history_store=args.store,
        history_label=args.label or "",
        history_workload=args.workload or "",
        **_compile_kwargs(args),
    )
    entry = run.history_entry
    print(
        f"appended run {entry.seq} to {entry.fingerprint} "
        f"({len(entry.sensors)} sensors, "
        f"total {entry.total_time_us / 1e3:.2f} ms, "
        f"intra={entry.intra_events} inter={entry.inter_events})"
    )
    return 0


def cmd_history_show(args) -> int:
    """List a store's trajectories, or one trajectory's runs."""
    from repro.history import RunStore

    store = RunStore(args.store)
    if args.fingerprint:
        runs = store.runs(args.fingerprint)
        if not runs:
            print(f"no runs for fingerprint {args.fingerprint}")
            return 0
        print(f"{args.fingerprint}: {len(runs)} run(s)")
        for record in runs:
            label = f" [{record.label}]" if record.label else ""
            workload = f" {record.workload}" if record.workload else ""
            print(
                f"  {record.seq:4d}{workload}{label} "
                f"total={record.total_time_us / 1e3:.2f}ms "
                f"intra={record.intra_events} inter={record.inter_events} "
                f"sensors={len(record.sensors)}"
            )
        return 0
    keys = store.fingerprints()
    if not keys:
        print(f"empty history store: {args.store}")
        return 0
    print(f"history store {args.store}: {len(keys)} trajectory(ies)")
    for key in keys:
        runs = store.runs(key)
        last = runs[-1]
        tag = last.workload or last.label or "-"
        print(f"  {key[:16]}…  runs={len(runs)}  last={tag}")
    return 0


def cmd_history_scan(args) -> int:
    """Hunt a store (or bench-file trajectory) for change points.

    Exit status: 0 when no regression was found, 3 when at least one
    was — distinct from 2 (usage/config errors) so CI can gate on it.
    """
    hunter = _history_hunter(args)
    if args.bench_dogfood:
        from repro.history import scan_bench_trajectory

        scan = scan_bench_trajectory(args.bench_dogfood, hunter=hunter)
    else:
        from repro.history import RunStore

        if not args.store:
            raise ReproError("give --store DIR or --bench-dogfood FILE...")
        scan = hunter.scan_store(RunStore(args.store), fingerprint=args.fingerprint)
    print(scan.summary())
    if args.explain:
        for diag in scan.diagnostics():
            print("  " + diag.format())
    return 3 if scan.regressions else 0


def cmd_workloads(args) -> int:
    from repro.workloads import all_workloads

    for name, workload in sorted(all_workloads().items()):
        print(f"{name:8s} {workload.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vSensor reproduction: identify, instrument and run programs "
        "with online performance-variance detection on a simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_program_args(p):
        p.add_argument("program", nargs="?", help="mini-language source file")
        p.add_argument("--workload", help="bundled analogue (BT/CG/FT/LU/SP/AMG/LULESH/RAXML/FWQ)")
        p.add_argument("--scale", type=int, default=1, help="workload scale factor")
        p.add_argument("--max-depth", type=int, default=3, help="instrumentation depth cut")
        p.add_argument(
            "--profile-passes",
            action="store_true",
            help="print per-pass wall time and artifact-cache hit/miss table",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the compilation artifact cache for this invocation",
        )

    p_identify = sub.add_parser("identify", help="list identified v-sensors")
    add_program_args(p_identify)
    p_identify.add_argument(
        "--explain", action="store_true", help="also list rejected snippets with reasons"
    )
    p_identify.set_defaults(func=cmd_identify)

    p_instr = sub.add_parser("instrument", help="emit Tick/Tock-instrumented source")
    add_program_args(p_instr)
    p_instr.add_argument("-o", "--output", help="write instrumented source here (default stdout)")
    p_instr.set_defaults(func=cmd_instrument)

    p_run = sub.add_parser("run", help="simulate a run with online detection")
    add_program_args(p_run)
    p_run.add_argument("--ranks", type=int, default=32)
    p_run.add_argument("--ranks-per-node", type=int, default=8)
    p_run.add_argument("--seed", type=int, default=20180224)
    p_run.add_argument("--window-ms", type=float, default=20.0, help="matrix window (ms)")
    p_run.add_argument("--fault", action="append", help="inject a fault (see --help epilog)")
    p_run.add_argument("--export", help="path stem for PGM/CSV matrix export")
    p_run.add_argument("--matrix-rows", type=int, default=32)
    p_run.add_argument("--matrix-cols", type=int, default=70)
    p_run.add_argument(
        "--channel",
        help="simulate an unreliable rank->server channel: "
        "'lossy', 'perfect', or 'drop=0.1,dup=0.05,reorder=0.2,delay=200,seed=7' "
        "(batches then use sequenced retry delivery with idempotent ingest)",
    )
    p_run.add_argument(
        "--overhead-budget",
        type=float,
        default=None,
        help="enable the runtime overhead governor with this probe "
        "self-cost budget (fraction of elapsed time, e.g. 0.02)",
    )
    p_run.add_argument(
        "--governor-policy",
        choices=("adaptive", "paper-shutoff"),
        default=None,
        help="governor policy: 'adaptive' (budget loop with demote/promote "
        "hysteresis) or 'paper-shutoff' (only the paper's §5.3 one-way "
        "shutoff, behavior-identical to no governor)",
    )
    p_run.add_argument(
        "--engine",
        choices=("bytecode", "ast", "lockstep", "auto"),
        default="bytecode",
        help="interpreter tier: compiled register VM (default), the AST "
        "reference, the SIMD-over-ranks lockstep VM, or 'auto' (bytecode "
        "below 16 ranks, lockstep at or above — the measured crossover)",
    )
    p_run.add_argument(
        "--analysis-engine",
        choices=("columnar", "reference"),
        default="columnar",
        help="analysis-server data path: vectorized columnar store with "
        "incremental replay (default) or the object-at-a-time reference",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run through the sharded multi-tenant analysis service with "
        "this many shard workers (0 = classic unsharded run)",
    )
    p_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of concurrent tenant jobs for --shards (each replays "
        "the program on a machine with a distinct noise seed)",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="for --shards/--jobs: fan the per-job compile+simulate phase "
        "out to this many OS processes (deterministic pool; results are "
        "bit-identical to --workers 1)",
    )
    p_run.add_argument(
        "--shard-processes",
        action="store_true",
        help="for --shards: run each shard worker's ingest side in a child "
        "OS process over the framed fabric wire protocol (bit-identical "
        "merged queries, crash/replay recovery)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation with cProfile and write out/profile.txt",
    )
    p_run.add_argument(
        "--trace-out",
        help="write a Chrome trace_event JSON of the run's internal spans "
        "(load in chrome://tracing or Perfetto)",
    )
    p_run.add_argument(
        "--metrics-out",
        help="write the run's internal counters/gauges/histograms as JSON",
    )
    p_run.add_argument(
        "--obs-summary",
        action="store_true",
        help="print a flame summary of internal spans and the observability "
        "self-overhead as a fraction of wall time",
    )
    p_run.add_argument(
        "--history-store",
        default=None,
        help="append this run's sensor baselines to the cross-run regression "
        "history store at this directory (see 'repro history')",
    )
    p_run.add_argument(
        "--history-label",
        default=None,
        help="free-form label stored with the appended history record "
        "(e.g. a commit hash or CI run id)",
    )
    p_run.set_defaults(func=cmd_run)

    p_hist = sub.add_parser(
        "history",
        help="cross-run regression history: append runs, show trajectories, "
        "hunt for change points",
    )
    hist_sub = p_hist.add_subparsers(dest="history_command", required=True)

    p_happend = hist_sub.add_parser(
        "append", help="run one configuration and append its baselines"
    )
    add_program_args(p_happend)
    p_happend.add_argument("--store", required=True, help="history store directory")
    p_happend.add_argument("--label", default=None, help="label for this record")
    p_happend.add_argument("--ranks", type=int, default=32)
    p_happend.add_argument("--ranks-per-node", type=int, default=8)
    p_happend.add_argument("--seed", type=int, default=20180224)
    p_happend.add_argument("--window-ms", type=float, default=20.0)
    p_happend.add_argument("--fault", action="append", help="inject a fault")
    p_happend.add_argument(
        "--engine",
        choices=("bytecode", "ast", "lockstep", "auto"),
        default="bytecode",
    )
    p_happend.set_defaults(func=cmd_history_append)

    p_hshow = hist_sub.add_parser(
        "show", help="list trajectories, or one trajectory's runs"
    )
    p_hshow.add_argument("--store", required=True, help="history store directory")
    p_hshow.add_argument(
        "--fingerprint", default=None, help="show this trajectory's runs"
    )
    p_hshow.set_defaults(func=cmd_history_show)

    p_hscan = hist_sub.add_parser(
        "scan",
        help="hunt trajectories for change points (exit 3 when a "
        "regression is found)",
    )
    p_hscan.add_argument("--store", default=None, help="history store directory")
    p_hscan.add_argument(
        "--fingerprint", default=None, help="scan only this trajectory"
    )
    p_hscan.add_argument(
        "--bench-dogfood",
        nargs="+",
        metavar="BENCH_JSON",
        help="instead of a store, hunt ordered snapshots of the repo's own "
        "BENCH_*.json payloads (grouped by basename)",
    )
    p_hscan.add_argument(
        "--scan-seed",
        type=int,
        default=20180224,
        help="seed for the e-divisive permutation tests (results are "
        "bit-identical for a fixed seed)",
    )
    p_hscan.add_argument(
        "--permutations",
        type=int,
        default=199,
        help="permutations per significance test",
    )
    p_hscan.add_argument(
        "--significance",
        type=float,
        default=0.05,
        help="p-value at or below which a change point is accepted",
    )
    p_hscan.add_argument(
        "--min-segment",
        type=int,
        default=5,
        help="minimum runs on each side of any change point",
    )
    p_hscan.add_argument(
        "--explain",
        action="store_true",
        help="also print findings as structured diagnostics",
    )
    p_hscan.set_defaults(func=cmd_history_scan)

    p_wl = sub.add_parser("workloads", help="list bundled workload analogues")
    p_wl.set_defaults(func=cmd_workloads)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
