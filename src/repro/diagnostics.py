"""Structured compiler diagnostics.

Every rejection, veto, and skip the static module produces is a
:class:`Diagnostic`: a severity, a stable machine-readable reason code, a
source span, the pass that emitted it, and a human message.  The ``--explain``
CLI mode and ``StaticResult.diagnostics`` surface these; the stable codes let
tests and downstream tooling match on *why* without string-scraping messages.

Codes are append-only: renaming or reusing a value would silently break
consumers keyed on it, so retired codes stay reserved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.location import SourceLoc


class Severity(enum.Enum):
    """How alarming a diagnostic is.

    Rejections are *expected* analysis outcomes (most snippets are not
    v-sensors), so they carry NOTE; WARNING marks degraded output (e.g. a
    selected sensor that could not be spliced); ERROR is reserved for
    failures that abort a pass.
    """

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


class ReasonCode(enum.Enum):
    """Stable reason codes for rejection diagnostics.

    Grouped by the pass that emits them: ``identify`` codes say why a snippet
    is not a v-sensor (§3.2–§3.5), ``select`` codes why an identified sensor
    is not instrumented (§4), ``instrument`` codes why a selected sensor got
    no probes.
    """

    # -- identify: the dependency-propagation slice found a variant input
    VARIANT_INPUT = "variant-input"
    MIXED_DEFS = "mixed-defs"
    CROSS_EXEC_STATE = "cross-exec-state"
    CALL_CLOBBERS = "call-clobbers"
    SNIPPET_CALL_CLOBBERS = "snippet-call-clobbers"
    # -- identify: the slice hit something unanalyzable (§3.5 poison)
    ARRAY_LOAD = "array-load"
    ARRAY_STORE = "array-store"
    UNINITIALIZED_READ = "uninitialized-read"
    UNINITIALIZED_LOCAL = "uninitialized-local"
    INDIRECT_CALL = "indirect-call"
    UNDESCRIBED_EXTERN = "undescribed-extern"
    EXTERN_NONFIXED_RETURN = "extern-nonfixed-return"
    CALLEE_NONFIXED_RETURN = "callee-nonfixed-return"
    CALLEE_NONFIXED_WORKLOAD = "callee-nonfixed-workload"
    RECURSIVE_FUNCTION = "recursive-function"
    # -- identify: scope verdicts (§3.2 intra / §3.3 inter-procedural)
    NOT_PROMOTABLE = "not-promotable"
    NOT_FIXED = "not-fixed"
    # -- select (§4)
    LOCAL_SCOPE = "local-scope"
    TOO_DEEP = "too-deep"
    NESTED_SENSOR = "nested-sensor"
    BELOW_GRANULARITY = "below-granularity"
    ANNOTATION_EXCLUDED = "annotation-excluded"
    STATIC_RULE_VETO = "static-rule-veto"
    # -- instrument
    UNSPLICEABLE = "unspliceable"
    # -- history: cross-run change-point findings (repro/history); the
    #    span carries the trajectory:metric name and the run index
    PERF_REGRESSION = "perf-regression"
    PERF_IMPROVEMENT = "perf-improvement"
    PERF_SHIFT = "perf-shift"


@dataclass(frozen=True, slots=True)
class Span:
    """A source region: ``filename:line:col`` through ``end_line:end_col``.

    The mini-language AST records only start positions, so a node's span is
    widened over its subtree: the extent runs to the last line any nested
    node starts on.
    """

    filename: str = "<string>"
    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0

    def __str__(self) -> str:
        if self.end_line > self.line:
            return f"{self.filename}:{self.line}:{self.col}-{self.end_line}"
        return f"{self.filename}:{self.line}:{self.col}"

    @property
    def is_unknown(self) -> bool:
        return self.line == 0

    @classmethod
    def from_loc(cls, loc: SourceLoc) -> "Span":
        return cls(
            filename=loc.filename,
            line=loc.line,
            col=loc.col,
            end_line=loc.line,
            end_col=loc.col,
        )

    @classmethod
    def from_node(cls, node) -> "Span":
        """Span of an AST node, widened over its subtree."""
        from repro.frontend import ast_nodes as A

        start: SourceLoc = node.loc
        end_line, end_col = start.line, start.col

        def absorb(loc: SourceLoc) -> None:
            nonlocal end_line, end_col
            if loc.is_unknown:
                return
            if (loc.line, loc.col) > (end_line, end_col):
                end_line, end_col = loc.line, loc.col

        if isinstance(node, A.Stmt):
            for stmt in A.walk_stmts(node):
                absorb(stmt.loc)
                for expr in A.walk_exprs(stmt):
                    absorb(expr.loc)
        else:
            for expr in A.walk_exprs(node):
                absorb(expr.loc)
        return cls(
            filename=start.filename,
            line=start.line,
            col=start.col,
            end_line=end_line,
            end_col=end_col,
        )


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One structured finding of the static module."""

    severity: Severity
    code: ReasonCode
    message: str
    span: Span = field(default_factory=Span)
    #: provenance: name of the pipeline pass that emitted this
    origin: str = ""

    def format(self) -> str:
        """One-line rendering: ``file:line:col: note[code] message (pass)``."""
        where = "<unknown>" if self.span.is_unknown else str(self.span)
        origin = f" ({self.origin})" if self.origin else ""
        return f"{where}: {self.severity.value}[{self.code.value}] {self.message}{origin}"

    def __str__(self) -> str:
        return self.format()

    def with_origin(self, origin: str) -> "Diagnostic":
        """Copy with pass provenance filled in (no-op when already set)."""
        if self.origin:
            return self
        return Diagnostic(
            severity=self.severity,
            code=self.code,
            message=self.message,
            span=self.span,
            origin=origin,
        )


def note(
    code: ReasonCode,
    message: str,
    span: Span | None = None,
    origin: str = "",
) -> Diagnostic:
    """Shorthand for the common rejection-note diagnostic."""
    return Diagnostic(
        severity=Severity.NOTE,
        code=code,
        message=message,
        span=span if span is not None else Span(),
        origin=origin,
    )
