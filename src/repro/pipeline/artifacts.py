"""Content-addressed artifact storage for the compilation pipeline.

Every pass output is keyed by a content hash of *(source text, pass config,
upstream artifact keys)* — see :meth:`~repro.pipeline.manager.PassManager`.
The store is a bounded in-memory LRU with an optional write-through on-disk
layer, so repeated ``compile_and_instrument`` calls across benchmark sweeps
(and, with a disk directory, across processes) reuse every unchanged stage.

Keys are ``"<pass>:<sha256 hex>"``; the pass-name prefix gives the disk
layout and lets callers invalidate one stage (`invalidate_pass`) to force a
mid-pipeline recompute.  Because downstream keys are derived from upstream
*keys* (not object identity), a recompute that produces the same content
leaves every downstream entry valid — that is what makes targeted
invalidation cheap.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any

#: per-process uniquifier for temp-file names (see _disk_write)
_tmp_serial = itertools.count()


class FingerprintError(TypeError):
    """A config value has no deterministic content fingerprint.

    The pipeline reacts by disabling caching for that compilation (never by
    guessing): a wrong hash would silently serve stale artifacts.
    """


def fingerprint(value: Any) -> str:
    """A deterministic, content-based string for a config value.

    Handles scalars, enums, dataclasses, containers, and objects that either
    expose ``cache_fingerprint()`` or carry no instance state.  Raises
    :class:`FingerprintError` for anything else.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    hook = getattr(value, "cache_fingerprint", None)
    if callable(hook):
        return str(hook())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={fingerprint(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    if isinstance(value, (list, tuple)):
        items = ",".join(fingerprint(v) for v in value)
        return f"{type(value).__name__}[{items}]"
    if isinstance(value, (set, frozenset)):
        items = ",".join(sorted(fingerprint(v) for v in value))
        return f"{type(value).__name__}{{{items}}}"
    if isinstance(value, dict):
        items = ",".join(
            f"{fingerprint(k)}:{fingerprint(v)}"
            for k, v in sorted(value.items(), key=lambda kv: fingerprint(kv[0]))
        )
        return f"dict{{{items}}}"
    # Stateless strategy objects (e.g. a static rule with only class attrs)
    # are identified by their class.
    try:
        state = vars(value)
    except TypeError:
        raise FingerprintError(
            f"{type(value).__qualname__} has no deterministic fingerprint; "
            "define cache_fingerprint() on it or pass store=None"
        ) from None
    if not state:
        return type(value).__qualname__
    fields = ",".join(f"{k}={fingerprint(v)}" for k, v in sorted(state.items()))
    return f"{type(value).__qualname__}({fields})"


def digest(*parts: str) -> str:
    """SHA-256 over the parts, framed so no concatenation can collide."""
    h = hashlib.sha256()
    for part in parts:
        raw = part.encode("utf-8")
        h.update(len(raw).to_bytes(8, "little"))
        h.update(raw)
    return h.hexdigest()


@dataclasses.dataclass(slots=True)
class StoreStats:
    """Hit/miss counters, overall and per pass name."""

    hits: int = 0
    misses: int = 0
    by_pass: dict[str, list] = dataclasses.field(default_factory=dict)

    def record(self, pass_name: str, hit: bool) -> None:
        entry = self.by_pass.setdefault(pass_name, [0, 0])
        if hit:
            self.hits += 1
            entry[0] += 1
        else:
            self.misses += 1
            entry[1] += 1

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            name: {"hits": h, "misses": m} for name, (h, m) in self.by_pass.items()
        }


def _unlink_quiet(path: Path) -> bool:
    """Remove ``path``, tolerating a concurrent remover; True if we won."""
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


class ArtifactStore:
    """Bounded LRU of pass artifacts with an optional on-disk layer.

    ``capacity`` bounds the number of in-memory entries (artifacts are
    whole ASTs / IR modules, so the bound is a count, not bytes).  With
    ``disk_dir`` set, every put is written through as a pickle and misses
    fall back to disk; unpicklable artifacts and corrupt files degrade to
    cache misses, never to errors.

    The disk layer is safe under concurrent writers — every writer
    publishes through its own uniquely-named temp file and an atomic
    rename, so parallel pool workers can share one warm compile cache;
    stale temp files from crashed writers are never read and are swept
    on :meth:`clear` / :meth:`invalidate_pass`.
    """

    def __init__(self, capacity: int = 128, disk_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = StoreStats()
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str) -> tuple[Any, bool]:
        """``(artifact, hit)``; a disk hit is promoted into memory."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key], True
        value = self._disk_read(key)
        if value is not None:
            self._remember(key, value)
            return value, True
        return None, False

    def put(self, key: str, value: Any) -> None:
        self._remember(key, value)
        self._disk_write(key, value)

    def _remember(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- invalidation --------------------------------------------------------

    def invalidate_key(self, key: str) -> bool:
        """Drop one entry (memory and disk); True if anything was removed."""
        removed = self._entries.pop(key, None) is not None
        path = self._disk_path(key)
        if path is not None and path.exists():
            removed = _unlink_quiet(path) or removed
        return removed

    def invalidate_pass(self, pass_name: str) -> int:
        """Drop every artifact of one pass; returns the number removed."""
        prefix = f"{pass_name}:"
        doomed = [k for k in self._entries if k.startswith(prefix)]
        for key in doomed:
            del self._entries[key]
        removed = len(doomed)
        if self.disk_dir is not None:
            pass_dir = self.disk_dir / pass_name
            if pass_dir.is_dir():
                for path in pass_dir.glob("*.pkl"):
                    if _unlink_quiet(path):
                        removed += 1
                for path in pass_dir.glob("*.tmp"):
                    _unlink_quiet(path)  # stale temp from a crashed writer
        return removed

    def clear(self) -> None:
        self._entries.clear()
        if self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*/*.pkl"):
                _unlink_quiet(path)
            for path in self.disk_dir.glob("*/*.tmp"):
                _unlink_quiet(path)  # stale temp from a crashed writer

    # -- disk layer ----------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        pass_name, _, hexdigest = key.partition(":")
        return self.disk_dir / pass_name / f"{hexdigest}.pkl"

    def _disk_read(self, key: str) -> Any | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None  # corrupt / version-skewed entry: treat as a miss

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        # The temp name is unique per writer (pid + per-process serial):
        # concurrent processes publishing the same key — parallel pool
        # workers warming a shared compile cache — must never interleave
        # writes into one temp file.  Each writes its own temp and the
        # rename is atomic, so the last replace wins with whole content
        # and readers never see a torn file.  Stale ``*.tmp`` leftovers
        # from a crashed writer are inert (never read) and swept by
        # :meth:`clear` / :meth:`invalidate_pass`.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_tmp_serial)}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)  # atomic publish: readers never see a torn file
        except Exception:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return  # unpicklable artifact / full disk: stay memory-only
