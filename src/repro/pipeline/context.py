"""Compilation context and per-pass profiling records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.diagnostics import Diagnostic
from repro.obs import NULL_OBS, Obs
from repro.pipeline.artifacts import ArtifactStore


@dataclass(slots=True)
class PassTiming:
    """Wall time and cache outcome of one pass execution."""

    name: str
    seconds: float
    cache_hit: bool
    key: str | None = None


@dataclass(slots=True)
class PipelineProfile:
    """Per-pass wall time and cache hit/miss accounting for one compile.

    Exposed on :class:`~repro.api.StaticResult` for programmatic use and
    rendered by the CLI's ``--profile-passes`` flag.
    """

    timings: list[PassTiming] = field(default_factory=list)
    #: False when caching was off (no store, or unfingerprintable config)
    cache_enabled: bool = True
    #: why caching was disabled, when it was
    cache_disabled_reason: str = ""

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    @property
    def hits(self) -> int:
        return sum(1 for t in self.timings if t.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for t in self.timings if not t.cache_hit)

    def timing(self, name: str) -> PassTiming:
        for t in self.timings:
            if t.name == name:
                return t
        raise KeyError(name)

    def format_table(self) -> str:
        """A fixed-width table, one row per pass, totals last."""
        lines = [f"{'pass':<12s} {'wall (ms)':>10s} {'cache':>6s}"]
        for t in self.timings:
            lines.append(
                f"{t.name:<12s} {t.seconds * 1e3:>10.3f} "
                f"{'hit' if t.cache_hit else 'miss':>6s}"
            )
        lines.append(
            f"{'total':<12s} {self.total_seconds * 1e3:>10.3f} "
            f"{f'{self.hits}/{len(self.timings)}':>6s}"
        )
        if not self.cache_enabled and self.cache_disabled_reason:
            lines.append(f"(cache disabled: {self.cache_disabled_reason})")
        return "\n".join(lines)


@dataclass(slots=True)
class CompilerContext:
    """Everything one compilation carries through the pass pipeline.

    ``config`` holds the pass-visible knobs (max_depth, externs, ...);
    each pass declares which keys feed its content hash.  ``artifacts`` and
    ``keys`` are filled by the :class:`~repro.pipeline.manager.PassManager`
    as passes run.
    """

    source: str
    filename: str = "<program>"
    config: dict[str, Any] = field(default_factory=dict)
    store: ArtifactStore | None = None
    artifacts: dict[str, Any] = field(default_factory=dict)
    keys: dict[str, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    profile: PipelineProfile = field(default_factory=PipelineProfile)
    #: observability sink for per-pass spans and cache counters; never part
    #: of any cache fingerprint, so enabling it cannot change artifacts
    obs: Obs = field(default_factory=lambda: NULL_OBS)

    def artifact(self, name: str) -> Any:
        """The output of pass ``name`` (which must have run)."""
        return self.artifacts[name]
