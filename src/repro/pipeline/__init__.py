"""Pass-manager pipeline for the static (compile-time) side of vSensor.

Public surface:

* :class:`CompilerContext` — one compilation's source, config, and results.
* :class:`PassManager` / :class:`Pass` — registration, ordering, execution.
* :class:`ArtifactStore` — content-addressed LRU (+ optional disk) cache.
* :func:`static_pass_manager` / :func:`build_static_pass_manager` — the
  seven named passes (parse, lower, cfa, dataflow, identify, select,
  instrument) wired together.
* :func:`default_store` — the process-wide store ``repro.api`` defaults to.
"""

from repro.pipeline.artifacts import (
    ArtifactStore,
    FingerprintError,
    StoreStats,
    digest,
    fingerprint,
)
from repro.pipeline.context import CompilerContext, PassTiming, PipelineProfile
from repro.pipeline.manager import Pass, PassManager, PipelineError
from repro.pipeline.passes import (
    CfaArtifact,
    SelectionArtifact,
    build_static_pass_manager,
    default_store,
    static_pass_manager,
)

__all__ = [
    "ArtifactStore",
    "CfaArtifact",
    "CompilerContext",
    "FingerprintError",
    "Pass",
    "PassManager",
    "PassTiming",
    "PipelineError",
    "PipelineProfile",
    "SelectionArtifact",
    "StoreStats",
    "build_static_pass_manager",
    "default_store",
    "digest",
    "fingerprint",
    "static_pass_manager",
]
