"""The pass manager: named passes, dependency ordering, timing, caching.

A :class:`Pass` declares its inputs (names of upstream passes) and which
context-config keys feed its behaviour.  The :class:`PassManager`
topologically orders registered passes, runs the ones a target needs, times
every execution, and — when the context carries an
:class:`~repro.pipeline.artifacts.ArtifactStore` — reuses cached artifacts
keyed by content hash of *(source text, pass config, upstream artifact
keys)*.  Two compilations of the same text under the same config therefore
share every stage, while any change to the source or to one knob invalidates
exactly the passes downstream of it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.pipeline.artifacts import FingerprintError, digest, fingerprint
from repro.pipeline.context import CompilerContext, PassTiming


class PipelineError(ReproError):
    """Bad pass graph: unknown input, duplicate name, or a cycle."""


@dataclass(frozen=True, slots=True)
class Pass:
    """One named compilation stage."""

    name: str
    #: names of upstream passes whose artifacts this pass consumes
    inputs: tuple[str, ...]
    #: ``run(ctx, inputs) -> artifact`` where ``inputs`` maps name -> artifact
    run: Callable[[CompilerContext, dict[str, Any]], Any]
    #: context-config keys that change this pass's output
    config_keys: tuple[str, ...] = ()
    #: bump to invalidate previously cached artifacts of this pass
    version: str = "1"


@dataclass(slots=True)
class PassManager:
    """Registry + scheduler for the compilation passes."""

    _passes: dict[str, Pass] = field(default_factory=dict)

    def register(self, pass_: Pass) -> Pass:
        if pass_.name in self._passes:
            raise PipelineError(f"duplicate pass {pass_.name!r}")
        self._passes[pass_.name] = pass_
        return pass_

    def get(self, name: str) -> Pass:
        try:
            return self._passes[name]
        except KeyError:
            raise PipelineError(f"unknown pass {name!r}") from None

    @property
    def names(self) -> list[str]:
        return list(self._passes)

    # -- scheduling ----------------------------------------------------------

    def order(self, target: str | None = None) -> list[Pass]:
        """Passes in dependency order; with ``target``, only its ancestors.

        Kahn's algorithm with registration order as the tiebreak, so the
        schedule is deterministic.  Raises :class:`PipelineError` on unknown
        inputs or cycles.
        """
        for p in self._passes.values():
            for dep in p.inputs:
                if dep not in self._passes:
                    raise PipelineError(f"pass {p.name!r} needs unknown input {dep!r}")

        wanted: set[str] | None = None
        if target is not None:
            wanted = set()
            stack = [self.get(target).name]
            while stack:
                name = stack.pop()
                if name in wanted:
                    continue
                wanted.add(name)
                stack.extend(self._passes[name].inputs)

        names = [n for n in self._passes if wanted is None or n in wanted]
        pending = {n: set(self._passes[n].inputs) & set(names) for n in names}
        ordered: list[Pass] = []
        while pending:
            ready = [n for n, deps in pending.items() if not deps]
            if not ready:
                cycle = ", ".join(sorted(pending))
                raise PipelineError(f"pass dependency cycle among: {cycle}")
            name = ready[0]  # registration order: dict preserves insertion
            del pending[name]
            for deps in pending.values():
                deps.discard(name)
            ordered.append(self._passes[name])
        return ordered

    # -- execution -----------------------------------------------------------

    def run(self, ctx: CompilerContext, target: str | None = None) -> dict[str, Any]:
        """Run the pipeline (up to ``target``) over ``ctx``; returns artifacts.

        With a store on the context, each pass first computes its content
        key; a hit skips execution entirely.  An unfingerprintable config
        value disables caching for this compilation (recorded on the
        profile) rather than risking a stale hit.
        """
        schedule = self.order(target)
        store = ctx.store
        tracer = ctx.obs.tracer
        metrics = ctx.obs.metrics
        source_digest = digest(ctx.source, ctx.filename)
        for pass_ in schedule:
            key: str | None = None
            if store is not None:
                try:
                    key = self._key_for(pass_, ctx, source_digest)
                except FingerprintError as exc:
                    store = None
                    ctx.profile.cache_enabled = False
                    ctx.profile.cache_disabled_reason = str(exc)
            artifact, hit = (None, False)
            with tracer.span(f"pass.{pass_.name}") as span:
                t0 = time.perf_counter()
                if key is not None:
                    artifact, hit = store.get(key)
                if not hit:
                    inputs = {name: ctx.artifacts[name] for name in pass_.inputs}
                    artifact = pass_.run(ctx, inputs)
                    if key is not None:
                        store.put(key, artifact)
                elapsed = time.perf_counter() - t0
                span.set("cache_hit", hit)
            metrics.counter(
                "pipeline.cache_hits" if hit else "pipeline.cache_misses"
            ).inc()
            if store is not None and key is not None:
                store.stats.record(pass_.name, hit)
            if key is not None:
                ctx.keys[pass_.name] = key
            ctx.artifacts[pass_.name] = artifact
            ctx.profile.timings.append(
                PassTiming(name=pass_.name, seconds=elapsed, cache_hit=hit, key=key)
            )
        if store is None:
            ctx.profile.cache_enabled = False
            if not ctx.profile.cache_disabled_reason:
                ctx.profile.cache_disabled_reason = "no artifact store"
        return ctx.artifacts

    def _key_for(self, pass_: Pass, ctx: CompilerContext, source_digest: str) -> str:
        config_fp = ";".join(
            f"{k}={fingerprint(ctx.config.get(k))}" for k in pass_.config_keys
        )
        upstream = [ctx.keys[name] for name in pass_.inputs]
        return f"{pass_.name}:" + digest(
            pass_.name, pass_.version, source_digest, config_fp, *upstream
        )
