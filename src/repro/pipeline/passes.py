"""The static module as named passes (paper steps 1–5).

=========== ==================================================== ==============
pass        does                                                 paper step
=========== ==================================================== ==============
parse       source text → AST (deterministic node ids)           1 (compile)
lower       AST → three-address IR with AST back-links           1 (compile)
cfa         call graph + recursion/pointer pruning + shapes      2a (call graph)
dataflow    use–def chains + bottom-up function summaries        2c (summaries)
identify    snippet enumeration, v-sensor predicate, rejections  2, 3 (identify)
select      scope / granularity / nesting rules + annotations    4 (selection)
instrument  Tick/Tock splicing into a copy of the parse tree     4, 5 (modify)
=========== ==================================================== ==============

Each pass declares its inputs and the config keys that change its output,
so the :class:`~repro.pipeline.manager.PassManager` can cache artifacts
content-addressed and re-run exactly the stages a change invalidates.

The ``instrument`` pass never mutates the shared ``parse`` artifact: it
splices probes into a deep copy (node ids are preserved by copying, and the
probe nodes themselves are numbered deterministically past the tree's
maximum id), which is what makes the parse/identify artifacts safely
shareable across cached compilations.
"""

from __future__ import annotations

import copy
import dataclasses

from repro.callgraph.graph import CallGraph, build_call_graph
from repro.callgraph.preprocess import PreprocessResult, preprocess_call_graph
from repro.diagnostics import Diagnostic, ReasonCode, Span, note
from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_source
from repro.instrument.rewrite import InstrumentedProgram, instrument_module
from repro.instrument.select import InstrumentationPlan, select_sensors
from repro.ir.lower import lower_module
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.context import CompilerContext
from repro.pipeline.manager import Pass, PassManager
from repro.sensors.asttools import FunctionShape
from repro.sensors.extern import default_extern_registry
from repro.sensors.identify import (
    IdentificationResult,
    _Identifier,
    apply_static_rules,
    compute_function_shapes,
)
from repro.sensors.summaries import compute_summaries


@dataclasses.dataclass(slots=True)
class CfaArtifact:
    """Output of the ``cfa`` pass: call-side control structure."""

    callgraph: CallGraph
    preprocess: PreprocessResult
    shapes: dict[str, FunctionShape]


@dataclasses.dataclass(slots=True)
class SelectionArtifact:
    """Output of the ``select`` pass.

    ``identification`` is the identify artifact, or an annotated view of it
    (same analyses, sensors list adjusted by manual include/exclude marks);
    the underlying identify artifact is never mutated.
    """

    identification: IdentificationResult
    plan: InstrumentationPlan


def _externs(ctx: CompilerContext):
    return ctx.config.get("externs") or default_extern_registry()


def _parse_pass(ctx: CompilerContext, _ins) -> A.Module:
    return parse_source(ctx.source, filename=ctx.filename)


def _lower_pass(_ctx: CompilerContext, ins):
    return lower_module(ins["parse"])


def _cfa_pass(_ctx: CompilerContext, ins) -> CfaArtifact:
    ir = ins["lower"]
    callgraph = build_call_graph(ir)
    return CfaArtifact(
        callgraph=callgraph,
        preprocess=preprocess_call_graph(callgraph),
        shapes=compute_function_shapes(ir),
    )


def _dataflow_pass(ctx: CompilerContext, ins):
    cfa = ins["cfa"]
    return compute_summaries(ins["lower"], cfa.callgraph, cfa.preprocess, _externs(ctx))


def _identify_pass(ctx: CompilerContext, ins) -> IdentificationResult:
    cfa = ins["cfa"]
    identifier = _Identifier(
        ins["parse"],
        _externs(ctx),
        entry=ctx.config.get("entry", "main"),
        ir=ins["lower"],
        callgraph=cfa.callgraph,
        preprocess=cfa.preprocess,
        summaries=ins["dataflow"],
        shapes=cfa.shapes,
    )
    result = identifier.run()
    static_rules = tuple(ctx.config.get("static_rules") or ())
    if static_rules:
        apply_static_rules(result, static_rules)
    return result


def _select_pass(ctx: CompilerContext, ins) -> SelectionArtifact:
    ident: IdentificationResult = ins["identify"]
    annotations = ctx.config.get("annotations")
    exclusion_notes: list[Diagnostic] = []
    view = ident
    if annotations is not None:
        kept = [s for s in ident.sensors if not annotations.is_excluded(s)]
        for sensor in ident.sensors:
            if annotations.is_excluded(sensor):
                exclusion_notes.append(
                    note(
                        ReasonCode.ANNOTATION_EXCLUDED,
                        f"{sensor.snippet.spelled} excluded by developer annotation",
                        span=Span.from_node(sensor.snippet.node),
                        origin="select",
                    )
                )
        kept.extend(annotations.forced_sensors(ident))
        view = dataclasses.replace(ident, sensors=kept)
    plan = select_sensors(
        view,
        max_depth=ctx.config.get("max_depth", 3),
        min_estimated_work=ctx.config.get("min_estimated_work", 0.0),
    )
    plan.diagnostics[:0] = exclusion_notes
    return SelectionArtifact(identification=view, plan=plan)


def _max_node_id(module: A.Module) -> int:
    highest = module.node_id
    for fn in module.functions:
        highest = max(highest, fn.node_id)
        for param in fn.params:
            highest = max(highest, param.node_id)
        if fn.body is not None:
            for stmt in A.walk_stmts(fn.body):
                highest = max(highest, stmt.node_id)
                for expr in A.walk_exprs(stmt):
                    highest = max(highest, expr.node_id)
    for g in module.globals:
        highest = max(highest, g.node_id)
        if g.init is not None:
            highest = max(highest, g.init.node_id)
    return highest


def _instrument_pass(_ctx: CompilerContext, ins) -> InstrumentedProgram:
    selection: SelectionArtifact = ins["select"]
    module = copy.deepcopy(ins["parse"])
    # Probe nodes get deterministic ids just past the tree's own, keeping the
    # instrumented tree reproducible and its ids collision-free.
    with A.fresh_node_ids(start=_max_node_id(module) + 1):
        return instrument_module(module, selection.plan.selected)


def build_static_pass_manager() -> PassManager:
    """A fresh PassManager wired with the seven static passes."""
    manager = PassManager()
    manager.register(Pass(name="parse", inputs=(), run=_parse_pass))
    manager.register(Pass(name="lower", inputs=("parse",), run=_lower_pass))
    manager.register(Pass(name="cfa", inputs=("lower",), run=_cfa_pass))
    manager.register(
        Pass(
            name="dataflow",
            inputs=("lower", "cfa"),
            run=_dataflow_pass,
            config_keys=("externs",),
        )
    )
    manager.register(
        Pass(
            name="identify",
            inputs=("parse", "lower", "cfa", "dataflow"),
            run=_identify_pass,
            config_keys=("externs", "static_rules", "entry"),
        )
    )
    manager.register(
        Pass(
            name="select",
            inputs=("identify",),
            run=_select_pass,
            config_keys=("max_depth", "min_estimated_work", "annotations"),
        )
    )
    manager.register(
        Pass(name="instrument", inputs=("parse", "select"), run=_instrument_pass)
    )
    return manager


_STATIC_MANAGER: PassManager | None = None
_DEFAULT_STORE: ArtifactStore | None = None


def static_pass_manager() -> PassManager:
    """The shared, stateless manager instance for the static pipeline."""
    global _STATIC_MANAGER
    if _STATIC_MANAGER is None:
        _STATIC_MANAGER = build_static_pass_manager()
    return _STATIC_MANAGER


def default_store() -> ArtifactStore:
    """The process-wide artifact store ``compile_and_instrument`` defaults to."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(capacity=256)
    return _DEFAULT_STORE
