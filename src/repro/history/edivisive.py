"""Seedless-style e-divisive-means change-point detection.

The detector answers "at which run indices did this series change
distribution?" the way Hunter does for Cassandra benchmarks (*Hunter:
Using Change Point Detection to Hunt for Performance Regressions*): the
energy-statistic divergence of Matteson & James is maximized over every
admissible split of a segment, the best split is accepted only if a
permutation test says a divergence that large is unlikely under
exchangeability, and accepted splits recurse into both halves.

Reproducibility is a hard contract here, not a nicety: the permutation
test draws from one explicitly seeded PCG64 generator created fresh per
:meth:`EDivisive.detect` call — no wall-clock, no global ``random`` /
``numpy.random`` state — and segments are processed in deterministic FIFO
order, so the same ``(seed, series)`` pair always yields a bit-identical
:class:`ChangePoint` list.  The golden and property suites in
``tests/history`` pin exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ChangePoint:
    """One accepted distribution change in a series.

    ``index`` is the first index of the *new* regime: ``series[:index]``
    is "before", ``series[index:]`` (up to the next change point) is
    "after".  Medians are taken over the two sides of the segment the
    split was found in, so nested changes don't bleed into each other's
    magnitudes.
    """

    index: int
    statistic: float
    p_value: float
    before_median: float
    after_median: float

    @property
    def direction(self) -> str:
        """``"up"`` / ``"down"`` / ``"flat"`` movement of the median."""
        if self.after_median > self.before_median:
            return "up"
        if self.after_median < self.before_median:
            return "down"
        return "flat"

    @property
    def magnitude(self) -> float:
        """Relative median change; absolute change when before is 0."""
        if self.before_median != 0.0:
            return (self.after_median - self.before_median) / abs(self.before_median)
        return self.after_median - self.before_median

    def describe(self) -> str:
        pct = self.magnitude * 100.0
        return (
            f"run {self.index}: {self.direction} "
            f"{self.before_median:.6g} -> {self.after_median:.6g} "
            f"({pct:+.1f}%), p={self.p_value:.4g}"
        )


def _pair_sums(x: np.ndarray) -> np.ndarray:
    """Inclusive 2-D prefix sums of the pairwise |x_i - x_j| matrix,
    padded so ``P[a, b] = sum_{i<a, j<b} |x_i - x_j|``."""
    d = np.abs(x[:, None] - x[None, :])
    n = len(x)
    p = np.zeros((n + 1, n + 1))
    np.cumsum(d, axis=0, out=d)
    np.cumsum(d, axis=1, out=d)
    p[1:, 1:] = d
    return p


def _q_statistics(x: np.ndarray, min_segment: int) -> tuple[np.ndarray, np.ndarray]:
    """Matteson-James Q divergence for every admissible split of ``x``.

    Returns ``(splits, q)`` where ``splits[i]`` elements go to the left of
    split ``i``.  Admissible splits leave at least ``min_segment`` points
    (and never fewer than 2, so the within-sample pair means exist) on
    each side.
    """
    n = len(x)
    lo = max(min_segment, 2)
    splits = np.arange(lo, n - lo + 1)
    if len(splits) == 0:
        return splits, np.zeros(0)
    p = _pair_sums(x)
    diag = p[splits, splits]
    row = p[splits, n]
    total = p[n, n]
    m = splits.astype(np.float64)
    k = n - m
    within_a = diag / 2.0  # each unordered pair counted twice in P
    within_b = (total - 2.0 * row + diag) / 2.0
    cross = row - diag
    divergence = (
        2.0 * cross / (m * k)
        - 2.0 * within_a / (m * (m - 1.0))
        - 2.0 * within_b / (k * (k - 1.0))
    )
    return splits, (m * k / (m + k)) * divergence


class EDivisive:
    """Hierarchical e-divisive-means detector with seeded permutation tests.

    ``significance`` is the per-split acceptance level for the permutation
    p-value ``(1 + #{permuted max-Q >= observed}) / (1 + permutations)``;
    note the smallest reachable p-value is ``1 / (1 + permutations)``, so
    ``permutations`` must be large enough for ``significance`` to be
    reachable at all.  ``min_segment`` is the minimum number of runs on
    each side of any split (also the minimum regime length).
    """

    def __init__(
        self,
        seed: int = 20180224,
        permutations: int = 199,
        significance: float = 0.05,
        min_segment: int = 5,
        max_points: int = 32,
    ) -> None:
        if permutations < 1:
            raise ValueError("permutations must be >= 1")
        if not 0.0 < significance <= 1.0:
            raise ValueError("significance must be in (0, 1]")
        if min_segment < 2:
            raise ValueError("min_segment must be >= 2 (pair means need 2 points)")
        if 1.0 / (1.0 + permutations) > significance:
            raise ValueError(
                f"{permutations} permutations cannot reach p <= {significance}; "
                "raise permutations or loosen significance"
            )
        self.seed = seed
        self.permutations = permutations
        self.significance = significance
        self.min_segment = min_segment
        self.max_points = max_points

    def detect(self, series) -> list[ChangePoint]:
        """All significant change points of ``series``, sorted by index.

        A fresh generator is created per call, so a detector instance is
        reusable and two calls with equal input are bit-identical.
        """
        x = np.asarray(series, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("series must be one-dimensional")
        if not np.isfinite(x).all():
            raise ValueError("series must be finite (filter NaN/inf upstream)")
        rng = np.random.Generator(np.random.PCG64(self.seed))
        found: list[ChangePoint] = []
        # FIFO over (lo, hi) half-open segments: deterministic scan order,
        # hence a deterministic permutation-draw sequence.
        pending: list[tuple[int, int]] = [(0, len(x))]
        while pending and len(found) < self.max_points:
            lo, hi = pending.pop(0)
            accepted = self._test_segment(x, lo, hi, rng)
            if accepted is None:
                continue
            found.append(accepted)
            pending.append((lo, accepted.index))
            pending.append((accepted.index, hi))
        found.sort(key=lambda cp: cp.index)
        return found

    # -- internals ---------------------------------------------------------

    def _test_segment(
        self, x: np.ndarray, lo: int, hi: int, rng: np.random.Generator
    ) -> ChangePoint | None:
        segment = x[lo:hi]
        if len(segment) < 2 * max(self.min_segment, 2):
            return None
        splits, q = _q_statistics(segment, self.min_segment)
        if len(q) == 0:
            return None
        best = int(np.argmax(q))
        observed = float(q[best])
        if observed <= 0.0:
            # A constant (or divergence-free) segment: never significant,
            # and skipping the permutation loop keeps constant series cheap.
            return None
        exceed = 0
        for _ in range(self.permutations):
            shuffled = rng.permutation(segment)
            _, perm_q = _q_statistics(shuffled, self.min_segment)
            if len(perm_q) and float(perm_q.max()) >= observed:
                exceed += 1
        p_value = (1.0 + exceed) / (1.0 + self.permutations)
        if p_value > self.significance:
            return None
        split = int(splits[best])
        return ChangePoint(
            index=lo + split,
            statistic=observed,
            p_value=p_value,
            before_median=float(np.median(segment[:split])),
            after_median=float(np.median(segment[split:])),
        )
