"""Regression hunter: walk a history store, emit change-point findings.

The hunter turns trajectories into per-metric series, runs the seeded
:class:`~repro.history.edivisive.EDivisive` detector over each, and
classifies every accepted change point against the metric's orientation
(is up good, bad, or neither?) into a :class:`Finding` — which threads
into the repo's existing :class:`~repro.diagnostics.Diagnostic` machinery
(stable ``perf-regression`` / ``perf-improvement`` / ``perf-shift``
reason codes) and the obs layer (``history.scan`` spans,
``history.changepoints`` / ``history.regressions`` counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.diagnostics import Diagnostic, ReasonCode, Severity, Span
from repro.history.edivisive import ChangePoint, EDivisive
from repro.history.store import RunRecord, RunStore
from repro.obs import NULL_OBS, Obs

#: metric orientations: does the number going up mean better or worse?
HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"
NEUTRAL = "neutral"

#: substring heuristics for bench-file metrics; first match wins, and
#: longer/more specific tokens come first so "speedup" beats "seconds"
_LOWER_TOKENS = (
    "overhead",
    "seconds",
    "latency",
    "duration",
    "time_us",
    "total_time",
    "cost",
    "misses",
    "dropped",
    "retries",
    "bytes",
)
_HIGHER_TOKENS = (
    "speedup",
    "f_score",
    "fscore",
    "precision",
    "recall",
    "coverage",
    "throughput",
    "rows_per_s",
    "runs_per_s",
    "perf",
    "hits",
)


def classify_metric(name: str) -> str:
    """Orientation of a metric by name; unknown names are NEUTRAL."""
    lowered = name.lower()
    for token in _HIGHER_TOKENS:
        if token in lowered:
            return HIGHER_IS_BETTER
    for token in _LOWER_TOKENS:
        if token in lowered:
            return LOWER_IS_BETTER
    return NEUTRAL


@dataclass(frozen=True, slots=True)
class Finding:
    """One classified change point in one metric of one trajectory."""

    fingerprint: str
    series: str
    #: "regression" | "improvement" | "shift"
    kind: str
    change: ChangePoint
    #: label of the first run of the new regime, when the store knows it
    run_label: str = ""

    def describe(self) -> str:
        where = f"{self.fingerprint[:12]}:{self.series}" if self.fingerprint else self.series
        label = f" [{self.run_label}]" if self.run_label else ""
        return f"{self.kind} {where} @ {self.change.describe()}{label}"

    def to_diagnostic(self) -> Diagnostic:
        code = {
            "regression": ReasonCode.PERF_REGRESSION,
            "improvement": ReasonCode.PERF_IMPROVEMENT,
        }.get(self.kind, ReasonCode.PERF_SHIFT)
        severity = Severity.WARNING if self.kind == "regression" else Severity.NOTE
        name = f"{self.fingerprint[:12]}:{self.series}" if self.fingerprint else self.series
        return Diagnostic(
            severity=severity,
            code=code,
            message=self.change.describe()
            + (f" [{self.run_label}]" if self.run_label else ""),
            span=Span(filename=name, line=self.change.index),
            origin="history.scan",
        )


@dataclass(slots=True)
class HistoryScan:
    """Outcome of one hunter pass over one or more trajectories."""

    findings: list[Finding] = field(default_factory=list)
    runs_scanned: int = 0
    series_scanned: int = 0
    #: series skipped for being too short or containing non-finite values
    series_skipped: int = 0

    def of_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    @property
    def regressions(self) -> list[Finding]:
        return self.of_kind("regression")

    @property
    def improvements(self) -> list[Finding]:
        return self.of_kind("improvement")

    def diagnostics(self) -> list[Diagnostic]:
        return [f.to_diagnostic() for f in self.findings]

    def merge(self, other: "HistoryScan") -> None:
        self.findings.extend(other.findings)
        self.runs_scanned += other.runs_scanned
        self.series_scanned += other.series_scanned
        self.series_skipped += other.series_skipped

    def summary(self) -> str:
        lines = [
            f"history scan — {self.runs_scanned} runs, "
            f"{self.series_scanned} series ({self.series_skipped} skipped): "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.of_kind('shift'))} shift(s)"
        ]
        lines.extend("  " + f.describe() for f in self.findings)
        return "\n".join(lines)


def _classify(orientation: str, change: ChangePoint) -> str:
    if change.direction == "flat" or orientation == NEUTRAL:
        return "shift"
    worse = change.direction == ("down" if orientation == HIGHER_IS_BETTER else "up")
    return "regression" if worse else "improvement"


def store_series(runs: list[RunRecord]) -> dict[str, tuple[str, list[float]]]:
    """Per-metric ``name -> (orientation, series)`` view of one trajectory.

    Sensor series exist only for sensors present in *every* run of the
    trajectory — a sensor appearing or vanishing mid-trajectory is a
    config/selection change the fingerprint should have caught, and a
    misaligned series would dowse for change points at the wrong indices.
    """
    out: dict[str, tuple[str, list[float]]] = {
        "run.total_time_us": (LOWER_IS_BETTER, [r.total_time_us for r in runs]),
        "run.intra_events": (NEUTRAL, [float(r.intra_events) for r in runs]),
        "run.inter_events": (NEUTRAL, [float(r.inter_events) for r in runs]),
        "run.coverage_confidence": (
            HIGHER_IS_BETTER,
            [r.coverage_confidence for r in runs],
        ),
        "run.sampling_coverage": (
            HIGHER_IS_BETTER,
            [r.sampling_coverage for r in runs],
        ),
    }
    if all(r.f_score is not None for r in runs):
        out["run.f_score"] = (HIGHER_IS_BETTER, [float(r.f_score) for r in runs])
    common: set[int] | None = None
    for record in runs:
        ids = {s.sensor_id for s in record.sensors}
        common = ids if common is None else (common & ids)
    for sensor_id in sorted(common or ()):
        rows = [
            next(s for s in r.sensors if s.sensor_id == sensor_id) for r in runs
        ]
        out[f"sensor[{sensor_id}].median_perf"] = (
            HIGHER_IS_BETTER,
            [s.median_perf for s in rows],
        )
        out[f"sensor[{sensor_id}].p95_perf"] = (
            HIGHER_IS_BETTER,
            [s.p95_perf for s in rows],
        )
        out[f"sensor[{sensor_id}].standard_us"] = (
            LOWER_IS_BETTER,
            [s.standard_us for s in rows],
        )
    return out


class RegressionHunter:
    """Drives the detector over stores, raw series maps, or trajectories."""

    def __init__(self, detector: EDivisive | None = None, obs: Obs | None = None) -> None:
        self.detector = detector or EDivisive()
        self.obs = obs or NULL_OBS

    # -- raw series --------------------------------------------------------

    def scan_series(
        self,
        series: dict[str, list[float]],
        fingerprint: str = "",
        orientations: dict[str, str] | None = None,
        labels: list[str] | None = None,
        runs_scanned: int | None = None,
    ) -> HistoryScan:
        """Hunt a ``name -> series`` map; orientation defaults to the
        name heuristics of :func:`classify_metric`."""
        scan = HistoryScan()
        metrics = self.obs.metrics if self.obs.enabled else None
        with self.obs.tracer.span(
            "history.scan", fingerprint=fingerprint[:12], series=len(series)
        ):
            for name in sorted(series):
                values = np.asarray(series[name], dtype=np.float64)
                if len(values) < 2 * self.detector.min_segment or not np.isfinite(
                    values
                ).all():
                    scan.series_skipped += 1
                    continue
                scan.series_scanned += 1
                orientation = (orientations or {}).get(name) or classify_metric(name)
                for change in self.detector.detect(values):
                    label = ""
                    if labels is not None and change.index < len(labels):
                        label = labels[change.index]
                    scan.findings.append(
                        Finding(
                            fingerprint=fingerprint,
                            series=name,
                            kind=_classify(orientation, change),
                            change=change,
                            run_label=label,
                        )
                    )
            lengths = [len(v) for v in series.values()]
            scan.runs_scanned = (
                runs_scanned if runs_scanned is not None else max(lengths, default=0)
            )
            if metrics is not None:
                metrics.counter("history.series_scanned").inc(scan.series_scanned)
                metrics.counter("history.runs_scanned").inc(scan.runs_scanned)
                metrics.counter("history.changepoints").inc(len(scan.findings))
                metrics.counter("history.regressions").inc(len(scan.regressions))
        return scan

    # -- stores ------------------------------------------------------------

    def scan_trajectory(self, runs: list[RunRecord], fingerprint: str = "") -> HistoryScan:
        if not runs:
            return HistoryScan()
        named = store_series(runs)
        return self.scan_series(
            {name: values for name, (_, values) in named.items()},
            fingerprint=fingerprint or runs[0].fingerprint,
            orientations={name: orient for name, (orient, _) in named.items()},
            labels=[r.label for r in runs],
            runs_scanned=len(runs),
        )

    def scan_store(self, store: RunStore, fingerprint: str | None = None) -> HistoryScan:
        """Hunt one fingerprint's trajectory, or every trajectory in the
        store when ``fingerprint`` is ``None``."""
        keys = [fingerprint] if fingerprint is not None else store.fingerprints()
        scan = HistoryScan()
        for key in keys:
            scan.merge(self.scan_trajectory(store.runs(key), fingerprint=key))
        return scan
