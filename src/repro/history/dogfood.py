"""Dogfooding: hunt the repo's own ``BENCH_*.json`` files for regressions.

Every benchmark in this repo writes a JSON payload (``BENCH_interp.json``,
``BENCH_service.json``, ...) whose numeric leaves are exactly the numbers
the CI gates care about — speedups, overheads, F-scores, wall seconds.
This module flattens those payloads into metric series and feeds them to
the :class:`~repro.history.hunter.RegressionHunter`, so the regression
hunter hunts the project that built it.

A *trajectory* is an ordered list of snapshots of the same bench file
(e.g. one per CI run, oldest first).  Files are grouped by basename, so::

    repro history scan --bench-dogfood runs/*/BENCH_interp.json

hunts one trajectory per bench, and passing today's single snapshot of
each file is valid — length-1 series are skipped, which is what makes the
current-tree CI scan quiet by construction until history accumulates.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.history.hunter import HistoryScan, RegressionHunter


def flatten_metrics(doc, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON document as dotted/indexed paths.

    Booleans are excluded (they are ``int`` subclasses but gate flags,
    not metrics).
    """
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(doc[key], path))
    elif isinstance(doc, list):
        for index, item in enumerate(doc):
            out.update(flatten_metrics(item, f"{prefix}[{index}]"))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = float(doc)
    return out


def load_bench_trajectory(paths) -> dict[str, dict[str, list[float]]]:
    """Group snapshot files by basename into per-metric series.

    Snapshot order within a group is the order given.  Only metrics
    present in *every* snapshot of a group become series — a metric that
    appears or disappears between snapshots cannot be aligned by index.
    """
    groups: dict[str, list[dict[str, float]]] = {}
    for raw in paths:
        path = Path(raw)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read bench payload {path}: {exc}") from exc
        groups.setdefault(path.name, []).append(flatten_metrics(doc))
    trajectories: dict[str, dict[str, list[float]]] = {}
    for name, snapshots in groups.items():
        common = set(snapshots[0])
        for snap in snapshots[1:]:
            common &= set(snap)
        trajectories[name] = {
            metric: [snap[metric] for snap in snapshots] for metric in sorted(common)
        }
    return trajectories


def scan_bench_trajectory(paths, hunter: RegressionHunter | None = None) -> HistoryScan:
    """Hunt every bench-file trajectory in ``paths``; one merged scan."""
    hunter = hunter or RegressionHunter()
    scan = HistoryScan()
    for name, series in sorted(load_bench_trajectory(paths).items()):
        scan.merge(
            hunter.scan_series(
                series,
                fingerprint=name,
                runs_scanned=max((len(v) for v in series.values()), default=0),
            )
        )
    return scan
