"""Append-only cross-run history store: one JSONL file per fingerprint.

A :class:`RunStore` persists one :class:`RunRecord` per completed
``run_vsensor`` invocation, keyed by a content-hash *configuration
fingerprint* (built from :func:`repro.pipeline.artifacts.fingerprint`, the
same machinery that keys the compilation artifact cache).  Runs are only
ever compared against runs with a bit-identical configuration — comparing
a 32-rank LULESH trajectory against a 128-rank one would manufacture
change points out of config drift, so the key *is* the config.

Layout: ``<root>/<sha256>.jsonl``, one canonically encoded JSON object per
line (sorted keys, compact separators), sequence numbers assigned on
append.  Canonical encoding is what makes the round-trip property hold:
append → reopen → scan reproduces byte-identical lines, so two stores fed
the same records are byte-identical files.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.pipeline.artifacts import digest, fingerprint

#: bump when the record layout changes incompatibly; readers reject newer
SCHEMA_VERSION = 1


class HistoryStoreError(ReproError):
    """A malformed store file or record."""


@dataclass(frozen=True, slots=True)
class SensorBaseline:
    """Per-run summary statistics of one sensor's normalized performance."""

    sensor_id: int
    sensor_type: str
    median_perf: float
    p95_perf: float
    count: int
    #: fastest slice-average duration observed for the sensor (µs); the
    #: §5.3 standard time this run normalized against
    standard_us: float

    def to_json(self) -> dict:
        return {
            "sensor_id": self.sensor_id,
            "sensor_type": self.sensor_type,
            "median_perf": self.median_perf,
            "p95_perf": self.p95_perf,
            "count": self.count,
            "standard_us": self.standard_us,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "SensorBaseline":
        return cls(
            sensor_id=int(doc["sensor_id"]),
            sensor_type=str(doc["sensor_type"]),
            median_perf=float(doc["median_perf"]),
            p95_perf=float(doc["p95_perf"]),
            count=int(doc["count"]),
            standard_us=float(doc["standard_us"]),
        )


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One run's sensor baselines plus run-level health metrics."""

    fingerprint: str
    #: position in the fingerprint's trajectory; assigned by the store
    seq: int = -1
    label: str = ""
    workload: str = ""
    total_time_us: float = 0.0
    intra_events: int = 0
    inter_events: int = 0
    coverage_confidence: float = 1.0
    sampling_coverage: float = 1.0
    #: detection quality against known ground truth, when the caller has
    #: one (injection studies, CI quality gates); ``None`` otherwise
    f_score: float | None = None
    sensors: tuple[SensorBaseline, ...] = ()

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "seq": self.seq,
            "label": self.label,
            "workload": self.workload,
            "total_time_us": self.total_time_us,
            "intra_events": self.intra_events,
            "inter_events": self.inter_events,
            "coverage_confidence": self.coverage_confidence,
            "sampling_coverage": self.sampling_coverage,
            "f_score": self.f_score,
            "sensors": [s.to_json() for s in self.sensors],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "RunRecord":
        if int(doc.get("schema", 0)) > SCHEMA_VERSION:
            raise HistoryStoreError(
                f"record schema {doc.get('schema')} is newer than supported "
                f"({SCHEMA_VERSION}); upgrade the reader"
            )
        f_score = doc.get("f_score")
        return cls(
            fingerprint=str(doc["fingerprint"]),
            seq=int(doc["seq"]),
            label=str(doc.get("label", "")),
            workload=str(doc.get("workload", "")),
            total_time_us=float(doc["total_time_us"]),
            intra_events=int(doc["intra_events"]),
            inter_events=int(doc["inter_events"]),
            coverage_confidence=float(doc["coverage_confidence"]),
            sampling_coverage=float(doc["sampling_coverage"]),
            f_score=None if f_score is None else float(f_score),
            sensors=tuple(SensorBaseline.from_json(s) for s in doc["sensors"]),
        )


def encode_record(record: RunRecord) -> str:
    """Canonical one-line encoding: sorted keys, compact separators.

    Rejects non-finite floats up front — ``json`` would emit ``NaN``
    (invalid JSON) and a store that cannot be re-read is worse than a
    failed append.
    """
    doc = record.to_json()
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return text


def decode_record(line: str) -> RunRecord:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise HistoryStoreError(f"corrupt history line: {exc}") from exc
    return RunRecord.from_json(doc)


def run_fingerprint(source: str, machine, detector=None, **extra) -> str:
    """The store key for one run configuration.

    Content-hashes the program text, the full machine config (ranks,
    node layout, noise model, seed), the detector config, and any extra
    keyword dimensions the caller wants runs partitioned by (engine,
    max_depth, rule name, ...) through the pipeline's
    :func:`~repro.pipeline.artifacts.fingerprint`.
    """
    from repro.runtime.detector import DetectorConfig

    return digest(
        "history-run",
        source,
        fingerprint(machine),
        fingerprint(detector if detector is not None else DetectorConfig()),
        fingerprint(dict(extra)),
    )


def record_from_run(run, fingerprint_key: str, label: str = "", workload: str = "") -> RunRecord:
    """Summarize a finished :class:`~repro.api.VSensorRun` into a record.

    Per-sensor normalized performance is recomputed post-hoc from each
    rank detector's slice summaries against that rank's *final* standard
    times — a deterministic function of the run, unlike the online stream
    whose early records saw provisional standards.
    """
    per_sensor: dict[int, list[float]] = {}
    standards: dict[int, float] = {}
    types: dict[int, str] = {}
    for info in run.static.program.sensors.values():
        types[info.sensor_id] = info.sensor_type.name
    for detector in run.runtime.detectors.values():
        for summary in detector.summaries:
            standard = detector.history.standard_time(summary.sensor_id, summary.group)
            if standard is None:
                continue
            if summary.mean_duration <= 0.0 or summary.mean_duration <= standard:
                perf = 1.0
            else:
                perf = standard / summary.mean_duration
            per_sensor.setdefault(summary.sensor_id, []).append(perf)
            prev = standards.get(summary.sensor_id)
            if prev is None or standard < prev:
                standards[summary.sensor_id] = standard
    baselines = tuple(
        SensorBaseline(
            sensor_id=sensor_id,
            sensor_type=types.get(sensor_id, "COMPUTATION"),
            median_perf=float(np.median(perfs)),
            p95_perf=float(np.percentile(perfs, 95.0)),
            count=len(perfs),
            standard_us=standards[sensor_id],
        )
        for sensor_id, perfs in sorted(per_sensor.items())
    )
    report = run.report
    return RunRecord(
        fingerprint=fingerprint_key,
        label=label,
        workload=workload,
        total_time_us=float(run.sim.total_time),
        intra_events=0 if report is None else report.intra_events,
        inter_events=0 if report is None else report.inter_events,
        coverage_confidence=1.0 if report is None else float(report.coverage_confidence),
        sampling_coverage=1.0 if report is None else float(report.sampling_coverage),
        sensors=baselines,
    )


class RunStore:
    """Append-only store of run records, one JSONL trajectory per key."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._counts: dict[str, int] = {}

    def path_for(self, fingerprint_key: str) -> Path:
        if not fingerprint_key or any(c in fingerprint_key for c in "/\\"):
            raise HistoryStoreError(f"bad fingerprint key {fingerprint_key!r}")
        return self.root / f"{fingerprint_key}.jsonl"

    def fingerprints(self) -> list[str]:
        """Every trajectory key present on disk, sorted."""
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    def count(self, fingerprint_key: str) -> int:
        cached = self._counts.get(fingerprint_key)
        if cached is not None:
            return cached
        path = self.path_for(fingerprint_key)
        count = 0
        if path.exists():
            with open(path, encoding="utf-8") as fh:
                count = sum(1 for line in fh if line.strip())
        self._counts[fingerprint_key] = count
        return count

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record; returns it with its assigned ``seq``."""
        if not math.isfinite(record.total_time_us):
            raise HistoryStoreError("total_time_us must be finite")
        seq = self.count(record.fingerprint)
        stamped = RunRecord(
            fingerprint=record.fingerprint,
            seq=seq,
            label=record.label,
            workload=record.workload,
            total_time_us=record.total_time_us,
            intra_events=record.intra_events,
            inter_events=record.inter_events,
            coverage_confidence=record.coverage_confidence,
            sampling_coverage=record.sampling_coverage,
            f_score=record.f_score,
            sensors=record.sensors,
        )
        line = encode_record(stamped)
        with open(self.path_for(record.fingerprint), "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self._counts[record.fingerprint] = seq + 1
        return stamped

    def runs(self, fingerprint_key: str) -> list[RunRecord]:
        """The full trajectory of one fingerprint, in append order."""
        path = self.path_for(fingerprint_key)
        if not path.exists():
            return []
        out: list[RunRecord] = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(decode_record(line))
        for position, record in enumerate(out):
            if record.seq != position:
                raise HistoryStoreError(
                    f"{path.name}: seq {record.seq} at position {position} — "
                    "trajectory was reordered or truncated"
                )
        return out

    def total_runs(self) -> int:
        return sum(self.count(key) for key in self.fingerprints())
