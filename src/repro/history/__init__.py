"""Cross-run regression history: persistent baselines + change-point hunting.

vSensor's runtime answers "which rank is slow *right now*?"; this
subsystem answers the fleet question "*when* did this job get slower?".

* :mod:`repro.history.store` — :class:`RunStore`, an append-only
  JSONL-per-fingerprint store of per-run sensor baselines, keyed by the
  content-hash configuration fingerprint so runs are only compared
  against bit-identical configurations.
* :mod:`repro.history.edivisive` — :class:`EDivisive`, seeded
  e-divisive-means change-point detection with permutation significance
  testing (exactly reproducible: no wall clock, no global RNG).
* :mod:`repro.history.hunter` — :class:`RegressionHunter`, which walks a
  store and emits classified :class:`Finding` / :class:`ChangePoint`
  results through the :class:`~repro.diagnostics.Diagnostic` machinery
  and the obs layer.
* :mod:`repro.history.dogfood` — feeds the repo's own ``BENCH_*.json``
  payloads through the hunter, so CI hunts the project that built it.

Entry points: ``run_vsensor(history_store=...)`` auto-appends each run,
and the ``repro history append/show/scan`` CLI drives stores directly.
"""

from repro.history.dogfood import (
    flatten_metrics,
    load_bench_trajectory,
    scan_bench_trajectory,
)
from repro.history.edivisive import ChangePoint, EDivisive
from repro.history.hunter import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    NEUTRAL,
    Finding,
    HistoryScan,
    RegressionHunter,
    classify_metric,
    store_series,
)
from repro.history.store import (
    SCHEMA_VERSION,
    HistoryStoreError,
    RunRecord,
    RunStore,
    SensorBaseline,
    decode_record,
    encode_record,
    record_from_run,
    run_fingerprint,
)

__all__ = [
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "NEUTRAL",
    "SCHEMA_VERSION",
    "ChangePoint",
    "EDivisive",
    "Finding",
    "HistoryScan",
    "HistoryStoreError",
    "RegressionHunter",
    "RunRecord",
    "RunStore",
    "SensorBaseline",
    "classify_metric",
    "decode_record",
    "encode_record",
    "flatten_metrics",
    "load_bench_trajectory",
    "record_from_run",
    "run_fingerprint",
    "scan_bench_trajectory",
    "store_series",
]
