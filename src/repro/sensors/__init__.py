"""v-sensor identification — the paper's core contribution (Section 3).

A *snippet* is a loop or a function call inside a loop.  A snippet is a
*v-sensor* of an enclosing loop L when its quantity of work cannot change
between iterations of L.  This package implements the dependency-propagation
algorithm that decides this:

* :mod:`repro.sensors.slicer` — backward slicing over use–define chains,
  bounded by the snippet's AST subtree, with per-loop variance checking
  (intra-procedural analysis, §3.2) and whole-function input extraction.
* :mod:`repro.sensors.summaries` — bottom-up function summaries over the
  preprocessed call graph: workload dependencies, return-value
  dependencies, global mod-sets (§3.3, §3.5).
* :mod:`repro.sensors.extern` — workload descriptions of external (libc /
  MPI) functions; the undescribed ones are treated as never-fixed (§3.5).
* :mod:`repro.sensors.multiproc` — process-identity (rank) dependence
  analysis (§3.4).
* :mod:`repro.sensors.identify` — the driver that enumerates snippets,
  runs the analyses, computes scopes, and classifies sensors as
  Computation / Network / IO.
* :mod:`repro.sensors.rules` — optional extra static rules (§3.1).
"""

from repro.sensors.extern import ExternModel, ExternRegistry, default_extern_registry
from repro.sensors.identify import IdentificationResult, identify_vsensors
from repro.sensors.model import SensorType, Snippet, SnippetKind, VSensor
from repro.sensors.rules import FixedDestinationRule, StaticRule

__all__ = [
    "ExternModel",
    "ExternRegistry",
    "FixedDestinationRule",
    "IdentificationResult",
    "SensorType",
    "Snippet",
    "SnippetKind",
    "StaticRule",
    "VSensor",
    "default_extern_registry",
    "identify_vsensors",
]
