"""Dependency-propagation slicing (§3.2–§3.3).

The engine answers one question in two configurations:

1. **Per-loop variance check** — is snippet S's quantity of work fixed over
   iterations of enclosing loop L?  Starting from S's *workload inputs*
   (branch-condition registers of loops/branches inside S, workload-relevant
   argument registers of calls inside S), walk use–define chains backwards.
   Definitions are classified by AST position:

   * inside S's subtree — expand further (S's own induction structure is
     part of the fixed workload; a pure cycle inside S contributes nothing);
   * inside L's per-iteration region but outside S — the value is written
     between executions of S: expand, and if the chain ever cycles through
     such a definition (an induction like ``n = n + 1``) the workload is
     *variant*;
   * outside L's region — an iteration-fixed input: record which function
     parameter / global it traces to (for inter-procedural propagation) and
     stop.

   Mixed inside/outside reaching definitions at one load are variant (the
   first iteration reads the pre-loop value, later iterations read the
   in-loop value).

2. **Whole-function input extraction** — what do S's workload inputs depend
   on, expressed over the containing function's parameters and globals?
   Same walk with the region set to the whole body: every chain is expanded
   to function entry; cycles outside S are unanalyzable (accumulators).

Both configurations share the treatment of opaque sources: array-element
loads, undescribed extern calls, indirect calls and calls into recursive /
address-taken functions poison the slice as *non-fixed* (§3.5); calls whose
return is the process identity mark the slice *rank-dependent* (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.diagnostics import ReasonCode, Span
from repro.dataflow.usedef import UseDefChains
from repro.frontend import ast_nodes as A
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    AddrOfInstr,
    BinInstr,
    Branch,
    CallInstr,
    ConstFloat,
    ConstInt,
    ConstStr,
    Instr,
    Load,
    LoadElem,
    Reg,
    Store,
    StoreElem,
    UnaryInstr,
    Value,
)
from repro.sensors.extern import RET_ARGS, RET_CONST, RET_NONFIXED, RET_RANK
from repro.sensors.model import SliceResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.sensors.summaries import SummaryTable


@dataclass(slots=True)
class SliceContext:
    """Everything one slicing run needs."""

    fn: IRFunction
    chains: UseDefChains
    summaries: "SummaryTable"
    #: AST node-ids belonging to the snippet S (expansion is free inside)
    snippet_ids: frozenset[int]
    #: AST node-ids of the per-iteration region of the checked loop L —
    #: for whole-function extraction this is the whole body.
    region_ids: frozenset[int]
    #: names of globals in the module
    global_names: set[str]


def _in_snippet(ctx: SliceContext, instr: Instr) -> bool:
    node = instr.ast_node
    return node is not None and node.node_id in ctx.snippet_ids


def _in_region(ctx: SliceContext, instr: Instr) -> bool:
    node = instr.ast_node
    return node is not None and node.node_id in ctx.region_ids


class Slicer:
    """One slicing run; collect into a single :class:`SliceResult`."""

    def __init__(self, ctx: SliceContext) -> None:
        self.ctx = ctx
        self.result = SliceResult()
        # Registers fully processed (memoization).
        self._done_regs: set[Reg] = set()
        # Registers currently on the walk stack (cycle detection).
        self._active_regs: set[Reg] = set()
        # (var, instr_id) load sites already processed.
        self._done_loads: set[tuple[str, int]] = set()
        self._active_loads: set[tuple[str, int]] = set()

    # -- entry points --------------------------------------------------------

    def trace_value(self, value: Value) -> None:
        """Trace one operand value backwards."""
        if isinstance(value, (ConstInt, ConstFloat, ConstStr)):
            return
        if isinstance(value, Reg):
            self._trace_reg(value)
            return
        # Values are only registers or constants.
        raise TypeError(type(value).__name__)

    # -- the walk --------------------------------------------------------------

    def _trace_reg(self, reg: Reg) -> None:
        if reg in self._done_regs:
            return
        if reg in self._active_regs:
            # A register cycle cannot occur (registers are single-assignment
            # and acyclic through blocks); cycles materialize through loads.
            return
        self._active_regs.add(reg)
        try:
            instr = self.ctx.chains.def_of_reg(reg)
            self._trace_defining_instr(instr)
        finally:
            self._active_regs.discard(reg)
            self._done_regs.add(reg)

    def _trace_defining_instr(self, instr: Instr) -> None:
        if isinstance(instr, (BinInstr, UnaryInstr)):
            for op in instr.operands():
                self.trace_value(op)
            return
        if isinstance(instr, Load):
            self._trace_load(instr)
            return
        if isinstance(instr, LoadElem):
            # Array contents are not tracked: workload depending on data
            # values is never provably fixed (conservative, §3.5).
            self.result.fail(
                f"array load {instr.arr}[] at {_loc(instr)}",
                code=ReasonCode.ARRAY_LOAD, span=_span(instr), nonfixed=True,
            )
            return
        if isinstance(instr, CallInstr):
            self._trace_call_return(instr)
            return
        if isinstance(instr, AddrOfInstr):
            return  # a constant function address
        raise TypeError(f"register defined by {type(instr).__name__}")

    # -- loads ------------------------------------------------------------------

    def _trace_load(self, load: Load) -> None:
        key = (load.var, load.instr_id)
        if key in self._done_loads:
            return
        if key in self._active_loads:
            # A use-def cycle: an induction chain (x = f(x)).  Harmless when
            # it lives entirely inside the snippet (its own loop counters);
            # the caller detects outside-cycles via definition classification
            # below, so reaching here again just terminates the recursion.
            return
        self._active_loads.add(key)
        try:
            self._trace_load_inner(load)
        finally:
            self._active_loads.discard(key)
            self._done_loads.add(key)

    def _trace_load_inner(self, load: Load) -> None:
        defs = self.ctx.chains.defs_for_load(load)
        if not defs:
            # No reaching definition: read of never-written storage.
            self.result.fail(
                f"uninitialized read of {load.var} at {_loc(load)}",
                code=ReasonCode.UNINITIALIZED_READ, span=_span(load), nonfixed=True,
            )
            return

        inside_region: list = []
        outside_region: list = []
        entry_defs: list = []
        for d in defs:
            if d.is_entry:
                entry_defs.append(d)
            elif _in_region(self.ctx, d.instr):
                inside_region.append(d)
            else:
                outside_region.append(d)

        if inside_region and (outside_region or entry_defs):
            # First iteration reads the pre-region value, later iterations
            # read the in-region value: not fixed across iterations —
            # *unless* every in-region definition is inside the snippet
            # itself and the load is also inside the snippet (then the
            # pre-region def reaches only the snippet's own first reads and
            # the snippet re-establishes the value; conservatively we still
            # flag it, matching the paper's avoid-false-positives stance).
            if not all(_in_snippet(self.ctx, d.instr) for d in inside_region) or not _in_snippet(
                self.ctx, load
            ):
                self.result.fail(
                    f"{load.var} mixes pre-loop and in-loop definitions at {_loc(load)}",
                    code=ReasonCode.MIXED_DEFS, span=_span(load),
                )
                return
            # All in-region defs are the snippet's own writes, and the
            # variable also arrives from outside: the snippet's workload
            # depends on cross-execution state (e.g. a counter that is not
            # re-initialized).  Variant.
            self.result.fail(
                f"{load.var} carries state across snippet executions at {_loc(load)}",
                code=ReasonCode.CROSS_EXEC_STATE, span=_span(load),
            )
            return

        if not inside_region:
            # Iteration-fixed input.  Record what it is for inter-procedural
            # propagation, then stop: per-loop checks do not need to look
            # further back.
            self._record_external_input(load, entry_defs, outside_region)
            return

        # All definitions are inside the region: expand each.
        for d in inside_region:
            self._expand_definition(d.instr, load)

    def _record_external_input(self, load: Load, entry_defs, outside_defs) -> None:
        var = load.var
        if entry_defs:
            if var in self.ctx.fn.params:
                self.result.params.add(var)
            elif var in self.ctx.global_names:
                self.result.globals.add(var)
            else:
                # An uninitialized local reaching from entry.
                self.result.fail(
                    f"uninitialized local {var} at {_loc(load)}",
                    code=ReasonCode.UNINITIALIZED_LOCAL, span=_span(load), nonfixed=True,
                )
                return
        if outside_defs and self.ctx.region_ids is not self.ctx.snippet_ids:
            # Per-loop check: a definition outside the region is a fixed
            # input for this loop; whole-function extraction never ends up
            # here because its region covers everything.
            for d in outside_defs:
                self._expand_outside_definition(d.instr, load)

    def _expand_outside_definition(self, instr: Instr, load: Load) -> None:
        """For the inter-procedural residue: trace outside-region defs to
        function inputs without variance checking (their values are fixed
        for the checked loop, but the caller needs to know what they are a
        function of)."""
        if isinstance(instr, Store):
            # Keep walking backwards from the store's operand; region rules
            # still classify further loads, and any deeper in-region writes
            # would already have been seen by the per-loop pass of the
            # *outer* loop when scopes are computed loop-by-loop.
            self.trace_value(instr.src)
            return
        if isinstance(instr, StoreElem):
            self.result.fail(
                f"array store into {instr.arr} at {_loc(instr)}",
                code=ReasonCode.ARRAY_STORE, span=_span(instr), nonfixed=True,
            )
            return
        if isinstance(instr, CallInstr):
            # A call's side effect wrote this global: opaque value, but
            # fixed for this loop.  Whether it stays fixed program-wide is
            # re-checked by outer-scope passes; treat as an opaque global
            # input here.
            self.result.globals.update(self._call_moded_globals(instr))
            return
        raise TypeError(f"memory defined by {type(instr).__name__}")

    def _expand_definition(self, instr: Instr, load: Load) -> None:
        if isinstance(instr, Store):
            self.trace_value(instr.src)
            return
        if isinstance(instr, StoreElem):
            self.result.fail(
                f"array store into {instr.arr} at {_loc(instr)}",
                code=ReasonCode.ARRAY_STORE, span=_span(instr), nonfixed=True,
            )
            return
        if isinstance(instr, CallInstr):
            # A call inside the region may modify the variable: the value
            # changes across iterations under the callee's control.
            if _in_snippet(self.ctx, instr):
                # The snippet's own call rewrites the value each execution;
                # whether that is fixed depends on the callee's stored value,
                # which we do not track: non-fixed.
                self.result.fail(
                    f"{load.var} written by call {instr.callee} inside snippet",
                    code=ReasonCode.SNIPPET_CALL_CLOBBERS, span=_span(instr), nonfixed=True,
                )
            else:
                self.result.fail(
                    f"{load.var} may be modified by call {instr.callee} within the loop",
                    code=ReasonCode.CALL_CLOBBERS, span=_span(instr),
                )
            return
        raise TypeError(f"memory defined by {type(instr).__name__}")

    def _call_moded_globals(self, instr: CallInstr) -> set[str]:
        summary = self.ctx.summaries.for_call(instr)
        return set(summary.mods) if summary is not None else set(self.ctx.global_names)

    # -- call returns -------------------------------------------------------------

    def _trace_call_return(self, instr: CallInstr) -> None:
        if instr.is_indirect:
            self.result.fail(
                f"indirect call {instr.callee} at {_loc(instr)}",
                code=ReasonCode.INDIRECT_CALL, span=_span(instr), nonfixed=True,
            )
            return
        summary = self.ctx.summaries.for_call(instr)
        if summary is None:
            # Undescribed extern: never fixed (§3.5 default policy).
            self.result.fail(
                f"undescribed extern {instr.callee}",
                code=ReasonCode.UNDESCRIBED_EXTERN, span=_span(instr), nonfixed=True,
            )
            return
        extern = self.ctx.summaries.extern_model(instr.callee)
        if extern is not None:
            if extern.ret == RET_CONST:
                return
            if extern.ret == RET_RANK:
                self.result.rank = True
                return
            if extern.ret == RET_ARGS:
                for arg in instr.args:
                    self.trace_value(arg)
                return
            if extern.ret == RET_NONFIXED:
                self.result.fail(
                    f"extern {instr.callee} returns unanalyzable value",
                    code=ReasonCode.EXTERN_NONFIXED_RETURN, span=_span(instr), nonfixed=True,
                )
                return
        # Defined function: substitute its return summary at this site.
        ret = summary.ret
        if summary.never_fixed or ret.nonfixed or ret.variant:
            self.result.fail(
                f"call {instr.callee} returns non-fixed value",
                code=ReasonCode.CALLEE_NONFIXED_RETURN, span=_span(instr), nonfixed=True,
            )
            return
        if ret.rank:
            self.result.rank = True
        for pname in ret.params:
            idx = self._param_index(instr.callee, pname)
            if idx is not None and idx < len(instr.args):
                self.trace_value(instr.args[idx])
        for gname in ret.globals:
            # The callee reads global gname: the value it sees is the value
            # at the call site; model as a load of the global at this call.
            self._trace_global_at(instr, gname)

    def _trace_global_at(self, instr: CallInstr, gname: str) -> None:
        """Treat global ``gname`` as if loaded immediately before ``instr``."""
        defs = self.ctx.chains.defs_before(instr, gname)
        inside = [d for d in defs if not d.is_entry and _in_region(self.ctx, d.instr)]
        outside = [d for d in defs if d.is_entry or not _in_region(self.ctx, d.instr)]
        if inside and outside:
            if not all(_in_snippet(self.ctx, d.instr) for d in inside) or not _in_snippet(
                self.ctx, instr
            ):
                self.result.fail(
                    f"global {gname} mixes definitions at call {instr.callee}",
                    code=ReasonCode.MIXED_DEFS, span=_span(instr),
                )
                return
            self.result.fail(
                f"global {gname} carries state across snippet executions",
                code=ReasonCode.CROSS_EXEC_STATE, span=_span(instr),
            )
            return
        if not inside:
            self.result.globals.add(gname)
            return
        for d in inside:
            self._expand_definition(d.instr, Load(ast_node=instr.ast_node, dest=Reg(-1), var=gname))

    def _param_index(self, callee: str, pname: str) -> int | None:
        fn = self.ctx.summaries.ir_function(callee)
        if fn is None:
            return None
        try:
            return fn.params.index(pname)
        except ValueError:
            return None


def _loc(instr: Instr) -> str:
    node = instr.ast_node
    return str(node.loc) if node is not None else "<?>"


def _span(instr: Instr) -> Span:
    node = instr.ast_node
    return Span.from_loc(node.loc) if node is not None else Span()


# ---------------------------------------------------------------------------
# Public helpers: collect a snippet's workload inputs and run slices
# ---------------------------------------------------------------------------


def workload_inputs(
    fn: IRFunction,
    snippet_ids: frozenset[int],
    summaries: "SummaryTable",
) -> tuple[list[Value], SliceResult, list[tuple[CallInstr, set[str]]]]:
    """The operand values that determine a snippet's quantity of work.

    Returns ``(values, seed, callee_global_sites)``: the values to trace, a
    pre-seeded result carrying poison markers discovered while scanning
    (undescribed externs, never-fixed callees), and the list of call sites
    whose callee workload depends on globals — those globals must be traced
    *at the call site* by the slicer.
    """
    seed = SliceResult()
    values: list[Value] = []
    callee_global_sites: list[tuple[CallInstr, set[str]]] = []
    for block in fn.blocks:
        for instr in block.instrs:
            node = instr.ast_node
            if node is None or node.node_id not in snippet_ids:
                continue
            if isinstance(instr, Branch):
                values.append(instr.cond)
            elif isinstance(instr, CallInstr):
                _collect_call_inputs(instr, summaries, seed, values, callee_global_sites)
    return values, seed, callee_global_sites


def _collect_call_inputs(
    instr: CallInstr,
    summaries: "SummaryTable",
    seed: SliceResult,
    values: list[Value],
    callee_global_sites: list[tuple[CallInstr, set[str]]],
) -> None:
    if instr.is_indirect:
        seed.fail(
            f"indirect call {instr.callee}",
            code=ReasonCode.INDIRECT_CALL, span=_span(instr), nonfixed=True,
        )
        return
    extern = summaries.extern_model(instr.callee)
    if extern is not None:
        for idx in extern.workload_args:
            if idx < len(instr.args):
                values.append(instr.args[idx])
        return
    summary = summaries.for_call(instr)
    if summary is None:
        seed.fail(
            f"undescribed extern {instr.callee}",
            code=ReasonCode.UNDESCRIBED_EXTERN, span=_span(instr), nonfixed=True,
        )
        return
    if summary.never_fixed or summary.workload.nonfixed:
        seed.fail(
            f"call {instr.callee} has never-fixed workload",
            code=ReasonCode.CALLEE_NONFIXED_WORKLOAD, span=_span(instr), nonfixed=True,
        )
        return
    if summary.workload.rank:
        seed.rank = True
    fn = summaries.ir_function(instr.callee)
    for pname in summary.workload.params:
        if fn is not None and pname in fn.params:
            idx = fn.params.index(pname)
            if idx < len(instr.args):
                values.append(instr.args[idx])
    if summary.workload.globals:
        callee_global_sites.append((instr, set(summary.workload.globals)))


def run_slice(
    fn: IRFunction,
    chains: UseDefChains,
    summaries: "SummaryTable",
    snippet_ids: frozenset[int],
    region_ids: frozenset[int],
    global_names: set[str],
    values: list[Value],
    seed: SliceResult,
    callee_global_sites: list[tuple[CallInstr, set[str]]] | None = None,
) -> SliceResult:
    """Run one slice over ``values`` (plus callee-global sites) and return
    the combined result."""
    ctx = SliceContext(
        fn=fn,
        chains=chains,
        summaries=summaries,
        snippet_ids=snippet_ids,
        region_ids=region_ids,
        global_names=global_names,
    )
    slicer = Slicer(ctx)
    slicer.result.merge(seed)
    # Seeded globals (callee workload deps) are resolved at each call site.
    for site, globs in callee_global_sites or []:
        for gname in sorted(globs):
            slicer._trace_global_at(site, gname)
    for value in values:
        slicer.trace_value(value)
    return slicer.result
