"""The v-sensor identification driver (workflow step 2).

Pipeline per module:

1. lower the AST to IR, build + preprocess the call graph (2a),
2. compute bottom-up function summaries (2c),
3. enumerate snippet candidates — every loop and every call (§3.1),
4. for each snippet, find the maximal contiguous chain of enclosing loops
   across whose iterations its workload is fixed (loop analysis, 2b;
   intra-procedural §3.2),
5. propagate through call sites to decide *global* scope (inter-procedural
   §3.3) and rank-invariance (process analysis, 2d / §3.4),
6. classify each sensor as Computation / Network / IO and apply any extra
   static rules (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.callgraph.graph import CallGraph, build_call_graph
from repro.diagnostics import Diagnostic, ReasonCode, Span, note
from repro.callgraph.preprocess import PreprocessResult, preprocess_call_graph
from repro.frontend import ast_nodes as A
from repro.ir.instructions import CallInstr
from repro.ir.irmodule import IRModule
from repro.ir.lower import lower_module
from repro.sensors.asttools import FunctionShape, compute_shape, subtree_ids
from repro.sensors.extern import ExternRegistry, default_extern_registry
from repro.sensors.model import (
    SensorType,
    SliceResult,
    Snippet,
    SnippetKind,
    VSensor,
)
from repro.sensors.slicer import run_slice, workload_inputs
from repro.sensors.summaries import SummaryTable, compute_summaries


@dataclass(frozen=True, slots=True)
class Rejection:
    """One snippet that is not a v-sensor, and the structured reason why.

    Iterable as ``(snippet, diagnostic)`` so explain-style consumers can
    unpack it like the historical ``(snippet, reason-string)`` tuples.
    """

    snippet: Snippet
    diagnostic: Diagnostic

    def __iter__(self):
        yield self.snippet
        yield self.diagnostic

    @property
    def code(self) -> ReasonCode:
        return self.diagnostic.code


@dataclass(slots=True)
class IdentificationResult:
    """Everything the static module learned about one program."""

    ir: IRModule
    callgraph: CallGraph
    preprocess: PreprocessResult
    summaries: SummaryTable
    shapes: dict[str, FunctionShape]
    snippets: list[Snippet] = field(default_factory=list)
    sensors: list[VSensor] = field(default_factory=list)
    #: snippets that are not sensors, each with the first structured
    #: diagnostic the dependency-propagation slice recorded ("explain")
    rejections: list[Rejection] = field(default_factory=list)

    @property
    def snippet_count(self) -> int:
        return len(self.snippets)

    @property
    def sensor_count(self) -> int:
        return len(self.sensors)

    def global_sensors(self) -> list[VSensor]:
        return [s for s in self.sensors if s.is_global]

    def sensors_in(self, function: str) -> list[VSensor]:
        return [s for s in self.sensors if s.function == function]

    def sensor_by_id(self, sensor_id: int) -> VSensor:
        for s in self.sensors:
            if s.sensor_id == sensor_id:
                return s
        raise KeyError(sensor_id)

    def diagnostics(self) -> list[Diagnostic]:
        """All rejection diagnostics, in snippet-discovery order."""
        return [r.diagnostic for r in self.rejections]


class _Identifier:
    def __init__(
        self,
        ast_module: A.Module,
        externs: ExternRegistry,
        entry: str = "main",
        *,
        ir: IRModule | None = None,
        callgraph: CallGraph | None = None,
        preprocess: PreprocessResult | None = None,
        summaries: SummaryTable | None = None,
        shapes: dict[str, FunctionShape] | None = None,
    ) -> None:
        """Precomputed artifacts (from the pass pipeline) may be injected;
        anything not supplied is computed here, so the standalone
        :func:`identify_vsensors` path needs no pipeline."""
        self.ast_module = ast_module
        self.entry = entry
        self.ir = ir if ir is not None else lower_module(ast_module)
        self.cg = callgraph if callgraph is not None else build_call_graph(self.ir)
        self.prep = preprocess if preprocess is not None else preprocess_call_graph(self.cg)
        self.table = (
            summaries
            if summaries is not None
            else compute_summaries(self.ir, self.cg, self.prep, externs)
        )
        self.shapes = shapes if shapes is not None else compute_function_shapes(self.ir)
        self.global_names = set(self.ir.globals)
        #: memo for call-site promotion: (fn, params, globals) -> verdict
        self._promo_memo: dict[tuple[str, frozenset[str], frozenset[str]], tuple[bool, bool, bool]] = {}

    # -- driver --------------------------------------------------------------

    def run(self) -> IdentificationResult:
        result = IdentificationResult(
            ir=self.ir,
            callgraph=self.cg,
            preprocess=self.prep,
            summaries=self.table,
            shapes=self.shapes,
        )
        never_fixed = self.prep.never_fixed()
        for name, fn in self.ir.functions.items():
            shape = self.shapes.get(name)
            if shape is None:
                continue
            snippets = self._enumerate_snippets(name, shape)
            result.snippets.extend(snippets)
            if name in never_fixed:
                for snippet in snippets:
                    result.rejections.append(
                        Rejection(
                            snippet,
                            note(
                                ReasonCode.RECURSIVE_FUNCTION,
                                "inside a recursive or address-taken function",
                                span=Span.from_node(snippet.node),
                                origin="identify",
                            ),
                        )
                    )
                continue  # candidates counted, but never sensors (§3.5)
            for snippet in snippets:
                sensor, reason = self._analyze_snippet(fn.name, snippet, shape)
                if sensor is not None:
                    result.sensors.append(sensor)
                else:
                    result.rejections.append(
                        Rejection(snippet, _rejection_diag(snippet, reason))
                    )
        return result

    def _enumerate_snippets(self, fname: str, shape: FunctionShape) -> list[Snippet]:
        snippets: list[Snippet] = []
        for loop in shape.loops:
            snippets.append(
                Snippet(
                    kind=SnippetKind.LOOP,
                    function=fname,
                    node=loop,
                    enclosing_loops=list(reversed(shape.enclosing[loop.node_id])),
                    depth=shape.loop_depth(loop),
                )
            )
        for call in shape.calls:
            if call.callee == "compute_units":
                # Stands for inlined straight-line arithmetic — the paper's
                # "count++ is not a candidate because it is not a loop or a
                # call" case.
                continue
            enclosing = list(reversed(shape.enclosing[call.node_id]))
            snippets.append(
                Snippet(
                    kind=SnippetKind.CALL,
                    function=fname,
                    node=call,
                    enclosing_loops=enclosing,
                    depth=len(enclosing),
                )
            )
        return snippets

    # -- per-snippet analysis ---------------------------------------------------

    def _snippet_subtree(self, snippet: Snippet, shape: FunctionShape) -> frozenset[int]:
        if snippet.kind is SnippetKind.LOOP:
            return shape.loop_subtrees[snippet.node.node_id]
        return shape.call_subtrees[snippet.node.node_id]

    def _analyze_snippet(
        self, fname: str, snippet: Snippet, shape: FunctionShape
    ) -> tuple[VSensor | None, Diagnostic | None]:
        fn = self.ir.functions[fname]
        sub_ids = self._snippet_subtree(snippet, shape)
        values, seed, callee_sites = workload_inputs(fn, sub_ids, self.table)
        if seed.nonfixed:
            return None, _first_reason(seed)

        # Maximal contiguous scope chain, innermost outward (§3.2, §4 Scope).
        scope_loops: list[A.Stmt] = []
        rank_dep = seed.rank
        stop_reason: Diagnostic | None = None
        for loop in snippet.enclosing_loops:
            region = shape.loop_regions[loop.node_id]
            res = run_slice(
                fn,
                self.table.use_def(fname),
                self.table,
                snippet_ids=sub_ids,
                region_ids=region,
                global_names=self.global_names,
                values=values,
                seed=_copy_seed(seed),
                callee_global_sites=callee_sites,
            )
            rank_dep |= res.rank
            if not res.fixed:
                stop_reason = _first_reason(res)
                break
            scope_loops.append(loop)

        is_function_scope = len(scope_loops) == len(snippet.enclosing_loops)
        if not scope_loops and not is_function_scope:
            return None, stop_reason  # not a v-sensor of any loop
        # A snippet with no enclosing loops at all is "function scope" by
        # definition; whether it repeats is decided by promotion below.

        # Whole-function input extraction for inter-procedural propagation.
        entry = run_slice(
            fn,
            self.table.use_def(fname),
            self.table,
            snippet_ids=sub_ids,
            region_ids=shape.body_ids,
            global_names=self.global_names,
            values=values,
            seed=_copy_seed(seed),
            callee_global_sites=callee_sites,
        )
        rank_dep |= entry.rank

        is_global = False
        repeats = bool(snippet.enclosing_loops)
        if is_function_scope and entry.fixed:
            ok, promoted_repeats, promoted_rank = self._promote(
                fname, frozenset(entry.params), frozenset(entry.globals)
            )
            is_global = ok
            repeats = repeats or promoted_repeats
            rank_dep |= promoted_rank
        if is_global and not repeats:
            # Fixed everywhere but executes at most once: useless as a sensor.
            is_global = False

        if not scope_loops and not is_global:
            reason = note(
                ReasonCode.NOT_PROMOTABLE,
                "fixed within its function but not promotable to global scope "
                "(call sites vary its workload or it never repeats)",
                span=Span.from_node(snippet.node),
                origin="identify",
            )
            if not entry.fixed:
                reason = _first_reason(entry) or reason
            return None, reason

        sensor_type = self._classify(fn, sub_ids)
        sensor = VSensor(
            snippet=snippet,
            sensor_type=sensor_type,
            scope_loops=scope_loops,
            is_function_scope=is_function_scope,
            is_global=is_global,
            rank_invariant=not rank_dep,
            param_deps=set(entry.params),
            global_deps=set(entry.globals),
        )
        return sensor, None

    # -- inter-procedural promotion (§3.3) -----------------------------------------

    def _promote(
        self, fname: str, params: frozenset[str], globals_: frozenset[str]
    ) -> tuple[bool, bool, bool]:
        """Can a function-scope snippet of ``fname`` whose workload depends
        on ``params``/``globals_`` be promoted to global scope?

        Returns ``(ok, repeats, rank_dep)`` where ``repeats`` records whether
        some call path re-executes the snippet (a loop around a call site),
        and ``rank_dep`` whether caller-side argument values inject process
        identity.
        """
        key = (fname, params, globals_)
        if key in self._promo_memo:
            return self._promo_memo[key]
        # Pre-seed against (impossible) cycles: pruned call graphs are acyclic.
        self._promo_memo[key] = (False, False, False)

        if fname == self.entry:
            verdict = (True, False, False)
            self._promo_memo[key] = verdict
            return verdict

        sites = [s for s in self.cg.sites if s.kind == "defined" and s.callee == fname]
        if not sites:
            verdict = (False, False, False)  # unreachable from program code
            self._promo_memo[key] = verdict
            return verdict
        if len(sites) > 1 and (params or globals_):
            # Different call sites may pass different workloads; the sensor
            # identity would mix them (conservative veto; the paper only
            # promotes dependency-free snippets across multiple sites).
            verdict = (False, False, False)
            self._promo_memo[key] = verdict
            return verdict

        ok = True
        repeats = False
        rank_dep = False
        for site in sites:
            site_ok, site_repeats, site_rank = self._check_site(site, params, globals_)
            ok &= site_ok
            repeats |= site_repeats
            rank_dep |= site_rank
            if not ok:
                break
        verdict = (ok, repeats, rank_dep)
        self._promo_memo[key] = verdict
        return verdict

    def _check_site(self, site, params: frozenset[str], globals_: frozenset[str]):
        caller = site.caller
        if caller in self.prep.never_fixed():
            return False, False, False
        caller_fn = self.ir.functions[caller]
        shape = self.shapes[caller]
        call_instr: CallInstr = site.instr
        call_node = call_instr.ast_node
        sub_ids = shape.call_subtrees.get(call_node.node_id, frozenset({call_node.node_id}))

        callee_fn = self.ir.functions[site.callee]
        values = []
        for pname in sorted(params):
            if pname in callee_fn.params:
                idx = callee_fn.params.index(pname)
                if idx < len(call_instr.args):
                    values.append(call_instr.args[idx])
        callee_sites = [(call_instr, set(globals_))] if globals_ else []

        enclosing = list(reversed(shape.enclosing.get(call_node.node_id, [])))
        rank_dep = False
        for loop in enclosing:
            res = run_slice(
                caller_fn,
                self.table.use_def(caller),
                self.table,
                snippet_ids=sub_ids,
                region_ids=shape.loop_regions[loop.node_id],
                global_names=self.global_names,
                values=values,
                seed=SliceResult(),
                callee_global_sites=callee_sites,
            )
            rank_dep |= res.rank
            if not res.fixed:
                return False, False, False

        entry = run_slice(
            caller_fn,
            self.table.use_def(caller),
            self.table,
            snippet_ids=sub_ids,
            region_ids=shape.body_ids,
            global_names=self.global_names,
            values=values,
            seed=SliceResult(),
            callee_global_sites=callee_sites,
        )
        rank_dep |= entry.rank
        if not entry.fixed:
            return False, False, False

        up_ok, up_repeats, up_rank = self._promote(
            caller, frozenset(entry.params), frozenset(entry.globals)
        )
        repeats = bool(enclosing) or up_repeats
        return up_ok, repeats, rank_dep or up_rank

    # -- classification (§3.1, §5.2) -------------------------------------------------

    def _classify(self, fn, sub_ids: frozenset[int]) -> SensorType:
        has_net = False
        has_io = False
        for instr in fn.instructions():
            node = instr.ast_node
            if node is None or node.node_id not in sub_ids:
                continue
            if not isinstance(instr, CallInstr) or instr.is_indirect:
                continue
            model = self.table.extern_model(instr.callee)
            if model is not None:
                has_net |= model.category == "net"
                has_io |= model.category == "io"
                continue
            summary = self.table.summaries.get(instr.callee)
            if summary is not None:
                has_net |= summary.contains_net
                has_io |= summary.contains_io
        if has_net:
            return SensorType.NETWORK
        if has_io:
            return SensorType.IO
        return SensorType.COMPUTATION


def _first_reason(result: SliceResult) -> Diagnostic | None:
    return result.reasons[0] if result.reasons else None


def _rejection_diag(snippet: Snippet, reason: Diagnostic | None) -> Diagnostic:
    """The rejection diagnostic for a snippet, defaulting the span to the
    snippet itself when the slice recorded none."""
    if reason is None:
        return note(
            ReasonCode.NOT_FIXED,
            "workload not fixed across any enclosing loop",
            span=Span.from_node(snippet.node),
            origin="identify",
        )
    if reason.span.is_unknown:
        return Diagnostic(
            severity=reason.severity,
            code=reason.code,
            message=reason.message,
            span=Span.from_node(snippet.node),
            origin=reason.origin or "identify",
        )
    return reason


def compute_function_shapes(ir: IRModule) -> dict[str, FunctionShape]:
    """Per-function AST structure facts (the pipeline's ``cfa`` artifact)."""
    return {
        name: compute_shape(fn.ast) for name, fn in ir.functions.items() if fn.ast
    }


def _copy_seed(seed: SliceResult) -> SliceResult:
    fresh = SliceResult()
    fresh.merge(seed)
    return fresh


def identify_vsensors(
    ast_module: A.Module,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    entry: str = "main",
) -> IdentificationResult:
    """Identify the v-sensors of a parsed program.

    ``static_rules`` is a sequence of :class:`~repro.sensors.rules.StaticRule`
    instances applied as extra vetoes after the default analysis.
    """
    identifier = _Identifier(ast_module, externs or default_extern_registry(), entry=entry)
    result = identifier.run()
    if static_rules:
        apply_static_rules(result, static_rules)
    return result


def apply_static_rules(result: IdentificationResult, static_rules) -> IdentificationResult:
    """Filter ``result.sensors`` through extra static rules (§3.1), recording
    each veto as a rejection diagnostic (mutates ``result``)."""
    kept = []
    for sensor in result.sensors:
        vetoed_by = next(
            (r for r in static_rules if not r.accepts(sensor, result.summaries)), None
        )
        if vetoed_by is None:
            kept.append(sensor)
        else:
            rule_name = getattr(vetoed_by, "name", type(vetoed_by).__name__)
            result.rejections.append(
                Rejection(
                    sensor.snippet,
                    note(
                        ReasonCode.STATIC_RULE_VETO,
                        f"vetoed by static rule {rule_name!r}",
                        span=Span.from_node(sensor.snippet.node),
                        origin="identify",
                    ),
                )
            )
    result.sensors = kept
    return result
