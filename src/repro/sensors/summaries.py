"""Bottom-up function summaries over the preprocessed call graph (§3.3, §3.5).

For each function, three facts are summarized so that callers can be
analyzed without re-visiting callee bodies:

* **workload** — which of the function's parameters / globals determine its
  total quantity of work (plus rank / non-fixed poison markers);
* **ret** — what the return value depends on;
* **mods** — which globals the function may modify, transitively.

Functions pruned from the call graph (recursive, address-taken) and
undescribed externs are *never-fixed*: callers treat any call to them as
disqualifying (§3.5's conservative default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.callgraph.preprocess import PreprocessResult
from repro.dataflow.usedef import UseDefChains, build_use_def_chains
from repro.diagnostics import ReasonCode
from repro.ir.function import IRFunction
from repro.ir.instructions import CallInstr, Ret, Store
from repro.ir.irmodule import IRModule
from repro.sensors.extern import RET_RANK, ExternModel, ExternRegistry
from repro.sensors.model import FunctionSummary, SliceResult


@dataclass(slots=True)
class SummaryTable:
    """All function summaries plus shared lookups used by the slicer."""

    module: IRModule
    externs: ExternRegistry
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    chains: dict[str, UseDefChains] = field(default_factory=dict)
    #: functions whose address is taken (possible indirect-call targets)
    pointer_targets: set[str] = field(default_factory=set)

    def ir_function(self, name: str) -> IRFunction | None:
        return self.module.functions.get(name)

    def extern_model(self, name: str) -> ExternModel | None:
        if self.module.has_function(name):
            return None
        return self.externs.lookup(name)

    def for_call(self, instr: CallInstr) -> FunctionSummary | None:
        """Summary for a call's callee; None for undescribed externs and
        indirect calls (= never analyzable)."""
        if instr.is_indirect:
            return None
        name = instr.callee
        if name in self.summaries:
            return self.summaries[name]
        model = self.extern_model(name)
        if model is None:
            return None
        return self._extern_summary(model)

    def _extern_summary(self, model: ExternModel) -> FunctionSummary:
        summary = FunctionSummary(name=model.name)
        # Extern workload depends on its workload args (expressed via
        # synthetic parameter names arg0..argN) — callers map them by index.
        for idx in model.workload_args:
            summary.workload.params.add(f"arg{idx}")
        if model.ret == RET_RANK:
            summary.ret.rank = True
        summary.contains_net = model.category == "net"
        summary.contains_io = model.category == "io"
        return summary

    def call_mod_set(self, instr: CallInstr) -> set[str]:
        """Globals a call may modify (drives reaching-def may-defs)."""
        if instr.is_indirect:
            # Could land in any address-taken function; if none are known,
            # fall back to every global.
            if self.pointer_targets:
                mods: set[str] = set()
                for name in self.pointer_targets:
                    summary = self.summaries.get(name)
                    mods |= summary.mods if summary is not None else set(self.module.globals)
                return mods
            return set(self.module.globals)
        summary = self.summaries.get(instr.callee)
        if summary is not None:
            return set(summary.mods)
        # Externs cannot write program globals in this closed language.
        return set()

    def use_def(self, name: str) -> UseDefChains:
        return self.chains[name]


def compute_summaries(
    module: IRModule,
    cg: CallGraph,
    prep: PreprocessResult,
    externs: ExternRegistry,
) -> SummaryTable:
    """Compute summaries in callee-first order (workflow step 2a+2c)."""
    table = SummaryTable(module=module, externs=externs)
    table.pointer_targets = set(prep.pointer_targets)

    _compute_mod_sets(table, module, prep)
    _compute_category_flags(table, module, externs)

    # Use-def chains are built after mod sets exist, since call instructions
    # act as may-definitions of the globals their callee modifies.
    for name, fn in module.functions.items():
        table.chains[name] = build_use_def_chains(
            fn, set(module.globals), call_mod_sets=table.call_mod_set
        )

    never_fixed = prep.never_fixed()
    for name in prep.order:
        fn = module.functions[name]
        summary = table.summaries[name]
        if name in never_fixed:
            summary.never_fixed = True
            summary.workload.fail(
                "recursive or address-taken function",
                code=ReasonCode.RECURSIVE_FUNCTION, nonfixed=True,
            )
            summary.ret.fail(
                "recursive or address-taken function",
                code=ReasonCode.RECURSIVE_FUNCTION, nonfixed=True,
            )
            continue
        _summarize_workload(table, fn, summary)
        _summarize_return(table, fn, summary)

    return table


def _compute_mod_sets(table: SummaryTable, module: IRModule, prep: PreprocessResult) -> None:
    """Fixpoint over direct stores + callee mods (cycles converge)."""
    for name in module.functions:
        table.summaries[name] = FunctionSummary(name=name)

    direct: dict[str, set[str]] = {}
    callees: dict[str, set[str]] = {}
    has_indirect: dict[str, bool] = {}
    for name, fn in module.functions.items():
        mods: set[str] = set()
        callee_names: set[str] = set()
        indirect = False
        for instr in fn.instructions():
            if isinstance(instr, Store) and instr.var in module.globals:
                mods.add(instr.var)
            from repro.ir.instructions import StoreElem

            if isinstance(instr, StoreElem) and instr.arr in module.globals:
                mods.add(instr.arr)
            if isinstance(instr, CallInstr):
                if instr.is_indirect:
                    indirect = True
                elif module.has_function(instr.callee):
                    callee_names.add(instr.callee)
        direct[name] = mods
        callees[name] = callee_names
        has_indirect[name] = indirect

    all_globals = set(module.globals)
    result = {name: set(m) for name, m in direct.items()}
    for name in module.functions:
        if has_indirect[name]:
            # An indirect call may reach any address-taken function.
            for target in prep.pointer_targets:
                callees[name].add(target)
    changed = True
    while changed:
        changed = False
        for name in module.functions:
            merged = set(result[name])
            for callee in callees[name]:
                merged |= result.get(callee, all_globals)
            if merged != result[name]:
                result[name] = merged
                changed = True
    for name, mods in result.items():
        table.summaries[name].mods = mods


def _compute_category_flags(table: SummaryTable, module: IRModule, externs: ExternRegistry) -> None:
    """Propagate contains_net / contains_io bottom-up (fixpoint)."""
    changed = True
    while changed:
        changed = False
        for name, fn in module.functions.items():
            summary = table.summaries[name]
            net, io = summary.contains_net, summary.contains_io
            for instr in fn.instructions():
                if not isinstance(instr, CallInstr) or instr.is_indirect:
                    continue
                callee_summary = table.summaries.get(instr.callee)
                if callee_summary is not None:
                    net |= callee_summary.contains_net
                    io |= callee_summary.contains_io
                else:
                    model = externs.lookup(instr.callee)
                    if model is not None:
                        net |= model.category == "net"
                        io |= model.category == "io"
            if (net, io) != (summary.contains_net, summary.contains_io):
                summary.contains_net, summary.contains_io = net, io
                changed = True


def _summarize_workload(table: SummaryTable, fn: IRFunction, summary: FunctionSummary) -> None:
    """Whole-function workload inputs, expressed over params/globals."""
    from repro.sensors.asttools import subtree_ids
    from repro.sensors.slicer import run_slice, workload_inputs

    if fn.ast is None or fn.ast.body is None:
        return
    body_ids = subtree_ids(fn.ast.body)
    values, seed, callee_sites = workload_inputs(fn, body_ids, table)
    result = run_slice(
        fn,
        table.use_def(fn.name),
        table,
        snippet_ids=body_ids,
        region_ids=body_ids,
        global_names=set(table.module.globals),
        values=values,
        seed=seed,
        callee_global_sites=callee_sites,
    )
    summary.workload = result


def _summarize_return(table: SummaryTable, fn: IRFunction, summary: FunctionSummary) -> None:
    """What the return value depends on."""
    from repro.sensors.asttools import subtree_ids
    from repro.sensors.slicer import run_slice

    if fn.ast is None or fn.ast.body is None:
        return
    body_ids = subtree_ids(fn.ast.body)
    values = [
        instr.value
        for instr in fn.instructions()
        if isinstance(instr, Ret) and instr.value is not None
    ]
    result = run_slice(
        fn,
        table.use_def(fn.name),
        table,
        snippet_ids=body_ids,
        region_ids=body_ids,
        global_names=set(table.module.globals),
        values=values,
        seed=SliceResult(),
    )
    summary.ret = result
