"""Data model for snippets, slice results, and v-sensors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.diagnostics import Diagnostic, ReasonCode, Severity, Span
from repro.frontend import ast_nodes as A
from repro.frontend.location import SourceLoc


class SnippetKind(enum.Enum):
    """Only loops and calls are snippet candidates (§3.1)."""

    LOOP = "loop"
    CALL = "call"


class SensorType(enum.Enum):
    """The system component a sensor's timing reflects (§3.1, §5.2)."""

    COMPUTATION = "Comp"
    NETWORK = "Net"
    IO = "IO"


@dataclass(eq=False, slots=True)
class Snippet:
    """One snippet candidate: a loop or a call, inside some function."""

    kind: SnippetKind
    function: str
    node: A.Node
    #: enclosing loop statements within the same function, innermost first
    enclosing_loops: list[A.Stmt] = field(default_factory=list)
    #: loop nesting depth of the snippet itself (out-most loop = depth 0)
    depth: int = 0

    def __hash__(self) -> int:
        return self.node.node_id

    @property
    def snippet_id(self) -> int:
        return self.node.node_id

    @property
    def loc(self) -> SourceLoc:
        return self.node.loc

    @property
    def spelled(self) -> str:
        if self.kind is SnippetKind.CALL:
            assert isinstance(self.node, A.CallExpr)
            return f"call {self.node.callee}"
        return "for-loop" if isinstance(self.node, A.ForStmt) else "while-loop"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Snippet({self.spelled} @ {self.function}:{self.loc.line})"


@dataclass(slots=True)
class SliceResult:
    """Outcome of one dependency-propagation slice.

    ``variant`` — some input changes within the checked region (not fixed).
    ``nonfixed`` — some input is unanalyzable (array contents, undescribed
    extern call, opaque call effect): treated as never-fixed (§3.5).
    ``rank`` — the workload depends on the process identity (§3.4).
    ``params``/``globals`` — function inputs the workload depends on; used
    by inter-procedural propagation (§3.3).

    ``reasons`` holds structured :class:`~repro.diagnostics.Diagnostic`
    entries (stable reason code + source span) for every disqualifying
    finding, capped to the first 16.
    """

    variant: bool = False
    nonfixed: bool = False
    rank: bool = False
    params: set[str] = field(default_factory=set)
    globals: set[str] = field(default_factory=set)
    reasons: list[Diagnostic] = field(default_factory=list)

    @property
    def fixed(self) -> bool:
        return not (self.variant or self.nonfixed)

    def merge(self, other: "SliceResult") -> None:
        self.variant |= other.variant
        self.nonfixed |= other.nonfixed
        self.rank |= other.rank
        self.params |= other.params
        self.globals |= other.globals
        self.reasons.extend(other.reasons)

    def fail(
        self,
        reason: str,
        *,
        code: ReasonCode | None = None,
        span: Span | None = None,
        nonfixed: bool = False,
    ) -> None:
        if nonfixed:
            self.nonfixed = True
        else:
            self.variant = True
        if code is None:
            code = ReasonCode.NOT_FIXED if nonfixed else ReasonCode.VARIANT_INPUT
        if len(self.reasons) < 16:
            self.reasons.append(
                Diagnostic(
                    severity=Severity.NOTE,
                    code=code,
                    message=reason,
                    span=span if span is not None else Span(),
                    origin="identify",
                )
            )


@dataclass(eq=False, slots=True)
class VSensor:
    """An identified v-sensor: a snippet plus its validity scope.

    ``scope_loops`` is the contiguous chain of enclosing loops (innermost
    first, within the snippet's own function) across whose iterations the
    workload is fixed.  ``is_function_scope`` means the chain covers every
    enclosing loop in the function; ``is_global`` additionally means the
    fixedness survives inter-procedural propagation to ``main`` — only
    global sensors are instrumented (§4).
    """

    snippet: Snippet
    sensor_type: SensorType
    scope_loops: list[A.Stmt] = field(default_factory=list)
    is_function_scope: bool = False
    is_global: bool = False
    #: fixed across MPI ranks (usable for inter-process detection, §3.4)
    rank_invariant: bool = True
    #: residual inputs (params/globals of the containing function)
    param_deps: set[str] = field(default_factory=set)
    global_deps: set[str] = field(default_factory=set)
    #: filled by the instrumentation pass
    selected: bool = False

    def __hash__(self) -> int:
        return self.snippet.snippet_id

    @property
    def sensor_id(self) -> int:
        return self.snippet.snippet_id

    @property
    def loc(self) -> SourceLoc:
        return self.snippet.loc

    @property
    def function(self) -> str:
        return self.snippet.function

    def describe(self) -> str:
        scope = "global" if self.is_global else f"{len(self.scope_loops)} loop(s)"
        rank = "rank-invariant" if self.rank_invariant else "rank-variant"
        return (
            f"{self.snippet.spelled} @ {self.function}:{self.loc.line} "
            f"[{self.sensor_type.value}, scope={scope}, {rank}]"
        )


@dataclass(slots=True)
class FunctionSummary:
    """Bottom-up summary of one function (§3.3, §3.5).

    ``workload`` — what the function's total quantity of work depends on.
    ``ret`` — what its return value depends on.
    ``mods`` — globals it may modify (transitively).
    ``contains_net`` / ``contains_io`` — whether it (transitively) performs
    network / IO operations, used for snippet classification.
    ``never_fixed`` — recursive or address-taken functions (pruned from the
    call graph, Fig. 10) plus undescribed externs.
    """

    name: str
    workload: SliceResult = field(default_factory=SliceResult)
    ret: SliceResult = field(default_factory=SliceResult)
    mods: set[str] = field(default_factory=set)
    contains_net: bool = False
    contains_io: bool = False
    never_fixed: bool = False
