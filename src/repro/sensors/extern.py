"""Workload descriptions for external functions (§3.5).

An external function has no body in the module, so its behaviour cannot be
analyzed.  The paper's default policy is conservative: an undescribed extern
is *never-fixed workload*, so any snippet containing a call to it is never a
v-sensor.  Descriptions for common libc and MPI functions are provided here,
mirroring the defaults vSensor ships; users can register more.

A description states, for each function:

* which argument positions determine the quantity of work
  (``workload_args`` — e.g. the element count of ``MPI_Send``),
* what the return value is (a constant, the process rank, a function of the
  arguments, or unanalyzable),
* which category of system component it exercises (network / IO /
  computation / neutral),
* which argument, if any, names a communication destination
  (``dest_arg`` — used by the optional fixed-destination static rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: return-value behaviours
RET_CONST = "const"          # same value every call (e.g. MPI_SUCCESS)
RET_RANK = "rank"            # process identity (MPI_Comm_rank, gethostname)
RET_ARGS = "depends_args"    # pure function of the arguments (sqrt, abs)
RET_NONFIXED = "nonfixed"    # unanalyzable (rand, fread contents, time)


@dataclass(frozen=True, slots=True)
class ExternModel:
    """Workload description of one external function."""

    name: str
    workload_args: tuple[int, ...] = ()
    ret: str = RET_CONST
    category: str = "neutral"  # "net" | "io" | "comp" | "neutral"
    dest_arg: int | None = None
    #: base simulated cost (abstract work units) — used by the interpreter
    base_cost: float = 1.0
    #: per-unit cost multiplier applied to the product of workload args
    unit_cost: float = 1.0
    #: False for functions too small to wrap in probes (math, rand, ...);
    #: such call snippets are identified but never selected (§4 granularity)
    probe_worthy: bool = True


class ExternRegistry:
    """Lookup table of extern models, with the conservative default."""

    def __init__(self, models: dict[str, ExternModel] | None = None) -> None:
        self._models: dict[str, ExternModel] = dict(models or {})

    def register(self, model: ExternModel) -> None:
        self._models[model.name] = model

    def lookup(self, name: str) -> ExternModel | None:
        """The model for ``name``, or None when undescribed (= never fixed)."""
        return self._models.get(name)

    def known(self, name: str) -> bool:
        return name in self._models

    def names(self) -> list[str]:
        return sorted(self._models)

    def copy(self) -> "ExternRegistry":
        return ExternRegistry(dict(self._models))

    def cache_fingerprint(self) -> str:
        """Deterministic content identity for pipeline artifact caching.

        ExternModel is a frozen dataclass with only scalar/tuple fields, so
        its repr is a faithful content digest; sorting makes registration
        order irrelevant.
        """
        body = ",".join(repr(self._models[name]) for name in sorted(self._models))
        return f"ExternRegistry({body})"


def _mpi_models() -> list[ExternModel]:
    """Default descriptions for the MPI subset the mini language exposes.

    Signatures are simplified relative to real MPI (buffers are implicit;
    sizes are element counts): ``MPI_Send(dest, count)``,
    ``MPI_Recv(src, count)``, ``MPI_Allreduce(count)``,
    ``MPI_Alltoall(count)``, ``MPI_Bcast(root, count)``,
    ``MPI_Reduce(root, count)``, ``MPI_Barrier()``,
    ``MPI_Comm_rank()``, ``MPI_Comm_size()``, ``MPI_Wtime()``,
    ``MPI_Sendrecv(peer, count)``, ``MPI_Allgather(count)``.
    """
    return [
        ExternModel("MPI_Send", workload_args=(1,), ret=RET_CONST, category="net", dest_arg=0, base_cost=2.0, unit_cost=1.0),
        ExternModel("MPI_Recv", workload_args=(1,), ret=RET_CONST, category="net", dest_arg=0, base_cost=2.0, unit_cost=1.0),
        ExternModel("MPI_Sendrecv", workload_args=(1,), ret=RET_CONST, category="net", dest_arg=0, base_cost=3.0, unit_cost=2.0),
        ExternModel("MPI_Allreduce", workload_args=(0,), ret=RET_CONST, category="net", base_cost=4.0, unit_cost=2.0),
        ExternModel("MPI_Reduce", workload_args=(1,), ret=RET_CONST, category="net", base_cost=3.0, unit_cost=1.5),
        ExternModel("MPI_Bcast", workload_args=(1,), ret=RET_CONST, category="net", base_cost=3.0, unit_cost=1.5),
        ExternModel("MPI_Alltoall", workload_args=(0,), ret=RET_CONST, category="net", base_cost=6.0, unit_cost=4.0),
        ExternModel("MPI_Allgather", workload_args=(0,), ret=RET_CONST, category="net", base_cost=5.0, unit_cost=3.0),
        ExternModel("MPI_Barrier", workload_args=(), ret=RET_CONST, category="net", base_cost=3.0),
        ExternModel("MPI_Comm_rank", workload_args=(), ret=RET_RANK, category="neutral", base_cost=0.1),
        ExternModel("MPI_Comm_size", workload_args=(), ret=RET_CONST, category="neutral", base_cost=0.1),
        ExternModel("MPI_Wtime", workload_args=(), ret=RET_NONFIXED, category="neutral", base_cost=0.1),
    ]


def _libc_models() -> list[ExternModel]:
    """Default descriptions for the libc-like subset.

    ``fread(n)`` / ``fwrite(n)`` move ``n`` units; ``printf(...)`` emits a
    bounded message (fixed workload); ``sqrt``/``fabs``/``exp``/``log``/
    ``sin``/``cos`` are pure math; ``rand()`` and ``clock()`` return
    unanalyzable values; ``gethostname()`` identifies the process;
    ``compute_units(n)`` is the synthetic CPU-burn intrinsic used by the
    workload analogues (n units of arithmetic).
    """
    pure_math = ["sqrt", "fabs", "exp", "log", "sin", "cos", "floor", "ceil", "pow", "fmod", "min", "max", "abs"]
    models = [
        ExternModel(name, workload_args=(), ret=RET_ARGS, category="comp", base_cost=1.0, probe_worthy=False)
        for name in pure_math
    ]
    models += [
        ExternModel("printf", workload_args=(), ret=RET_CONST, category="io", base_cost=2.0),
        ExternModel("fread", workload_args=(0,), ret=RET_NONFIXED, category="io", base_cost=4.0, unit_cost=2.0),
        ExternModel("fwrite", workload_args=(0,), ret=RET_CONST, category="io", base_cost=4.0, unit_cost=2.0),
        ExternModel("fopen", workload_args=(), ret=RET_NONFIXED, category="io", base_cost=8.0),
        ExternModel("fclose", workload_args=(), ret=RET_CONST, category="io", base_cost=4.0),
        ExternModel("rand", workload_args=(), ret=RET_NONFIXED, category="comp", base_cost=0.5, probe_worthy=False),
        ExternModel("srand", workload_args=(), ret=RET_CONST, category="comp", base_cost=0.5, probe_worthy=False),
        ExternModel("clock", workload_args=(), ret=RET_NONFIXED, category="neutral", base_cost=0.1, probe_worthy=False),
        ExternModel("gethostname", workload_args=(), ret=RET_RANK, category="neutral", base_cost=0.5, probe_worthy=False),
        # compute_units stands for inlined straight-line arithmetic; it is
        # costed by the simulator but is not a call-snippet candidate (the
        # paper's `count++` statement case) and never probed.
        ExternModel("compute_units", workload_args=(0,), ret=RET_CONST, category="comp", base_cost=0.0, unit_cost=1.0, probe_worthy=False),
    ]
    return models


def default_extern_registry() -> ExternRegistry:
    """The registry with the paper's default libc + MPI descriptions."""
    registry = ExternRegistry()
    for model in _mpi_models() + _libc_models():
        registry.register(model)
    return registry
