"""Compile-time workload estimation for snippet granularity (§4).

The paper's granularity rule ("only v-sensors with depth < max-depth")
is explicitly called *an estimation* of snippet cost.  This module makes
the estimation concrete: it computes a static work estimate per snippet
from loop trip counts and call costs, so the instrumenter can skip
snippets that are predictably too small to be worth probing (runtime
shutoff, §5.3, still covers what the estimate cannot see).

The estimator is best-effort and never wrong in a harmful direction:
``None`` (unknown) is returned whenever a bound, argument or callee
resists constant evaluation, and the caller treats unknown as "keep".

Estimation rules:

* a for-loop ``for (i = c0; i < c1; i = i + c2)`` with constant chain has
  trip count ``ceil((c1 - c0) / c2)``; other loops are unknown;
* statement costs mirror the simulator's charge table;
* ``compute_units(c)`` costs ``c``; described externs cost
  ``base + unit * workload args`` when those are constants;
* a call to a defined function costs that function's estimate
  (memoized; recursion yields unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as A
from repro.sensors.extern import ExternRegistry, default_extern_registry

# Cost table mirroring repro.sim.interp.
_COST_BINOP = 1.0
_COST_UNARY = 0.5
_COST_LOAD = 0.5
_COST_STORE = 0.5
_COST_INDEX = 0.5
_COST_CALL = 2.0
_COST_BRANCH = 0.5


@dataclass(slots=True)
class WorkloadEstimator:
    """Static per-snippet work estimates for one module."""

    module: A.Module
    externs: ExternRegistry = field(default_factory=default_extern_registry)
    _function_memo: dict[str, float | None] = field(default_factory=dict)
    _active: set[str] = field(default_factory=set)

    def estimate_snippet(self, node: A.Node) -> float | None:
        """Estimated work units of one loop or call snippet execution."""
        if isinstance(node, A.Stmt):
            return self._stmt_cost(node)
        if isinstance(node, A.CallExpr):
            return self._expr_cost(node)
        return None

    def estimate_function(self, name: str) -> float | None:
        """Estimated work of one invocation of a defined function."""
        if name in self._function_memo:
            return self._function_memo[name]
        if name in self._active:
            return None  # recursion: unknown
        try:
            fn = self.module.function(name)
        except KeyError:
            return None
        self._active.add(name)
        try:
            cost = self._stmt_cost(fn.body) if fn.body is not None else 0.0
        finally:
            self._active.discard(name)
        self._function_memo[name] = cost
        return cost

    # -- statements ----------------------------------------------------------

    def _stmt_cost(self, stmt: A.Stmt | None) -> float | None:
        if stmt is None:
            return 0.0
        if isinstance(stmt, A.Block):
            return self._sum(self._stmt_cost(s) for s in stmt.stmts)
        if isinstance(stmt, A.VarDecl):
            init = self._expr_cost(stmt.init) if stmt.init is not None else 0.0
            return _add(init, _COST_STORE)
        if isinstance(stmt, A.Assign):
            target_cost = 0.0
            if isinstance(stmt.target, A.ArrayRef):
                target_cost = _add(self._expr_cost(stmt.target.index), _COST_INDEX)
            return self._sum([self._expr_cost(stmt.value), target_cost, _COST_STORE])
        if isinstance(stmt, A.IfStmt):
            cond = self._expr_cost(stmt.cond)
            then_cost = self._stmt_cost(stmt.then_body)
            else_cost = self._stmt_cost(stmt.else_body) if stmt.else_body else 0.0
            if then_cost is None or else_cost is None or cond is None:
                return None
            # Take the mean of the branches: an estimate, not a bound.
            return cond + _COST_BRANCH + 0.5 * (then_cost + else_cost)
        if isinstance(stmt, A.ForStmt):
            trips = self.trip_count(stmt)
            if trips is None:
                return None
            per_iter = self._sum(
                [
                    self._expr_cost(stmt.cond) if stmt.cond is not None else 0.0,
                    _COST_BRANCH,
                    self._stmt_cost(stmt.body),
                    self._stmt_cost(stmt.step) if stmt.step is not None else 0.0,
                ]
            )
            init = self._stmt_cost(stmt.init) if stmt.init is not None else 0.0
            if per_iter is None or init is None:
                return None
            return init + trips * per_iter
        if isinstance(stmt, A.WhileStmt):
            return None  # trip count unknowable statically here
        if isinstance(stmt, A.ReturnStmt):
            return self._expr_cost(stmt.value) if stmt.value is not None else 0.0
        if isinstance(stmt, (A.BreakStmt, A.ContinueStmt)):
            return 0.0
        if isinstance(stmt, A.ExprStmt):
            return self._expr_cost(stmt.expr)
        return None

    # -- expressions ------------------------------------------------------------

    def _expr_cost(self, expr: A.Expr | None) -> float | None:
        if expr is None:
            return 0.0
        if isinstance(expr, (A.IntLit, A.FloatLit, A.StringLit, A.AddrOf)):
            return 0.0
        if isinstance(expr, A.VarRef):
            return _COST_LOAD
        if isinstance(expr, A.ArrayRef):
            return _add(self._expr_cost(expr.index), _COST_LOAD + _COST_INDEX)
        if isinstance(expr, A.BinOp):
            return self._sum([self._expr_cost(expr.left), self._expr_cost(expr.right), _COST_BINOP])
        if isinstance(expr, A.UnaryOp):
            return _add(self._expr_cost(expr.operand), _COST_UNARY)
        if isinstance(expr, A.CallExpr):
            args_cost = self._sum(self._expr_cost(a) for a in expr.args)
            if args_cost is None:
                return None
            return _add(self._call_cost(expr), args_cost + _COST_CALL)
        return None

    def _call_cost(self, call: A.CallExpr) -> float | None:
        if self.module.has_function(call.callee):
            return self.estimate_function(call.callee)
        model = self.externs.lookup(call.callee)
        if model is None:
            return None
        units = 1.0
        for idx in model.workload_args:
            if idx >= len(call.args):
                return None
            value = const_value(call.args[idx])
            if value is None:
                return None
            units *= max(0.0, float(value))
        extra = model.unit_cost * units if model.workload_args else 0.0
        return model.base_cost + extra

    # -- loop trip counts ----------------------------------------------------------

    def trip_count(self, loop: A.ForStmt) -> float | None:
        """Trip count of a canonical counted loop, else None."""
        if loop.init is None or loop.cond is None or loop.step is None:
            return None
        # init: i = c0
        if not (isinstance(loop.init, A.Assign) and isinstance(loop.init.target, A.VarRef)):
            return None
        var = loop.init.target.name
        c0 = const_value(loop.init.value)
        # cond: i < c1  or  i <= c1
        cond = loop.cond
        if not (
            isinstance(cond, A.BinOp)
            and cond.op in ("<", "<=")
            and isinstance(cond.left, A.VarRef)
            and cond.left.name == var
        ):
            return None
        c1 = const_value(cond.right)
        # step: i = i + c2
        step = loop.step
        if not (
            isinstance(step, A.Assign)
            and isinstance(step.target, A.VarRef)
            and step.target.name == var
            and isinstance(step.value, A.BinOp)
            and step.value.op == "+"
            and isinstance(step.value.left, A.VarRef)
            and step.value.left.name == var
        ):
            return None
        c2 = const_value(step.value.right)
        if c0 is None or c1 is None or c2 is None or c2 <= 0:
            return None
        span = c1 - c0 + (1 if cond.op == "<=" else 0)
        if span <= 0:
            return 0.0
        return float(-(-int(span) // int(c2))) if float(c2).is_integer() else span / c2

    # -- helpers -------------------------------------------------------------------

    def _sum(self, parts) -> float | None:
        total = 0.0
        for part in parts:
            if part is None:
                return None
            total += part
        return total


def _add(a: float | None, b: float) -> float | None:
    return None if a is None else a + b


def const_value(expr: A.Expr | None):
    """Constant-fold a pure expression of literals; None when not constant.

    Handles the arithmetic subset that appears in loop headers and call
    arguments after macro-style source generation (e.g. ``8192``,
    ``2 * 16``, ``-(4)``).  Reads of variables are not folded — that is the
    dependency analysis' job, and the estimator must stay conservative.
    """
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.UnaryOp) and expr.op == "-":
        inner = const_value(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, A.BinOp):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right if isinstance(left, int) and isinstance(right, int) else left / right
            if expr.op == "%":
                return left % right
        except ZeroDivisionError:
            return None
    return None
