"""Optional static rules (§3.1, Fig. 5).

The default decision rules (fixed instruction sequence for computation,
fixed message size/type for network, fixed transfer size for IO) are built
into the slicing engine.  This module hosts the *additional* static rules a
user may layer on top: each rule inspects an already-identified v-sensor and
may veto it.  More strict static rules produce fewer v-sensors.

Dynamic rules (cache-miss bands etc.) live in :mod:`repro.runtime.dynrules`;
they classify records at runtime instead of vetoing sensors at compile time.
"""

from __future__ import annotations

from typing import Protocol

from repro.frontend import ast_nodes as A
from repro.ir.function import IRFunction
from repro.ir.instructions import CallInstr, ConstInt
from repro.sensors.model import SensorType, VSensor
from repro.sensors.summaries import SummaryTable


class StaticRule(Protocol):
    """One extra compile-time constraint on v-sensors."""

    name: str

    def accepts(self, sensor: VSensor, table: SummaryTable) -> bool:
        """Return False to veto the sensor."""
        ...


class FixedDestinationRule:
    """Network sensors must also have a compile-time-constant destination.

    The paper gives communication destination as the canonical static rule
    for real-world MPI programs: the peer is known at compile time, so a
    stricter user can require it to be a literal constant.
    """

    name = "fixed-destination"

    def accepts(self, sensor: VSensor, table: SummaryTable) -> bool:
        if sensor.sensor_type is not SensorType.NETWORK:
            return True
        fn = table.ir_function(sensor.function)
        if fn is None:
            return True
        snippet_ids = _snippet_ids(sensor, fn)
        for instr in fn.instructions():
            node = instr.ast_node
            if node is None or node.node_id not in snippet_ids:
                continue
            if not isinstance(instr, CallInstr) or instr.is_indirect:
                continue
            model = table.extern_model(instr.callee)
            if model is None or model.dest_arg is None:
                continue
            if model.dest_arg >= len(instr.args):
                continue
            if not isinstance(instr.args[model.dest_arg], ConstInt):
                return False
        return True


class MaxLoopDepthRule:
    """Veto sensors nested deeper than ``max_depth`` (granularity, §4).

    Depth 0 is an out-most loop.  This duplicates the instrumenter's
    max-depth selection as a static rule so rule-stacking can be exercised
    and ablated independently.
    """

    def __init__(self, max_depth: int) -> None:
        self.max_depth = max_depth
        self.name = f"max-depth<{max_depth}"

    def accepts(self, sensor: VSensor, table: SummaryTable) -> bool:
        return sensor.snippet.depth < self.max_depth


class TypeFilterRule:
    """Keep only sensors of the given types (e.g. network-only studies)."""

    def __init__(self, types: set[SensorType]) -> None:
        self.types = set(types)
        self.name = "type-filter[" + ",".join(sorted(t.value for t in types)) + "]"

    def accepts(self, sensor: VSensor, table: SummaryTable) -> bool:
        return sensor.sensor_type in self.types


def _snippet_ids(sensor: VSensor, fn: IRFunction) -> frozenset[int]:
    from repro.sensors.asttools import subtree_ids

    return subtree_ids(sensor.snippet.node)
