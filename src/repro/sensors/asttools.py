"""AST structure utilities used by snippet analysis.

Snippet membership ("is this IR instruction part of loop L?") is decided by
AST-subtree containment: the lowering tags every instruction with the AST
node it implements, and these helpers precompute subtree node-id sets and
loop ancestry chains per function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as A


def subtree_ids(root: A.Node) -> frozenset[int]:
    """Node ids of ``root`` and everything nested below it.

    Works for statements (including nested statements and their
    expressions) and bare expressions.
    """
    ids: set[int] = set()
    if isinstance(root, A.Stmt):
        for stmt in A.walk_stmts(root):
            ids.add(stmt.node_id)
            for expr in A.walk_exprs(stmt):
                ids.add(expr.node_id)
    else:
        stack: list[A.Node] = [root]
        while stack:
            node = stack.pop()
            ids.add(node.node_id)
            stack.extend(A.child_exprs(node))
    return frozenset(ids)


@dataclass(slots=True)
class FunctionShape:
    """Precomputed structure facts for one function's AST."""

    fn: A.FunctionDef
    #: every loop statement in the function, preorder
    loops: list[A.Stmt] = field(default_factory=list)
    #: node_id -> chain of enclosing loop statements, innermost first
    enclosing: dict[int, list[A.Stmt]] = field(default_factory=dict)
    #: loop node_id -> subtree ids (for-loop subtrees include init/cond/step)
    loop_subtrees: dict[int, frozenset[int]] = field(default_factory=dict)
    #: loop node_id -> subtree ids of the per-iteration region: the loop
    #: subtree *minus* the init statement (a for-loop's init runs once, so a
    #: definition there does not vary the workload across iterations).
    loop_regions: dict[int, frozenset[int]] = field(default_factory=dict)
    #: every call expression in the function
    calls: list[A.CallExpr] = field(default_factory=list)
    #: call node_id -> subtree ids
    call_subtrees: dict[int, frozenset[int]] = field(default_factory=dict)
    #: whole-body subtree ids
    body_ids: frozenset[int] = frozenset()

    def loop_depth(self, loop: A.Stmt) -> int:
        """0 for an out-most loop, 1 for its direct subloops, ..."""
        return len(self.enclosing.get(loop.node_id, []))


def compute_shape(fn: A.FunctionDef) -> FunctionShape:
    """Walk ``fn`` once and precompute loops, calls, ancestry and subtrees."""
    shape = FunctionShape(fn=fn)
    if fn.body is None:
        return shape
    shape.body_ids = subtree_ids(fn.body)

    def visit(stmt: A.Stmt, loop_stack: list[A.Stmt]) -> None:
        shape.enclosing[stmt.node_id] = list(loop_stack)
        is_loop = isinstance(stmt, (A.ForStmt, A.WhileStmt))
        if is_loop:
            shape.loops.append(stmt)
            ids = subtree_ids(stmt)
            shape.loop_subtrees[stmt.node_id] = ids
            if isinstance(stmt, A.ForStmt) and stmt.init is not None:
                init_ids = subtree_ids(stmt.init)
                shape.loop_regions[stmt.node_id] = ids - init_ids
            else:
                shape.loop_regions[stmt.node_id] = ids
            # The loop's condition (and step) execute once per iteration, so
            # expressions of the loop statement itself count the loop as
            # enclosing.
            loop_stack = loop_stack + [stmt]
        for expr in A.walk_exprs(stmt):
            shape.enclosing[expr.node_id] = list(loop_stack)
            if isinstance(expr, A.CallExpr):
                shape.calls.append(expr)
                shape.call_subtrees[expr.node_id] = subtree_ids(expr)
        for child in A.child_stmts(stmt):
            # For-loop init/step statements belong to the loop's subtree;
            # the init is *not* in the per-iteration region but ancestry-wise
            # both sit inside the loop.
            visit(child, loop_stack)

    visit(fn.body, [])

    # walk_exprs on compound statements only yields that statement's own
    # expressions, so nested statements' expressions were handled in their
    # own visit() calls; nothing further to do.
    return shape
