"""Structured tracer: nested spans over a flight-recorder ring buffer.

Spans are timestamped in **microseconds** on whichever clock the tracer is
given — the default is the monotonic wall clock (``time.perf_counter``),
and the simulator contributes *virtual*-time spans on a separate track, so
one trace carries both "what did the tool cost" and "what did the
simulated cluster do".  Completed spans land in a
:class:`~repro.obs.ring.RingBuffer`; exporters (:mod:`repro.obs.export`)
turn the buffer into Chrome ``trace_event`` JSON or a flame summary.

Well-formedness is enforced, not hoped for: exiting with no open span or
exiting a span that is not the innermost open one raises
:class:`TraceError`, and an exit timestamp is clamped to its enter so
``exit >= enter`` holds even under a misbehaving injected clock.  The
hypothesis suite in ``tests/obs`` pins these guarantees.

Every enter/exit brackets its own bookkeeping with ``perf_counter`` and
accumulates the cost into :attr:`Tracer.self_cost_s` — the number the
paper-style self-overhead budget (<3 % on micro workloads) is asserted
against.  :class:`NullTracer` is the disabled path: one shared inert span
object, no allocation, no clock reads.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs.ring import RingBuffer


class TraceError(ReproError):
    """Malformed span usage: orphan exit or out-of-order exit."""


def _wall_clock_us() -> float:
    return time.perf_counter() * 1e6


class SpanRecord:
    """One completed span, as stored in the ring buffer."""

    __slots__ = ("seq", "parent", "name", "depth", "t_enter", "t_exit", "track", "attrs")

    def __init__(
        self,
        seq: int,
        parent: int,
        name: str,
        depth: int,
        t_enter: float,
        t_exit: float,
        track: str,
        attrs: dict[str, Any] | None,
    ) -> None:
        self.seq = seq
        self.parent = parent
        self.name = name
        self.depth = depth
        self.t_enter = t_enter
        self.t_exit = t_exit
        self.track = track
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        return self.t_exit - self.t_enter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, seq={self.seq}, parent={self.parent}, "
            f"dur={self.duration_us:.1f}us)"
        )


class Span:
    """An open span; a context manager that closes itself on exit."""

    __slots__ = ("tracer", "seq", "parent", "name", "depth", "t_enter", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        seq: int,
        parent: int,
        name: str,
        depth: int,
        t_enter: float,
        attrs: dict[str, Any] | None,
    ) -> None:
        self.tracer = tracer
        self.seq = seq
        self.parent = parent
        self.name = name
        self.depth = depth
        self.t_enter = t_enter
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the open span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.tracer.exit(self)


class Tracer:
    """Emits nested spans to an in-memory ring buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        clock: Callable[[], float] | None = None,
    ) -> None:
        #: clock returning µs; injectable for tests and sim-clock tracing
        self.clock = clock or _wall_clock_us
        self.buffer: RingBuffer[SpanRecord] = RingBuffer(capacity)
        #: accumulated cost of the tracer's own bookkeeping (seconds)
        self.self_cost_s = 0.0
        self._stack: list[Span] = []
        self._seq = 0

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; use as ``with tracer.span("phase") as s:``."""
        return self.enter(name, **attrs)

    def enter(self, name: str, **attrs: Any) -> Span:
        t0 = time.perf_counter()
        parent = self._stack[-1].seq if self._stack else -1
        self._seq += 1
        span = Span(
            tracer=self,
            seq=self._seq,
            parent=parent,
            name=name,
            depth=len(self._stack),
            t_enter=self.clock(),
            attrs=attrs or None,
        )
        self._stack.append(span)
        self.self_cost_s += time.perf_counter() - t0
        return span

    def exit(self, span: Span | None = None) -> SpanRecord:
        t0 = time.perf_counter()
        if not self._stack:
            raise TraceError("span exit with no span open (orphan exit)")
        top = self._stack[-1]
        if span is not None and span is not top:
            raise TraceError(
                f"out-of-order span exit: tried to close {span.name!r} "
                f"while {top.name!r} is still open"
            )
        self._stack.pop()
        t_exit = self.clock()
        record = SpanRecord(
            seq=top.seq,
            parent=top.parent,
            name=top.name,
            depth=top.depth,
            t_enter=top.t_enter,
            # Clamp so exit >= enter holds even for injected clocks.
            t_exit=max(t_exit, top.t_enter),
            track="real",
            attrs=top.attrs,
        )
        self.buffer.append(record)
        self.self_cost_s += time.perf_counter() - t0
        return record

    def emit(
        self,
        name: str,
        t_start: float,
        t_end: float,
        track: str = "sim",
        **attrs: Any,
    ) -> SpanRecord:
        """Record a pre-timed leaf span (e.g. virtual-clock sim spans).

        The span nests under the currently open span but carries the
        caller's timestamps verbatim on its own ``track``, so virtual time
        never mixes with the wall-clock timeline.
        """
        t0 = time.perf_counter()
        parent = self._stack[-1].seq if self._stack else -1
        self._seq += 1
        record = SpanRecord(
            seq=self._seq,
            parent=parent,
            name=name,
            depth=len(self._stack),
            t_enter=t_start,
            t_exit=max(t_end, t_start),
            track=track,
            attrs=attrs or None,
        )
        self.buffer.append(record)
        self.self_cost_s += time.perf_counter() - t0
        return record

    # -- introspection -----------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def records(self) -> list[SpanRecord]:
        """Completed spans, oldest first (open spans are not included)."""
        return self.buffer.to_list()

    def overhead_fraction(self, wall_s: float) -> float:
        """Tracer bookkeeping cost as a fraction of ``wall_s``."""
        if wall_s <= 0:
            return 0.0
        return self.self_cost_s / wall_s


class _NullSpan:
    """Shared inert span: the whole disabled path."""

    __slots__ = ()
    seq = -1
    parent = -1
    name = ""
    depth = 0
    attrs = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracing disabled: every call returns the shared inert span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def span(self, name: str, **attrs: Any):  # type: ignore[override]
        return _NULL_SPAN

    def enter(self, name: str, **attrs: Any):  # type: ignore[override]
        return _NULL_SPAN

    def exit(self, span=None):  # type: ignore[override]
        return None

    def emit(self, name, t_start, t_end, track="sim", **attrs):  # type: ignore[override]
        return None
