"""Counters, gauges and fixed-bucket histograms with named snapshots.

The registry is the single process-wide sink the instrumented hot paths
increment into.  Every instrument counts its own operations so the
registry can estimate its aggregate self-cost (see
:meth:`MetricsRegistry.estimated_cost_s`) without timing each increment —
timing a ~100 ns increment with a ~30 ns clock call would *be* the
overhead it claims to measure.

A :class:`NullMetricsRegistry` hands out shared no-op instruments so the
disabled path costs one attribute load and one call.
"""

from __future__ import annotations

import copy
import time
from bisect import bisect_left
from typing import Sequence

#: default histogram bucket upper bounds (µs of virtual time): spans the
#: paper's sensor granularities from sub-slice to multi-window
DEFAULT_BUCKETS_US = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "ops")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.ops = 0

    def inc(self, n: int = 1) -> None:
        self.value += n
        self.ops += 1


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value", "ops")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.ops = 0

    def set(self, value: float) -> None:
        self.value = value
        self.ops += 1


class Histogram:
    """Fixed-bucket histogram: bucket ``i`` counts ``edges[i-1] < v <= edges[i]``.

    Values above the last edge land in the overflow bucket (index
    ``len(edges)``).  A value exactly on an edge belongs to that edge's
    bucket — the convention the bucket-edge tests pin down.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum", "ops")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_BUCKETS_US) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges!r}")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.ops = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value
        self.ops += 1

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Get-or-create instrument registry with snapshot/delta support."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.snapshots: dict[str, dict] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_BUCKETS_US) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, edges)
        elif tuple(float(e) for e in edges) != inst.edges:
            raise ValueError(
                f"histogram {name!r} re-registered with different edges"
            )
        return inst

    # -- snapshots ---------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict() for n, h in sorted(self._histograms.items())},
        }

    def snapshot(self, label: str) -> dict:
        """Record (and return) a named point-in-time copy of every value."""
        snap = copy.deepcopy(self.as_dict())
        self.snapshots[label] = snap
        return snap

    def delta(self, before: str | dict, after: str | dict) -> dict:
        """Counter and histogram-count differences between two snapshots."""
        a = self.snapshots[before] if isinstance(before, str) else before
        b = self.snapshots[after] if isinstance(after, str) else after
        counters = {
            name: b["counters"][name] - a["counters"].get(name, 0)
            for name in b["counters"]
        }
        histograms = {}
        for name, hist in b["histograms"].items():
            prev = a["histograms"].get(name)
            prev_counts = prev["counts"] if prev else [0] * len(hist["counts"])
            histograms[name] = {
                "edges": hist["edges"],
                "counts": [x - y for x, y in zip(hist["counts"], prev_counts)],
                "total": hist["total"] - (prev["total"] if prev else 0),
            }
        return {"counters": counters, "histograms": histograms}

    # -- self-cost ---------------------------------------------------------

    def op_count(self) -> int:
        instruments = (
            list(self._counters.values())
            + list(self._gauges.values())
            + list(self._histograms.values())
        )
        return sum(inst.ops for inst in instruments)

    def estimated_cost_s(self, calibration_ops: int = 20_000) -> float:
        """Total registry cost: observed op count × calibrated per-op cost.

        Calibration times a scratch counter at report time, so the estimate
        tracks the actual machine this run used.
        """
        ops = self.op_count()
        if ops == 0:
            return 0.0
        scratch = Counter("_calibration")
        t0 = time.perf_counter()
        for _ in range(calibration_ops):
            scratch.inc()
        per_op = (time.perf_counter() - t0) / calibration_ops
        return ops * per_op


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0
    ops = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every lookup returns the shared null instrument."""

    enabled = False

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, edges=DEFAULT_BUCKETS_US):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def estimated_cost_s(self, calibration_ops: int = 20_000) -> float:
        return 0.0
