"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text flame summary.

The Chrome format is the catapult/Perfetto-loadable subset: complete
("X") events with µs timestamps, one ``tid`` per tracer track, and span
attributes in ``args``.  :func:`parse_chrome_trace` reads that subset back
— the golden suite round-trips every export through it so the emitted
schema can never silently drift.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.errors import ReproError
from repro.obs.tracer import SpanRecord, Tracer

#: stable tid assignment per tracer track
_TRACK_TIDS = {"real": 0, "sim": 1}


class TraceFormatError(ReproError):
    """A trace JSON document does not match the exported schema."""


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's buffer as a Chrome ``trace_event`` JSON document."""
    events: list[dict] = []
    for track, tid in sorted(_TRACK_TIDS.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for record in tracer.records():
        event = {
            "name": record.name,
            "cat": record.track,
            "ph": "X",
            "ts": record.t_enter,
            "dur": record.duration_us,
            "pid": 0,
            "tid": _TRACK_TIDS.get(record.track, len(_TRACK_TIDS)),
            "args": dict(record.attrs) if record.attrs else {},
        }
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": tracer.buffer.dropped},
    }


def parse_chrome_trace(document: dict | str) -> list[dict]:
    """Validate and return the complete-span events of an exported trace.

    Accepts the dict or its JSON text.  Raises :class:`TraceFormatError`
    on any event that does not match the schema :func:`chrome_trace`
    emits.
    """
    if isinstance(document, str):
        document = json.loads(document)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise TraceFormatError("not a trace document: missing 'traceEvents'")
    spans: list[dict] = []
    for i, event in enumerate(document["traceEvents"]):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            raise TraceFormatError(f"event {i}: unsupported phase {ph!r}")
        for key, kind in (("name", str), ("ts", (int, float)), ("dur", (int, float)),
                          ("pid", int), ("tid", int), ("args", dict)):
            if not isinstance(event.get(key), kind):
                raise TraceFormatError(f"event {i}: bad or missing {key!r}")
        if event["dur"] < 0:
            raise TraceFormatError(f"event {i}: negative duration")
        spans.append(event)
    return spans


def flame_summary(tracer: Tracer, track: str = "real") -> str:
    """Aggregate spans by call path into an indented text summary.

    One line per distinct path: share of the track's root time, total
    time, hit count, indented name.  Siblings sort by total time
    descending so the hot path reads top-to-bottom.
    """
    records = [r for r in tracer.records() if r.track == track]
    if not records:
        return f"(no {track}-track spans recorded)"
    by_seq = {r.seq: r for r in tracer.records()}

    def path_of(record: SpanRecord) -> tuple[str, ...]:
        names: list[str] = [record.name]
        parent = record.parent
        while parent != -1:
            above = by_seq.get(parent)
            if above is None:  # parent dropped by wraparound or still open:
                break  # the span roots at its highest surviving ancestor
            if above.track == track:  # other-track ancestors don't shape this flame
                names.append(above.name)
            parent = above.parent
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], list[float]] = {}
    for record in records:
        entry = totals.setdefault(path_of(record), [0.0, 0])
        entry[0] += record.duration_us
        entry[1] += 1
    root_total = sum(us for path, (us, _) in totals.items() if len(path) == 1)
    root_total = root_total or 1.0

    def render(prefix: tuple[str, ...], depth: int, out: list[str]) -> None:
        children = [
            (path, stats)
            for path, stats in totals.items()
            if len(path) == depth + 1 and path[:depth] == prefix
        ]
        children.sort(key=lambda item: (-item[1][0], item[0]))
        for path, (us, count) in children:
            out.append(
                f"{us / root_total:7.1%} {_fmt_us(us):>10s} {count:>6d}x  "
                + "  " * depth
                + path[-1]
            )
            render(path, depth + 1, out)

    lines = [
        f"flame summary ({track} track) — {_fmt_us(root_total)} total, "
        f"{len(records)} span(s)"
    ]
    render((), 0, lines)
    if tracer.buffer.dropped:
        lines.append(f"(+{tracer.buffer.dropped} dropped by ring wraparound)")
    return "\n".join(lines)


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1, sort_keys=True)


def metrics_document(registry) -> dict:
    """Metrics registry as a JSON-ready document (``--metrics-out``)."""
    return registry.as_dict()


def write_metrics(registry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_document(registry), fh, indent=1, sort_keys=True)


def iter_roots(records: Iterable[SpanRecord]) -> list[SpanRecord]:
    """Spans whose parent is absent from ``records`` (tree roots)."""
    records = list(records)
    present = {r.seq for r in records}
    return [r for r in records if r.parent not in present]
