"""Canonical (golden-comparable) views of a trace and a metrics registry.

Golden-trace regression tests must compare *structure and counts*, never
wall time: the span tree, names, tracks, discrete attributes, counter
values and histogram bucket counts are exact run-to-run under fixed
seeds, while timestamps and durations vary with the host.  The
canonical form therefore scrubs every time-like value:

* span timestamps and durations are dropped entirely;
* span attributes are dropped when the key has a time-ish suffix
  (``_us``/``_ms``/``_s``/``_seconds``) or the value is a float;
* gauges with time-ish names and histogram ``sum`` fields are dropped
  (bucket *counts* stay — virtual-time observations are deterministic).
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

_TIME_SUFFIXES = ("_us", "_ms", "_s", "_seconds")


def _scrub_attrs(attrs: dict[str, Any] | None) -> dict[str, Any]:
    if not attrs:
        return {}
    out = {}
    for key in sorted(attrs):
        value = attrs[key]
        if key.endswith(_TIME_SUFFIXES) or isinstance(value, float):
            continue
        out[key] = value
    return out


def canonical_span_tree(tracer: Tracer) -> list[dict]:
    """The trace as nested ``{name, track, attrs, children}`` nodes.

    Children appear in span-start (seq) order; roots likewise.  Open spans
    are absent by construction (only completed spans reach the buffer).
    """
    records = sorted(tracer.records(), key=lambda r: r.seq)
    present = {r.seq for r in records}
    children: dict[int, list] = {}
    for record in records:
        parent = record.parent if record.parent in present else -1
        children.setdefault(parent, []).append(record)

    def node(record) -> dict:
        out: dict[str, Any] = {"name": record.name, "track": record.track}
        attrs = _scrub_attrs(record.attrs)
        if attrs:
            out["attrs"] = attrs
        kids = children.get(record.seq)
        if kids:
            out["children"] = [node(k) for k in kids]
        return out

    return [node(r) for r in children.get(-1, [])]


def canonical_metrics(registry: MetricsRegistry) -> dict:
    """Counters, count-only histograms, and non-time gauges, sorted."""
    doc = registry.as_dict()
    histograms = {
        name: {"edges": h["edges"], "counts": h["counts"], "total": h["total"]}
        for name, h in doc["histograms"].items()
    }
    gauges = {
        name: value
        for name, value in doc["gauges"].items()
        if not name.endswith(_TIME_SUFFIXES) and not isinstance(value, float)
    }
    out: dict[str, Any] = {"counters": doc["counters"], "histograms": histograms}
    if gauges:
        out["gauges"] = gauges
    return out


def canonical_obs(obs) -> dict:
    """One golden-comparable document for a whole observed run."""
    return {
        "trace": canonical_span_tree(obs.tracer),
        "metrics": canonical_metrics(obs.metrics),
    }
