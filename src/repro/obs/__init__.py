"""Self-observability: structured tracing + metrics for the tool itself.

The paper's pitch is observing a *program* with <1 % overhead; this
subsystem lets the reproduction observe *itself* — where time goes in the
pass pipeline, the simulator and the detection runtime, and what the
probes' own bookkeeping costs — so the overhead story is measured, not
asserted.  Zero dependencies beyond the standard library.

Usage::

    from repro.obs import Obs
    obs = Obs.create()
    run = run_vsensor(source, machine, obs=obs)
    print(flame_summary(obs.tracer))
    print(obs.overhead_report(wall_s))

The default everywhere is :data:`NULL_OBS`: a null tracer and null
metrics registry whose every operation is a shared no-op, so the disabled
path costs one branch (or one inert call) per site.  Enabling
observability is behaviour-neutral by construction — nothing here touches
the simulation clocks, the RNG streams, or any cache fingerprint — and
the golden-trace suite in ``tests/obs`` regression-locks both the span
structure and that neutrality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import (
    TraceFormatError,
    chrome_trace,
    flame_summary,
    metrics_document,
    parse_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.golden import canonical_metrics, canonical_obs, canonical_span_tree
from repro.obs.metrics import (
    DEFAULT_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.ring import RingBuffer
from repro.obs.tracer import NullTracer, Span, SpanRecord, TraceError, Tracer


@dataclass(slots=True)
class Obs:
    """The bundle instrumented code receives: one tracer + one registry."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls, capacity: int = 65536, clock=None) -> "Obs":
        return cls(tracer=Tracer(capacity=capacity, clock=clock), metrics=MetricsRegistry())

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    # -- self-overhead accounting -----------------------------------------

    def self_cost_s(self) -> float:
        """Measured tracer bookkeeping + estimated metrics cost, seconds."""
        return self.tracer.self_cost_s + self.metrics.estimated_cost_s()

    def overhead_fraction(self, wall_s: float) -> float:
        """Observability self-cost as a fraction of run wall time."""
        if wall_s <= 0:
            return 0.0
        return self.self_cost_s() / wall_s

    def overhead_report(self, wall_s: float) -> dict:
        """The paper-style budget line: who cost what, against what wall."""
        tracer_s = self.tracer.self_cost_s
        metrics_s = self.metrics.estimated_cost_s()
        return {
            "wall_s": wall_s,
            "tracer_self_s": tracer_s,
            "metrics_estimated_s": metrics_s,
            "metric_ops": self.metrics.op_count(),
            "spans": len(self.tracer.buffer),
            "dropped_spans": self.tracer.buffer.dropped,
            "overhead_fraction": (tracer_s + metrics_s) / wall_s if wall_s > 0 else 0.0,
        }


#: process-wide disabled bundle; the default for every ``obs=`` parameter
NULL_OBS = Obs(tracer=NullTracer(), metrics=NullMetricsRegistry())


__all__ = [
    "DEFAULT_BUCKETS_US",
    "NULL_OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "Obs",
    "RingBuffer",
    "Span",
    "SpanRecord",
    "TraceError",
    "TraceFormatError",
    "Tracer",
    "canonical_metrics",
    "canonical_obs",
    "canonical_span_tree",
    "chrome_trace",
    "flame_summary",
    "metrics_document",
    "parse_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
