"""Fixed-capacity ring buffer for completed span records.

The tracer appends every completed span here; when the buffer is full the
oldest record is overwritten (and counted) rather than growing without
bound — a long run keeps its *recent* trace, exactly like a flight
recorder.  Iteration yields surviving records oldest-first.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Append-only overwrite-oldest buffer."""

    __slots__ = ("capacity", "dropped", "_items", "_start")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: records overwritten because the buffer was full
        self.dropped = 0
        self._items: list[T] = []
        self._start = 0  # index of the oldest record once wrapped

    def append(self, item: T) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        self._items[self._start] = item
        self._start = (self._start + 1) % self.capacity
        self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        items, start = self._items, self._start
        for i in range(len(items)):
            yield items[(start + i) % len(items)]

    def to_list(self) -> list[T]:
        return list(self)

    def clear(self) -> None:
        self._items.clear()
        self._start = 0
        self.dropped = 0
