"""Matrix export and summary helpers."""

from __future__ import annotations

import numpy as np


def matrix_to_csv(matrix: np.ndarray, path: str, window_us: float = 200_000.0) -> None:
    """Write a performance matrix as CSV: header = window start seconds."""
    n_ranks, n_windows = matrix.shape
    with open(path, "w", encoding="utf-8") as fh:
        header = ",".join(f"{w * window_us / 1e6:.3f}" for w in range(n_windows))
        fh.write("rank," + header + "\n")
        for rank in range(n_ranks):
            row = ",".join(
                f"{v:.4f}" if np.isfinite(v) else "" for v in matrix[rank]
            )
            fh.write(f"{rank},{row}\n")


def summarize_matrix(matrix: np.ndarray) -> dict[str, float]:
    """Scalar facts about a performance matrix (for reports and tests)."""
    finite = matrix[np.isfinite(matrix)]
    if finite.size == 0:
        return {"cells": 0, "mean": float("nan"), "min": float("nan"), "low_fraction": 0.0}
    return {
        "cells": int(finite.size),
        "mean": float(finite.mean()),
        "min": float(finite.min()),
        "low_fraction": float((finite < 0.7).mean()),
    }
