"""Visualizer (workflow step 8, §5.5).

No plotting library is assumed: performance matrices are rendered as
ASCII heatmaps for the terminal, exported as CSV series, and written as
PGM images (grayscale; white = degraded, matching the paper's "white
blocks" metaphor).
"""

from repro.viz.heatmap import ascii_heatmap, write_pgm
from repro.viz.matrix import matrix_to_csv, summarize_matrix
from repro.viz.figures import duration_histogram, interval_histogram, series_to_csv
from repro.viz.svg import histogram_to_svg, matrix_to_svg

__all__ = [
    "ascii_heatmap",
    "duration_histogram",
    "histogram_to_svg",
    "interval_histogram",
    "matrix_to_csv",
    "matrix_to_svg",
    "series_to_csv",
    "summarize_matrix",
    "write_pgm",
]
