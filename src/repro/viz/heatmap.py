"""Heatmap rendering of performance matrices."""

from __future__ import annotations

import numpy as np

#: dark-to-light ramp: best performance renders dark (the paper's deep
#: blue), degraded performance renders light ("white blocks").
_RAMP = "@%#*+=-:. "


def ascii_heatmap(
    matrix: np.ndarray,
    max_rows: int = 32,
    max_cols: int = 100,
    lo: float = 0.5,
    hi: float = 1.0,
) -> str:
    """Render a (ranks, windows) performance matrix as terminal art.

    Values at ``hi`` (best) map to the densest glyph, values at or below
    ``lo`` to a space; NaN renders as ``'?'``.  Large matrices are
    downsampled by block-averaging.
    """
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    ds = _downsample(matrix, max_rows, max_cols)
    span = max(hi - lo, 1e-9)
    lines = []
    for row in ds:
        chars = []
        for value in row:
            if not np.isfinite(value):
                chars.append("?")
                continue
            frac = (value - lo) / span
            idx = int((1.0 - min(max(frac, 0.0), 1.0)) * (len(_RAMP) - 1))
            chars.append(_RAMP[idx])
        lines.append("".join(chars))
    return "\n".join(lines)


def _downsample(matrix: np.ndarray, max_rows: int, max_cols: int) -> np.ndarray:
    rows, cols = matrix.shape
    r_step = max(1, int(np.ceil(rows / max_rows)))
    c_step = max(1, int(np.ceil(cols / max_cols)))
    out_rows = int(np.ceil(rows / r_step))
    out_cols = int(np.ceil(cols / c_step))
    out = np.full((out_rows, out_cols), np.nan)
    for i in range(out_rows):
        for j in range(out_cols):
            block = matrix[i * r_step : (i + 1) * r_step, j * c_step : (j + 1) * c_step]
            if np.isfinite(block).any():
                out[i, j] = np.nanmean(block)
    return out


def write_pgm(matrix: np.ndarray, path: str, lo: float = 0.5, hi: float = 1.0) -> None:
    """Write the matrix as a binary PGM image.

    Bright pixels are *degraded* cells (the paper's white blocks); NaN
    cells render mid-gray.
    """
    span = max(hi - lo, 1e-9)
    clipped = np.nan_to_num((matrix - lo) / span, nan=0.5)
    gray = np.where(
        np.isfinite(matrix),
        (255 * (1.0 - np.clip(clipped, 0.0, 1.0))).astype(np.uint8),
        np.uint8(128),
    )
    header = f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode()
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(gray.tobytes())
