"""Dependency-free SVG rendering of performance matrices and histograms.

The PGM/CSV exports cover machine consumption; these produce figures a
human can open in a browser — the closest equivalent to the paper's
matplotlib output available without a plotting library.
"""

from __future__ import annotations

import numpy as np


def _perf_color(value: float, lo: float = 0.5, hi: float = 1.0) -> str:
    """Map performance to the paper's palette: deep blue = best,
    white = degraded to half."""
    if not np.isfinite(value):
        return "#d0d0d0"
    frac = (value - lo) / max(hi - lo, 1e-9)
    frac = min(max(frac, 0.0), 1.0)
    # white (1,1,1) -> deep blue (0.05, 0.15, 0.55)
    r = int(255 * (1.0 - 0.95 * frac))
    g = int(255 * (1.0 - 0.85 * frac))
    b = int(255 * (1.0 - 0.45 * frac))
    return f"#{r:02x}{g:02x}{b:02x}"


def matrix_to_svg(
    matrix: np.ndarray,
    path: str,
    window_us: float = 200_000.0,
    title: str = "",
    cell: int = 6,
    lo: float = 0.5,
    hi: float = 1.0,
) -> None:
    """Write a (ranks x windows) performance matrix as an SVG heat map."""
    n_ranks, n_windows = matrix.shape
    margin_left, margin_top, margin_bottom = 60, 30 if title else 10, 34
    width = margin_left + n_windows * cell + 10
    height = margin_top + n_ranks * cell + margin_bottom

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'font-family="sans-serif" font-size="10">'
    ]
    if title:
        parts.append(f'<text x="{margin_left}" y="18" font-size="12">{_esc(title)}</text>')
    for r in range(n_ranks):
        y = margin_top + r * cell
        for w in range(n_windows):
            x = margin_left + w * cell
            color = _perf_color(float(matrix[r, w]), lo, hi)
            parts.append(f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" fill="{color}"/>')
    # Axes labels.
    parts.append(
        f'<text x="8" y="{margin_top + n_ranks * cell / 2}" '
        f'transform="rotate(-90 8 {margin_top + n_ranks * cell / 2})">Process ID</text>'
    )
    seconds = n_windows * window_us / 1e6
    parts.append(
        f'<text x="{margin_left}" y="{height - 18}">0 s</text>'
        f'<text x="{margin_left + n_windows * cell - 30}" y="{height - 18}">{seconds:.1f} s</text>'
        f'<text x="{margin_left + n_windows * cell / 2 - 40}" y="{height - 6}">Time progress</text>'
    )
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(parts))


def histogram_to_svg(
    buckets: dict[str, int],
    path: str,
    title: str = "",
    log_scale: bool = True,
    bar_width: int = 70,
    height: int = 220,
) -> None:
    """Write a labelled bar chart (the Fig. 16/17 presentation)."""
    margin = 40
    n = len(buckets)
    width = margin * 2 + n * (bar_width + 14)
    values = list(buckets.values())
    top = max(values + [1])
    scale_top = np.log10(top + 1) if log_scale else float(top)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height + 70}" '
        f'font-family="sans-serif" font-size="11">'
    ]
    if title:
        parts.append(f'<text x="{margin}" y="18" font-size="13">{_esc(title)}</text>')
    base_y = height + 30
    for i, (label, value) in enumerate(buckets.items()):
        x = margin + i * (bar_width + 14)
        magnitude = np.log10(value + 1) if log_scale else float(value)
        bar_h = int(height * magnitude / max(scale_top, 1e-9))
        y = base_y - bar_h
        parts.append(
            f'<rect x="{x}" y="{y}" width="{bar_width}" height="{bar_h}" fill="#2b4b8c"/>'
        )
        parts.append(f'<text x="{x}" y="{base_y + 16}">{_esc(label)}</text>')
        parts.append(f'<text x="{x}" y="{max(y - 4, 12)}">{value}</text>')
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(parts))


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
