"""Figure-data helpers: the histograms and series the paper plots.

These produce the *data* behind Figs. 12 and 15–17; the benches print them
as rows and optionally export CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the paper's duration buckets (Fig. 16), in µs
DURATION_BUCKETS: tuple[tuple[float, float, str], ...] = (
    (0.0, 100.0, "<100us"),
    (100.0, 10_000.0, "100us~10ms"),
    (10_000.0, 1_000_000.0, "10ms~1s"),
    (1_000_000.0, float("inf"), ">1s"),
)

#: the paper's interval buckets (Fig. 17), in µs
INTERVAL_BUCKETS = DURATION_BUCKETS


def duration_histogram(durations_us: np.ndarray) -> dict[str, int]:
    """Bucket sense durations the way Fig. 16 does."""
    return _bucket(durations_us, DURATION_BUCKETS)


def interval_histogram(intervals_us: np.ndarray) -> dict[str, int]:
    """Bucket inter-sense gaps the way Fig. 17 does."""
    return _bucket(intervals_us, INTERVAL_BUCKETS)


def _bucket(values: np.ndarray, buckets) -> dict[str, int]:
    values = np.asarray(values)
    out: dict[str, int] = {}
    for lo, hi, label in buckets:
        out[label] = int(((values >= lo) & (values < hi)).sum())
    return out


@dataclass(slots=True)
class SenseStats:
    """Coverage and frequency of senses (Fig. 15 definitions)."""

    sense_time_us: float
    total_time_us: float
    sense_count: int

    @property
    def coverage(self) -> float:
        """sense-time / total-time."""
        if self.total_time_us <= 0:
            return 0.0
        return self.sense_time_us / self.total_time_us

    @property
    def frequency_mhz(self) -> float:
        """sense-count / total-time, in senses per µs (= MHz)."""
        if self.total_time_us <= 0:
            return 0.0
        return self.sense_count / self.total_time_us


def sense_stats(starts: np.ndarray, ends: np.ndarray, total_time_us: float) -> SenseStats:
    """Compute coverage/frequency from per-sense start/end times.

    Overlaps (nested probes never overlap by construction, but merged
    multi-sensor streams can) are merged before summing sense-time.
    """
    starts = np.asarray(starts)
    ends = np.asarray(ends)
    if starts.size == 0:
        return SenseStats(0.0, total_time_us, 0)
    order = np.argsort(starts)
    starts, ends = starts[order], ends[order]
    merged = 0.0
    cur_start, cur_end = starts[0], ends[0]
    for s, e in zip(starts[1:], ends[1:]):
        if s > cur_end:
            merged += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    merged += cur_end - cur_start
    return SenseStats(sense_time_us=float(merged), total_time_us=total_time_us, sense_count=int(starts.size))


def intervals_between_senses(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Gaps between consecutive senses on one rank."""
    starts = np.asarray(starts)
    ends = np.asarray(ends)
    if starts.size < 2:
        return np.asarray([])
    order = np.argsort(starts)
    starts, ends = starts[order], ends[order]
    gaps = starts[1:] - ends[:-1]
    return gaps[gaps > 0]


def series_to_csv(path: str, columns: dict[str, np.ndarray]) -> None:
    """Write named series as CSV columns (ragged series are padded)."""
    names = list(columns)
    arrays = [np.asarray(columns[n]) for n in names]
    length = max((a.size for a in arrays), default=0)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(names) + "\n")
        for i in range(length):
            row = []
            for arr in arrays:
                row.append(f"{arr[i]:.6g}" if i < arr.size else "")
            fh.write(",".join(row) + "\n")
