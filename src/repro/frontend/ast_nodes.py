"""AST node classes for the mini C-like language.

Every node carries a :class:`~repro.frontend.location.SourceLoc` and a
process-unique integer ``node_id``.  The id is what the rest of the tool
chain uses to refer back to source constructs: IR instructions link to the
node they were lowered from, identified v-sensors name the loop/call node
they wrap, and the instrumenter keys Tick/Tock insertion off node ids.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field

from repro.frontend.location import SourceLoc

_NODE_IDS = itertools.count(1)


def _next_node_id() -> int:
    return next(_NODE_IDS)


@contextlib.contextmanager
def fresh_node_ids(start: int = 1):
    """Number nodes created inside the block from ``start``.

    The parser wraps each translation unit in this, so parsing the same
    source always yields the same node ids — the property that makes
    compilation content-addressable (sensor ids are node ids, and the
    instrumented text embeds them in ``vs_tick(id)`` literals).  Ids still
    never collide *within* one tree; nodes from different trees may share
    ids, which is safe because node equality is identity and every id-keyed
    map in the tool chain is per-tree.
    """
    global _NODE_IDS
    saved = _NODE_IDS
    _NODE_IDS = itertools.count(start)
    try:
        yield
    finally:
        _NODE_IDS = saved


@dataclass(eq=False, slots=True)
class Node:
    """Base class for all AST nodes."""

    loc: SourceLoc
    node_id: int = field(default_factory=_next_node_id, init=False)

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False, slots=True)
class Expr(Node):
    """Base class for expressions."""


@dataclass(eq=False, slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(eq=False, slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(eq=False, slots=True)
class StringLit(Expr):
    value: str = ""


@dataclass(eq=False, slots=True)
class VarRef(Expr):
    name: str = ""


@dataclass(eq=False, slots=True)
class ArrayRef(Expr):
    name: str = ""
    index: Expr | None = None


@dataclass(eq=False, slots=True)
class BinOp(Expr):
    op: str = "+"
    left: Expr | None = None
    right: Expr | None = None


@dataclass(eq=False, slots=True)
class UnaryOp(Expr):
    op: str = "-"
    operand: Expr | None = None


@dataclass(eq=False, slots=True)
class CallExpr(Expr):
    """A direct call ``f(args)`` or an indirect call through a funcptr variable.

    ``callee`` is the spelled name; whether it is a function or a funcptr
    variable is resolved during call-graph construction.
    """

    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False, slots=True)
class AddrOf(Expr):
    """``&f`` — the address of a function, assignable to a funcptr variable."""

    func_name: str = ""


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False, slots=True)
class Stmt(Node):
    """Base class for statements."""


@dataclass(eq=False, slots=True)
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass(eq=False, slots=True)
class VarDecl(Stmt):
    name: str = ""
    var_type: str = "int"  # "int" | "float" | "funcptr"
    array_size: int | None = None
    init: Expr | None = None


@dataclass(eq=False, slots=True)
class Assign(Stmt):
    """``target = value`` where target is a VarRef or ArrayRef."""

    target: Expr | None = None
    value: Expr | None = None


@dataclass(eq=False, slots=True)
class IfStmt(Stmt):
    cond: Expr | None = None
    then_body: Block | None = None
    else_body: Block | None = None


@dataclass(eq=False, slots=True)
class ForStmt(Stmt):
    """``for (init; cond; step) body``.

    ``init`` and ``step`` are single statements (usually assignments) and may
    be ``None``; ``cond`` may be ``None`` for an infinite loop.
    """

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Block | None = None


@dataclass(eq=False, slots=True)
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass(eq=False, slots=True)
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass(eq=False, slots=True)
class BreakStmt(Stmt):
    pass


@dataclass(eq=False, slots=True)
class ContinueStmt(Stmt):
    pass


@dataclass(eq=False, slots=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(eq=False, slots=True)
class Param(Node):
    name: str = ""
    var_type: str = "int"


@dataclass(eq=False, slots=True)
class GlobalVar(Node):
    name: str = ""
    var_type: str = "int"
    array_size: int | None = None
    init: Expr | None = None


@dataclass(eq=False, slots=True)
class FunctionDef(Node):
    name: str = ""
    ret_type: str = "void"
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass(eq=False, slots=True)
class Module(Node):
    """A whole translation unit: globals plus function definitions."""

    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    source: str = ""
    filename: str = "<string>"

    def function(self, name: str) -> FunctionDef:
        """Look up a function by name; raises KeyError if absent."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def has_function(self, name: str) -> bool:
        return any(fn.name == name for fn in self.functions)

    def global_var(self, name: str) -> GlobalVar:
        for gv in self.globals:
            if gv.name == name:
                return gv
        raise KeyError(name)

    def global_names(self) -> set[str]:
        return {gv.name for gv in self.globals}


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_stmts(stmt: Stmt) -> list[Stmt]:
    """Direct child statements of ``stmt`` (not recursive)."""
    if isinstance(stmt, Block):
        return list(stmt.stmts)
    if isinstance(stmt, IfStmt):
        out: list[Stmt] = []
        if stmt.then_body is not None:
            out.append(stmt.then_body)
        if stmt.else_body is not None:
            out.append(stmt.else_body)
        return out
    if isinstance(stmt, ForStmt):
        out = []
        if stmt.init is not None:
            out.append(stmt.init)
        if stmt.step is not None:
            out.append(stmt.step)
        if stmt.body is not None:
            out.append(stmt.body)
        return out
    if isinstance(stmt, WhileStmt):
        return [stmt.body] if stmt.body is not None else []
    return []


def walk_stmts(root: Stmt):
    """Yield ``root`` and every statement nested below it, preorder."""
    stack = [root]
    while stack:
        stmt = stack.pop()
        yield stmt
        children = child_stmts(stmt)
        stack.extend(reversed(children))


def child_exprs(node: Node) -> list[Expr]:
    """Direct child expressions of a statement or expression node."""
    if isinstance(node, (Assign,)):
        return [e for e in (node.target, node.value) if e is not None]
    if isinstance(node, VarDecl):
        return [node.init] if node.init is not None else []
    if isinstance(node, IfStmt):
        return [node.cond] if node.cond is not None else []
    if isinstance(node, (ForStmt, WhileStmt)):
        return [node.cond] if node.cond is not None else []
    if isinstance(node, ReturnStmt):
        return [node.value] if node.value is not None else []
    if isinstance(node, ExprStmt):
        return [node.expr] if node.expr is not None else []
    if isinstance(node, BinOp):
        return [e for e in (node.left, node.right) if e is not None]
    if isinstance(node, UnaryOp):
        return [node.operand] if node.operand is not None else []
    if isinstance(node, CallExpr):
        return list(node.args)
    if isinstance(node, ArrayRef):
        return [node.index] if node.index is not None else []
    return []


def walk_exprs(node: Node):
    """Yield every expression nested in ``node`` (which may be a Stmt), preorder.

    For statements this walks only the expressions of the statement itself,
    not of nested statements.
    """
    stack = list(child_exprs(node))
    if isinstance(node, Expr):
        stack = [node]
    while stack:
        expr = stack.pop()
        yield expr
        stack.extend(reversed(child_exprs(expr)))


def walk_all_exprs(root: Stmt):
    """Yield every expression under ``root`` including nested statements."""
    for stmt in walk_stmts(root):
        yield from walk_exprs(stmt)


def collect_calls(root: Stmt) -> list[CallExpr]:
    """All call expressions anywhere under ``root``."""
    return [e for e in walk_all_exprs(root) if isinstance(e, CallExpr)]


def collect_loops(root: Stmt) -> list[Stmt]:
    """All loop statements (for/while) anywhere under ``root``."""
    return [s for s in walk_stmts(root) if isinstance(s, (ForStmt, WhileStmt))]
