"""Hand-written lexer for the mini C-like language."""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.location import SourceLoc
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPS: dict[str, TokenKind] = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "&": TokenKind.AMP,
}


class _Cursor:
    """Tracks position, line and column while scanning the source text."""

    __slots__ = ("text", "pos", "line", "col", "filename")

    def __init__(self, text: str, filename: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1
        self.filename = filename

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def loc(self) -> SourceLoc:
        return SourceLoc(self.line, self.col, self.filename)

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Tokenize ``source`` into a list of tokens terminated by an EOF token.

    Raises :class:`~repro.errors.LexError` on the first unrecognized
    character.  Line comments (``// ...``) and block comments (``/* ... */``)
    are skipped; block comments may span lines but must be closed.
    """
    cur = _Cursor(source, filename)
    tokens: list[Token] = []
    while True:
        _skip_trivia(cur)
        if cur.at_end:
            tokens.append(Token(TokenKind.EOF, "", cur.loc()))
            return tokens
        tokens.append(_next_token(cur))


def _skip_trivia(cur: _Cursor) -> None:
    """Skip whitespace and comments."""
    while not cur.at_end:
        ch = cur.peek()
        if ch in " \t\r\n":
            cur.advance()
        elif ch == "/" and cur.peek(1) == "/":
            while not cur.at_end and cur.peek() != "\n":
                cur.advance()
        elif ch == "/" and cur.peek(1) == "*":
            open_loc = cur.loc()
            cur.advance(2)
            while not (cur.peek() == "*" and cur.peek(1) == "/"):
                if cur.at_end:
                    raise LexError("unterminated block comment", open_loc.line, open_loc.col)
                cur.advance()
            cur.advance(2)
        else:
            return


def _next_token(cur: _Cursor) -> Token:
    loc = cur.loc()
    ch = cur.peek()

    if ch.isdigit() or (ch == "." and cur.peek(1).isdigit()):
        return _lex_number(cur, loc)
    if ch.isalpha() or ch == "_":
        return _lex_ident(cur, loc)
    if ch == '"':
        return _lex_string(cur, loc)

    two = ch + cur.peek(1)
    if two in _TWO_CHAR_OPS:
        cur.advance(2)
        return Token(_TWO_CHAR_OPS[two], two, loc)
    if ch in _ONE_CHAR_OPS:
        cur.advance()
        return Token(_ONE_CHAR_OPS[ch], ch, loc)

    raise LexError(f"unexpected character {ch!r}", loc.line, loc.col)


def _lex_number(cur: _Cursor, loc: SourceLoc) -> Token:
    start = cur.pos
    is_float = False
    while cur.peek().isdigit():
        cur.advance()
    if cur.peek() == "." and cur.peek(1).isdigit():
        is_float = True
        cur.advance()
        while cur.peek().isdigit():
            cur.advance()
    if cur.peek() in "eE" and (cur.peek(1).isdigit() or (cur.peek(1) in "+-" and cur.peek(2).isdigit())):
        is_float = True
        cur.advance()
        if cur.peek() in "+-":
            cur.advance()
        while cur.peek().isdigit():
            cur.advance()
    text = cur.text[start : cur.pos]
    kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
    return Token(kind, text, loc)


def _lex_ident(cur: _Cursor, loc: SourceLoc) -> Token:
    start = cur.pos
    while cur.peek().isalnum() or cur.peek() == "_":
        cur.advance()
    text = cur.text[start : cur.pos]
    kind = KEYWORDS.get(text, TokenKind.IDENT)
    return Token(kind, text, loc)


def _lex_string(cur: _Cursor, loc: SourceLoc) -> Token:
    cur.advance()  # opening quote
    chars: list[str] = []
    while True:
        if cur.at_end or cur.peek() == "\n":
            raise LexError("unterminated string literal", loc.line, loc.col)
        ch = cur.peek()
        if ch == '"':
            cur.advance()
            return Token(TokenKind.STRING_LIT, "".join(chars), loc)
        if ch == "\\":
            cur.advance()
            esc = cur.peek()
            mapped = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc)
            if mapped is None:
                raise LexError(f"bad escape \\{esc}", cur.line, cur.col)
            chars.append(mapped)
            cur.advance()
        else:
            chars.append(ch)
            cur.advance()
