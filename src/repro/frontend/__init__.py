"""Frontend for the mini C-like language used by the vSensor reproduction.

The paper runs its identification pass over LLVM-IR produced from C, C++ and
Fortran sources.  This reproduction defines a small C-like language that is
rich enough for every analysis in the paper to be non-trivial (nested loops,
branches, function calls, globals, arrays, MPI/libc intrinsics, function
pointers, recursion) while staying simple enough to parse with a hand-written
recursive-descent parser.

Public surface:

* :func:`parse_source` / :func:`parse_file` — text to :class:`~repro.frontend.ast_nodes.Module`.
* :mod:`repro.frontend.ast_nodes` — the AST node classes.
* :func:`~repro.frontend.pretty.format_module` — AST back to source text.
"""

from repro.frontend.ast_nodes import (
    AddrOf,
    ArrayRef,
    Assign,
    BinOp,
    Block,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    ExprStmt,
    FloatLit,
    ForStmt,
    FunctionDef,
    GlobalVar,
    IfStmt,
    IntLit,
    Module,
    Param,
    ReturnStmt,
    StringLit,
    UnaryOp,
    VarDecl,
    VarRef,
    WhileStmt,
)
from repro.frontend.lexer import tokenize
from repro.frontend.location import SourceLoc
from repro.frontend.parser import parse_file, parse_source
from repro.frontend.pretty import format_module

__all__ = [
    "AddrOf",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Block",
    "BreakStmt",
    "CallExpr",
    "ContinueStmt",
    "ExprStmt",
    "FloatLit",
    "ForStmt",
    "FunctionDef",
    "GlobalVar",
    "IfStmt",
    "IntLit",
    "Module",
    "Param",
    "ReturnStmt",
    "SourceLoc",
    "StringLit",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "WhileStmt",
    "format_module",
    "parse_file",
    "parse_source",
    "tokenize",
]
