"""Recursive-descent parser for the mini C-like language.

Grammar (EBNF sketch)::

    module     := (global_decl | function)*
    global_decl:= "global" type IDENT ("[" INT "]")? ("=" expr)? ";"
    function   := type IDENT "(" params? ")" block
    params     := type IDENT ("," type IDENT)*
    block      := "{" stmt* "}"
    stmt       := var_decl | if | for | while | return | break | continue
                | block | assign_or_expr ";"
    var_decl   := type IDENT ("[" INT "]")? ("=" expr)? ";"
    if         := "if" "(" expr ")" stmt ("else" stmt)?
    for        := "for" "(" simple? ";" expr? ";" simple? ")" stmt
    while      := "while" "(" expr ")" stmt
    simple     := lvalue "=" expr | call
    expr       := or ( "||" or )*              (usual C precedence below)

Expression precedence, loosest to tightest:
``||``, ``&&``, equality, relational, additive, multiplicative, unary,
postfix (call / index), primary.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind as K

_TYPE_KINDS = (K.KW_INT, K.KW_FLOAT, K.KW_VOID, K.KW_FUNCPTR)


class Parser:
    """Parses one translation unit.  Use :func:`parse_source` instead of
    instantiating directly unless you need token-level control."""

    def __init__(self, tokens: list[Token], source: str, filename: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source
        self._filename = filename

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not K.EOF:
            self._pos += 1
        return tok

    def _check(self, kind: K) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: K) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: K, what: str) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {what}, found {tok.kind.value!r} ({tok.text!r})",
                tok.loc.line,
                tok.loc.col,
            )
        return self._advance()

    # -- top level ----------------------------------------------------------

    def parse_module(self) -> A.Module:
        mod = A.Module(
            loc=self._peek().loc,
            globals=[],
            functions=[],
            source=self._source,
            filename=self._filename,
        )
        while not self._check(K.EOF):
            if self._check(K.KW_GLOBAL):
                mod.globals.append(self._parse_global())
            else:
                mod.functions.append(self._parse_function())
        return mod

    def _parse_type(self) -> str:
        tok = self._peek()
        if tok.kind not in _TYPE_KINDS:
            raise ParseError(
                f"expected a type, found {tok.text!r}", tok.loc.line, tok.loc.col
            )
        self._advance()
        return tok.text

    def _parse_global(self) -> A.GlobalVar:
        loc = self._expect(K.KW_GLOBAL, "'global'").loc
        var_type = self._parse_type()
        name = self._expect(K.IDENT, "global variable name").text
        array_size: int | None = None
        if self._match(K.LBRACKET):
            size_tok = self._expect(K.INT_LIT, "array size")
            array_size = int(size_tok.text)
            self._expect(K.RBRACKET, "']'")
        init: A.Expr | None = None
        if self._match(K.ASSIGN):
            init = self._parse_expr()
        self._expect(K.SEMI, "';'")
        return A.GlobalVar(loc=loc, name=name, var_type=var_type, array_size=array_size, init=init)

    def _parse_function(self) -> A.FunctionDef:
        loc = self._peek().loc
        ret_type = self._parse_type()
        name = self._expect(K.IDENT, "function name").text
        self._expect(K.LPAREN, "'('")
        params: list[A.Param] = []
        if not self._check(K.RPAREN):
            while True:
                ploc = self._peek().loc
                ptype = self._parse_type()
                pname = self._expect(K.IDENT, "parameter name").text
                params.append(A.Param(loc=ploc, name=pname, var_type=ptype))
                if not self._match(K.COMMA):
                    break
        self._expect(K.RPAREN, "')'")
        body = self._parse_block()
        return A.FunctionDef(loc=loc, name=name, ret_type=ret_type, params=params, body=body)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> A.Block:
        loc = self._expect(K.LBRACE, "'{'").loc
        stmts: list[A.Stmt] = []
        while not self._check(K.RBRACE):
            if self._check(K.EOF):
                raise ParseError("unterminated block", loc.line, loc.col)
            stmts.append(self._parse_stmt())
        self._expect(K.RBRACE, "'}'")
        return A.Block(loc=loc, stmts=stmts)

    def _parse_stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind in (K.KW_INT, K.KW_FLOAT, K.KW_FUNCPTR):
            return self._parse_var_decl()
        if tok.kind is K.KW_IF:
            return self._parse_if()
        if tok.kind is K.KW_FOR:
            return self._parse_for()
        if tok.kind is K.KW_WHILE:
            return self._parse_while()
        if tok.kind is K.KW_RETURN:
            self._advance()
            value = None if self._check(K.SEMI) else self._parse_expr()
            self._expect(K.SEMI, "';'")
            return A.ReturnStmt(loc=tok.loc, value=value)
        if tok.kind is K.KW_BREAK:
            self._advance()
            self._expect(K.SEMI, "';'")
            return A.BreakStmt(loc=tok.loc)
        if tok.kind is K.KW_CONTINUE:
            self._advance()
            self._expect(K.SEMI, "';'")
            return A.ContinueStmt(loc=tok.loc)
        if tok.kind is K.LBRACE:
            return self._parse_block()
        stmt = self._parse_simple_stmt()
        self._expect(K.SEMI, "';'")
        return stmt

    def _parse_var_decl(self) -> A.VarDecl:
        loc = self._peek().loc
        var_type = self._parse_type()
        name = self._expect(K.IDENT, "variable name").text
        array_size: int | None = None
        if self._match(K.LBRACKET):
            size_tok = self._expect(K.INT_LIT, "array size")
            array_size = int(size_tok.text)
            self._expect(K.RBRACKET, "']'")
        init: A.Expr | None = None
        if self._match(K.ASSIGN):
            init = self._parse_expr()
        self._expect(K.SEMI, "';'")
        return A.VarDecl(loc=loc, name=name, var_type=var_type, array_size=array_size, init=init)

    def _parse_if(self) -> A.IfStmt:
        loc = self._expect(K.KW_IF, "'if'").loc
        self._expect(K.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(K.RPAREN, "')'")
        then_body = self._stmt_as_block(self._parse_stmt())
        else_body: A.Block | None = None
        if self._match(K.KW_ELSE):
            else_body = self._stmt_as_block(self._parse_stmt())
        return A.IfStmt(loc=loc, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_for(self) -> A.ForStmt:
        loc = self._expect(K.KW_FOR, "'for'").loc
        self._expect(K.LPAREN, "'('")
        init = None if self._check(K.SEMI) else self._parse_simple_stmt()
        self._expect(K.SEMI, "';'")
        cond = None if self._check(K.SEMI) else self._parse_expr()
        self._expect(K.SEMI, "';'")
        step = None if self._check(K.RPAREN) else self._parse_simple_stmt()
        self._expect(K.RPAREN, "')'")
        body = self._stmt_as_block(self._parse_stmt())
        return A.ForStmt(loc=loc, init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> A.WhileStmt:
        loc = self._expect(K.KW_WHILE, "'while'").loc
        self._expect(K.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(K.RPAREN, "')'")
        body = self._stmt_as_block(self._parse_stmt())
        return A.WhileStmt(loc=loc, cond=cond, body=body)

    def _stmt_as_block(self, stmt: A.Stmt) -> A.Block:
        """Wrap a single statement in a Block so loop/if bodies are uniform."""
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block(loc=stmt.loc, stmts=[stmt])

    def _parse_simple_stmt(self) -> A.Stmt:
        """An assignment or a bare expression (usually a call)."""
        loc = self._peek().loc
        expr = self._parse_expr()
        if self._match(K.ASSIGN):
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError("assignment target must be a variable or array element", loc.line, loc.col)
            value = self._parse_expr()
            return A.Assign(loc=loc, target=expr, value=value)
        return A.ExprStmt(loc=loc, expr=expr)

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self._check(K.OR):
            loc = self._advance().loc
            right = self._parse_and()
            left = A.BinOp(loc=loc, op="||", left=left, right=right)
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_equality()
        while self._check(K.AND):
            loc = self._advance().loc
            right = self._parse_equality()
            left = A.BinOp(loc=loc, op="&&", left=left, right=right)
        return left

    def _parse_equality(self) -> A.Expr:
        left = self._parse_relational()
        while self._peek().kind in (K.EQ, K.NE):
            tok = self._advance()
            right = self._parse_relational()
            left = A.BinOp(loc=tok.loc, op=tok.text, left=left, right=right)
        return left

    def _parse_relational(self) -> A.Expr:
        left = self._parse_additive()
        while self._peek().kind in (K.LT, K.LE, K.GT, K.GE):
            tok = self._advance()
            right = self._parse_additive()
            left = A.BinOp(loc=tok.loc, op=tok.text, left=left, right=right)
        return left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (K.PLUS, K.MINUS):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = A.BinOp(loc=tok.loc, op=tok.text, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self._peek().kind in (K.STAR, K.SLASH, K.PERCENT):
            tok = self._advance()
            right = self._parse_unary()
            left = A.BinOp(loc=tok.loc, op=tok.text, left=left, right=right)
        return left

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is K.MINUS:
            self._advance()
            return A.UnaryOp(loc=tok.loc, op="-", operand=self._parse_unary())
        if tok.kind is K.NOT:
            self._advance()
            return A.UnaryOp(loc=tok.loc, op="!", operand=self._parse_unary())
        if tok.kind is K.AMP:
            self._advance()
            name = self._expect(K.IDENT, "function name after '&'").text
            return A.AddrOf(loc=tok.loc, func_name=name)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(K.LPAREN) and isinstance(expr, A.VarRef):
                loc = self._advance().loc
                args: list[A.Expr] = []
                if not self._check(K.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if not self._match(K.COMMA):
                            break
                self._expect(K.RPAREN, "')'")
                expr = A.CallExpr(loc=loc, callee=expr.name, args=args)
            elif self._check(K.LBRACKET) and isinstance(expr, A.VarRef):
                self._advance()
                index = self._parse_expr()
                self._expect(K.RBRACKET, "']'")
                expr = A.ArrayRef(loc=expr.loc, name=expr.name, index=index)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is K.INT_LIT:
            self._advance()
            return A.IntLit(loc=tok.loc, value=int(tok.text))
        if tok.kind is K.FLOAT_LIT:
            self._advance()
            return A.FloatLit(loc=tok.loc, value=float(tok.text))
        if tok.kind is K.STRING_LIT:
            self._advance()
            return A.StringLit(loc=tok.loc, value=tok.text)
        if tok.kind is K.IDENT:
            self._advance()
            return A.VarRef(loc=tok.loc, name=tok.text)
        if tok.kind is K.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(K.RPAREN, "')'")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc.line, tok.loc.col)


def parse_source(source: str, filename: str = "<string>") -> A.Module:
    """Parse program text into a :class:`~repro.frontend.ast_nodes.Module`.

    Node ids are numbered from 1 per translation unit, so parsing the same
    text twice yields identical ids — compilation outputs (sensor ids,
    instrumented source) are deterministic and therefore cacheable.
    """
    tokens = tokenize(source, filename)
    with A.fresh_node_ids():
        return Parser(tokens, source, filename).parse_module()


def parse_file(path: str) -> A.Module:
    """Parse the program in the file at ``path``."""
    with open(path, encoding="utf-8") as fh:
        return parse_source(fh.read(), filename=path)
