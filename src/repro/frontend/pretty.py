"""Pretty-printer: AST back to source text.

Used by the instrumenter to emit the *modified source* (workflow step 4→5):
after Tick/Tock calls are spliced into the AST, :func:`format_module`
regenerates compilable source text.  The printer round-trips: parsing its
output yields a structurally identical module (property-tested).
"""

from __future__ import annotations

from repro.frontend import ast_nodes as A

_INDENT = "    "


def format_module(mod: A.Module) -> str:
    """Render a module as source text."""
    parts: list[str] = []
    for gv in mod.globals:
        parts.append(_format_global(gv))
    if mod.globals and mod.functions:
        parts.append("")
    for idx, fn in enumerate(mod.functions):
        if idx:
            parts.append("")
        parts.append(format_function(fn))
    return "\n".join(parts) + "\n"


def _format_global(gv: A.GlobalVar) -> str:
    decl = f"global {gv.var_type} {gv.name}"
    if gv.array_size is not None:
        decl += f"[{gv.array_size}]"
    if gv.init is not None:
        decl += f" = {format_expr(gv.init)}"
    return decl + ";"


def format_function(fn: A.FunctionDef) -> str:
    params = ", ".join(f"{p.var_type} {p.name}" for p in fn.params)
    header = f"{fn.ret_type} {fn.name}({params})"
    body = _format_block(fn.body, 0) if fn.body is not None else "{\n}"
    return f"{header} {body}"


def _format_block(block: A.Block, depth: int) -> str:
    inner = _INDENT * (depth + 1)
    lines = ["{"]
    for stmt in block.stmts:
        rendered = format_stmt(stmt, depth + 1).splitlines()
        # Only the first line needs the block indent; continuation lines of
        # nested constructs already carry absolute indentation.
        for i, line in enumerate(rendered):
            lines.append(inner + line if i == 0 else line)
    lines.append(_INDENT * depth + "}")
    return "\n".join(lines)


def format_stmt(stmt: A.Stmt, depth: int = 0) -> str:
    """Render one statement (without leading indent on the first line)."""
    if isinstance(stmt, A.Block):
        return _format_block(stmt, depth)
    if isinstance(stmt, A.VarDecl):
        decl = f"{stmt.var_type} {stmt.name}"
        if stmt.array_size is not None:
            decl += f"[{stmt.array_size}]"
        if stmt.init is not None:
            decl += f" = {format_expr(stmt.init)}"
        return decl + ";"
    if isinstance(stmt, A.Assign):
        return f"{format_expr(stmt.target)} = {format_expr(stmt.value)};"
    if isinstance(stmt, A.IfStmt):
        text = f"if ({format_expr(stmt.cond)}) {_format_block(stmt.then_body, depth)}"
        if stmt.else_body is not None:
            text += f" else {_format_block(stmt.else_body, depth)}"
        return text
    if isinstance(stmt, A.ForStmt):
        init = _format_inline(stmt.init)
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        step = _format_inline(stmt.step)
        return f"for ({init}; {cond}; {step}) {_format_block(stmt.body, depth)}"
    if isinstance(stmt, A.WhileStmt):
        return f"while ({format_expr(stmt.cond)}) {_format_block(stmt.body, depth)}"
    if isinstance(stmt, A.ReturnStmt):
        if stmt.value is None:
            return "return;"
        return f"return {format_expr(stmt.value)};"
    if isinstance(stmt, A.BreakStmt):
        return "break;"
    if isinstance(stmt, A.ContinueStmt):
        return "continue;"
    if isinstance(stmt, A.ExprStmt):
        return f"{format_expr(stmt.expr)};"
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def _format_inline(stmt: A.Stmt | None) -> str:
    """Render a for-header init/step statement without its trailing ';'."""
    if stmt is None:
        return ""
    text = format_stmt(stmt, 0)
    return text[:-1] if text.endswith(";") else text


_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def format_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render one expression, adding parentheses only where needed."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, A.StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, A.VarRef):
        return expr.name
    if isinstance(expr, A.ArrayRef):
        return f"{expr.name}[{format_expr(expr.index)}]"
    if isinstance(expr, A.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, prec)
        right = format_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, A.UnaryOp):
        inner = format_expr(expr.operand, 7)
        return f"{expr.op}{inner}"
    if isinstance(expr, A.CallExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, A.AddrOf):
        return f"&{expr.func_name}"
    raise TypeError(f"unknown expression {type(expr).__name__}")
