"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.location import SourceLoc


class TokenKind(enum.Enum):
    """All lexical categories of the mini language."""

    # Literals / identifiers
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    STRING_LIT = "string_lit"
    IDENT = "ident"

    # Keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_FUNCPTR = "funcptr"
    KW_GLOBAL = "global"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","

    # Operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    NOT = "!"
    AMP = "&"

    EOF = "eof"


#: Reserved words mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "funcptr": TokenKind.KW_FUNCPTR,
    "global": TokenKind.KW_GLOBAL,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexed token with its spelling and location."""

    kind: TokenKind
    text: str
    loc: SourceLoc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.loc})"
