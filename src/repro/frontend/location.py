"""Source locations attached to tokens and AST nodes.

Locations power step 3 of the vSensor workflow ("map to source"): every IR
instruction keeps a back-link to the AST node it was lowered from, and every
AST node keeps the file/line/column it was parsed at, so an identified
v-sensor can be reported and instrumented at its source position.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLoc:
    """A position in a source file (1-based line and column)."""

    line: int
    col: int
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"

    @staticmethod
    def unknown() -> "SourceLoc":
        """A placeholder location for synthesized nodes."""
        return SourceLoc(0, 0, "<synthesized>")

    @property
    def is_unknown(self) -> bool:
        return self.line == 0
