"""Control-flow analyses over the IR: CFG orders, dominators, natural loops.

The loop analysis (workflow step 2b) enumerates the natural loops of each
function; every natural loop carries a back-link to the source-level loop
statement it was lowered from, which is how snippet candidates are tied to
source locations.
"""

from repro.cfa.cfg import postorder, reverse_postorder
from repro.cfa.dominators import DominatorTree, compute_dominators
from repro.cfa.loops import LoopInfo, NaturalLoop, find_natural_loops

__all__ = [
    "DominatorTree",
    "LoopInfo",
    "NaturalLoop",
    "compute_dominators",
    "find_natural_loops",
    "postorder",
    "reverse_postorder",
]
