"""CFG traversal orders."""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction


def postorder(fn: IRFunction) -> list[BasicBlock]:
    """Depth-first postorder of the CFG starting at the entry block."""
    visited: set[BasicBlock] = set()
    order: list[BasicBlock] = []

    # Iterative DFS with an explicit stack of (block, successor-iterator).
    entry = fn.entry
    stack: list[tuple[BasicBlock, list[BasicBlock], int]] = [(entry, entry.successors(), 0)]
    visited.add(entry)
    while stack:
        block, succs, idx = stack.pop()
        while idx < len(succs):
            succ = succs[idx]
            idx += 1
            if succ not in visited:
                visited.add(succ)
                stack.append((block, succs, idx))
                stack.append((succ, succ.successors(), 0))
                break
        else:
            order.append(block)
    return order


def reverse_postorder(fn: IRFunction) -> list[BasicBlock]:
    """Reverse postorder — the canonical forward-dataflow iteration order."""
    return list(reversed(postorder(fn)))
