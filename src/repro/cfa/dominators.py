"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction

from repro.cfa.cfg import reverse_postorder


@dataclass(slots=True)
class DominatorTree:
    """Immediate-dominator mapping plus convenience queries."""

    idom: dict[BasicBlock, BasicBlock]
    _rpo_index: dict[BasicBlock, int] = field(default_factory=dict)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        node: BasicBlock | None = b
        while node is not None:
            if node is a:
                return True
            parent = self.idom.get(node)
            node = parent if parent is not node else None
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, block: BasicBlock) -> list[BasicBlock]:
        """All dominators of ``block``, nearest first (starting at block)."""
        out = [block]
        node = block
        while self.idom.get(node) is not None and self.idom[node] is not node:
            node = self.idom[node]
            out.append(node)
        return out


def compute_dominators(fn: IRFunction) -> DominatorTree:
    """Compute the dominator tree of ``fn``'s CFG.

    Uses the Cooper–Harvey–Kennedy "engineered" iterative algorithm: walk
    blocks in reverse postorder intersecting predecessor dominator sets via
    the idom pointers, until a fixed point.
    """
    rpo = reverse_postorder(fn)
    index = {block: i for i, block in enumerate(rpo)}
    entry = fn.entry
    idom: dict[BasicBlock, BasicBlock] = {entry: entry}

    def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
        f1, f2 = b1, b2
        while f1 is not f2:
            while index[f1] > index[f2]:
                f1 = idom[f1]
            while index[f2] > index[f1]:
                f2 = idom[f2]
        return f1

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            preds = [p for p in block.preds if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True

    tree = DominatorTree(idom=idom)
    tree._rpo_index = index
    return tree
