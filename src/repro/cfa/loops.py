"""Natural-loop detection and the loop nesting forest.

A back edge is a CFG edge ``tail -> header`` where ``header`` dominates
``tail``; the natural loop of that edge is ``header`` plus every block that
can reach ``tail`` without passing through ``header``.  Loops sharing a
header are merged.  Nesting is recovered by block-set containment, giving
each loop a depth (out-most loop is depth 0, matching the paper's
``max-depth`` instrumentation parameter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.ast_nodes import ForStmt, Node, WhileStmt
from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction

from repro.cfa.dominators import compute_dominators


@dataclass(eq=False, slots=True)
class NaturalLoop:
    """One natural loop of a function's CFG."""

    header: BasicBlock
    blocks: set[BasicBlock] = field(default_factory=set)
    back_edges: list[tuple[BasicBlock, BasicBlock]] = field(default_factory=list)
    parent: "NaturalLoop | None" = None
    children: list["NaturalLoop"] = field(default_factory=list)
    depth: int = 0

    def __hash__(self) -> int:
        return id(self)

    @property
    def ast_loop(self) -> Node | None:
        """The source loop statement this natural loop was lowered from.

        Recovered from the header's terminator back-link; synthetic loops
        (none are produced by our lowering) would return ``None``.
        """
        term = self.header.terminator
        if term is not None and isinstance(term.ast_node, (ForStmt, WhileStmt)):
            return term.ast_node
        # Fall back to any loop-statement link on header instructions.
        for instr in self.header.instrs:
            if isinstance(instr.ast_node, (ForStmt, WhileStmt)):
                return instr.ast_node
        return None

    def contains_block(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def ancestors(self) -> list["NaturalLoop"]:
        """Enclosing loops, innermost first (excluding self)."""
        out: list[NaturalLoop] = []
        loop = self.parent
        while loop is not None:
            out.append(loop)
            loop = loop.parent
        return out


@dataclass(slots=True)
class LoopInfo:
    """All natural loops of one function, with nesting structure."""

    loops: list[NaturalLoop]
    #: loop headed at each header block
    by_header: dict[BasicBlock, NaturalLoop]

    def top_level(self) -> list[NaturalLoop]:
        return [l for l in self.loops if l.parent is None]

    def innermost_containing(self, block: BasicBlock) -> NaturalLoop | None:
        best: NaturalLoop | None = None
        for loop in self.loops:
            if block in loop.blocks and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def loop_of_ast(self, node: Node) -> NaturalLoop | None:
        """Find the natural loop lowered from AST loop ``node``."""
        for loop in self.loops:
            if loop.ast_loop is node:
                return loop
        return None


def find_natural_loops(fn: IRFunction) -> LoopInfo:
    """Compute the natural loops and nesting forest of ``fn``."""
    dom = compute_dominators(fn)
    loops_by_header: dict[BasicBlock, NaturalLoop] = {}

    for block in fn.blocks:
        for succ in block.successors():
            if dom.dominates(succ, block):
                loop = loops_by_header.setdefault(succ, NaturalLoop(header=succ))
                loop.back_edges.append((block, succ))
                _collect_loop_body(loop, block)

    loops = list(loops_by_header.values())
    _build_nesting(loops)
    return LoopInfo(loops=loops, by_header=loops_by_header)


def _collect_loop_body(loop: NaturalLoop, tail: BasicBlock) -> None:
    """Add all blocks reaching ``tail`` without passing through the header."""
    loop.blocks.add(loop.header)
    stack = [tail]
    while stack:
        block = stack.pop()
        if block in loop.blocks:
            continue
        loop.blocks.add(block)
        stack.extend(block.preds)


def _build_nesting(loops: list[NaturalLoop]) -> None:
    """Derive parent/children/depth from block-set containment."""
    # Sort by size so a loop's parent is the smallest strict superset.
    loops.sort(key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner is not outer and inner.header in outer.blocks and inner.blocks <= outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break
    for loop in loops:
        depth = 0
        node = loop.parent
        while node is not None:
            depth += 1
            node = node.parent
        loop.depth = depth
