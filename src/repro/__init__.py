"""vSensor reproduction: fixed-workload program snippets as performance-variance sensors.

This package reimplements the full vSensor tool chain (PPoPP 2018) in pure
Python:

* :mod:`repro.frontend` — a mini C-like language (lexer / parser / AST).
* :mod:`repro.ir`, :mod:`repro.cfa`, :mod:`repro.dataflow` — a three-address
  IR with CFG, dominators, natural loops and use-def chains: the compiler
  substrate the identification algorithm runs on.
* :mod:`repro.callgraph`, :mod:`repro.sensors` — the paper's core
  contribution: automatic identification of *v-sensors* (snippets with a
  fixed quantity of work over loop iterations and across MPI ranks).
* :mod:`repro.instrument` — v-sensor selection rules and Tick/Tock source
  instrumentation.
* :mod:`repro.sim` — a deterministic discrete-event cluster simulator
  (nodes, network, OS noise, fault injection, MPI, an AST interpreter with
  a virtual clock and simulated PMU) standing in for Tianhe-2.
* :mod:`repro.runtime` — the online detection module: smoothing,
  normalization, history comparison, dynamic rules, analysis server.
* :mod:`repro.workloads`, :mod:`repro.baselines`, :mod:`repro.viz` —
  the evaluation harness: NPB/LULESH/AMG/RAxML analogues, mpiP/ITAC/FWQ
  baselines, and the performance-matrix visualizer.

The one-call entry point is :func:`repro.api.run_vsensor`.
"""

from repro._version import __version__

__all__ = ["__version__"]
