"""ITAC-like event tracer baseline.

Records every MPI and IO event with timestamps.  The per-event wire size
mirrors a binary trace format (type, rank, two timestamps, size, peer).
The point of this baseline is the §6.4 data-volume comparison: full traces
grow with event count, vSensor's slice summaries grow with wall time —
two to three orders of magnitude apart at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.hooks import RuntimeHooks

#: bytes per trace event: u8 type + u32 rank + 2×f64 timestamps + f32 size
#: + u32 peer + u16 op id
EVENT_BYTES = 31


@dataclass(frozen=True, slots=True)
class TraceEvent:
    rank: int
    op: str
    t_begin: float
    t_end: float
    size: float


@dataclass(slots=True)
class TraceStats:
    events: int
    bytes: int
    duration_us: float
    n_ranks: int

    def mb(self) -> float:
        return self.bytes / (1024.0 * 1024.0)

    def rate_kb_per_s_per_rank(self) -> float:
        seconds = self.duration_us / 1e6
        if seconds <= 0 or self.n_ranks == 0:
            return 0.0
        return self.bytes / 1024.0 / seconds / self.n_ranks


class EventTracer(RuntimeHooks):
    """Install on a run to collect a full event trace.

    Like ITAC, the tracer records user-function enter/exit pairs in
    addition to MPI and IO operations — this is what makes real traces
    grow to hundreds of megabytes (``trace_functions=False`` restricts to
    MPI/IO).
    """

    def __init__(self, keep_events: bool = False, trace_functions: bool = True) -> None:
        #: keep_events=False counts volume without storing (large runs)
        self.keep_events = keep_events
        self.wants_function_events = trace_functions
        self.events: list[TraceEvent] = []
        self.event_count = 0
        self._n_ranks = 0
        self._max_t = 0.0
        self._open_calls: dict[tuple[int, str], float] = {}

    def on_program_start(self, n_ranks: int) -> None:
        self._n_ranks = n_ranks

    def _record(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:
        self.event_count += 1
        self._max_t = max(self._max_t, t_end)
        if self.keep_events:
            self.events.append(TraceEvent(rank, op, t_begin, t_end, size))

    def on_mpi_end(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:
        self._record(rank, op, t_begin, t_end, size)

    def on_io(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:
        self._record(rank, op, t_begin, t_end, size)

    def on_func_enter(self, rank: int, name: str, t: float) -> None:
        self._open_calls[(rank, name)] = t

    def on_func_exit(self, rank: int, name: str, t: float) -> None:
        t0 = self._open_calls.pop((rank, name), t)
        self._record(rank, f"func:{name}", t0, t, 0.0)

    def on_program_end(self, rank: int, t: float) -> None:
        self._max_t = max(self._max_t, t)

    def stats(self) -> TraceStats:
        return TraceStats(
            events=self.event_count,
            bytes=self.event_count * EVENT_BYTES,
            duration_us=self._max_t,
            n_ranks=self._n_ranks,
        )
