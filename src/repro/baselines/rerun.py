"""Run-to-run comparison baseline (the Fig. 1 methodology).

Runs the same program repeatedly on machines whose background conditions
differ per submission (a fresh noise seed and per-submission congestion
episodes) and reports the execution-time series — the costly, low-insight
way of noticing variance that motivates the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frontend import parse_source
from repro.sim import Fault, MachineConfig, NetworkDegradation, Simulator
from repro.sim.noise import NoiseConfig


@dataclass(slots=True)
class RerunStudy:
    times_us: list[float] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.times_us)

    @property
    def max_over_min(self) -> float:
        arr = self.as_array()
        if arr.size == 0:
            return 1.0
        return float(arr.max() / max(arr.min(), 1e-9))


def rerun_study(
    source: str,
    n_ranks: int,
    submissions: int = 20,
    base_seed: int = 7,
    congestion_probability: float = 0.35,
    congestion_factor: float = 0.25,
    ranks_per_node: int = 8,
) -> RerunStudy:
    """Submit the job ``submissions`` times on the same (fixed) nodes.

    Each submission sees different ambient conditions: a fresh noise stream
    and, with ``congestion_probability``, a network-congestion episode of
    random placement and length — the "background noise ... caused by the
    system itself or by other jobs" of Fig. 1.
    """
    module = parse_source(source)
    study = RerunStudy()
    rng = np.random.default_rng(base_seed)

    # Pilot run to learn the job's natural duration so that congestion
    # episodes land inside the run regardless of program scale.
    pilot = Simulator(
        module,
        MachineConfig(
            n_ranks=n_ranks,
            ranks_per_node=ranks_per_node,
            seed=base_seed,
            noise=NoiseConfig(),
        ),
    ).run()
    span = max(pilot.total_time, 1.0)

    for submission in range(submissions):
        machine = MachineConfig(
            n_ranks=n_ranks,
            ranks_per_node=ranks_per_node,
            seed=base_seed * 10_000 + submission,
            noise=NoiseConfig(),
        )
        faults: list[Fault] = []
        if rng.random() < congestion_probability:
            t0 = float(rng.uniform(0, 0.6 * span))
            length = float(rng.uniform(0.2 * span, 2.0 * span))
            factor = float(rng.uniform(congestion_factor, 0.6))
            faults.append(NetworkDegradation(t0=t0, t1=t0 + length, factor=factor))
        result = Simulator(module, machine, faults=tuple(faults)).run()
        study.times_us.append(result.total_time)
    return study
