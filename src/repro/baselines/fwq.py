"""External fixed-work-quanta (FWQ) benchmarking baseline.

The pre-vSensor way to sense variance: run a benchmark that executes the
same quantum of work repeatedly and watch its timing.  It works, but is
*intrusive*: co-run with an application it competes for CPU/memory, adding
the very variance it measures.  ``run_fwq_probe`` runs the FWQ kernel on a
machine (optionally modelling application contention as a fault) and
returns the timing series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frontend import parse_source
from repro.sensors import identify_vsensors
from repro.instrument import instrument_module, select_sensors
from repro.sim import Fault, MachineConfig, Simulator
from repro.sim.hooks import RuntimeHooks
from repro.workloads.micro import fwq_source


@dataclass(slots=True)
class FwqObservation:
    """Per-quantum wall times observed by the FWQ probe."""

    times: np.ndarray       # (n_quanta,) durations in µs
    starts: np.ndarray      # (n_quanta,) start timestamps in µs
    total_time: float

    def variance_ratio(self) -> float:
        """max/min of the smoothed series — the FWQ detection signal."""
        if len(self.times) == 0:
            return 1.0
        smoothed = _smooth(self.times, 32)
        return float(smoothed.max() / max(smoothed.min(), 1e-9))


class _QuantumHooks(RuntimeHooks):
    def __init__(self) -> None:
        self.starts: list[float] = []
        self.durations: list[float] = []

    def on_sensor_record(self, rank, sensor_id, t_start, t_end, pmu) -> None:
        if rank == 0:
            self.starts.append(t_start)
            self.durations.append(t_end - t_start)


def run_fwq_probe(
    machine: MachineConfig,
    faults: tuple[Fault, ...] = (),
    iterations: int = 5000,
    quantum_units: float = 10.0,
) -> FwqObservation:
    """Run the FWQ kernel on ``machine`` and record per-quantum timings."""
    module = parse_source(fwq_source(iterations=iterations, quantum_units=quantum_units))
    ident = identify_vsensors(module)
    plan = select_sensors(ident)
    program = instrument_module(module, plan.selected)
    hooks = _QuantumHooks()
    result = Simulator(program.module, machine, faults=faults, sensors=program.sensors).run(hooks)
    return FwqObservation(
        times=np.asarray(hooks.durations),
        starts=np.asarray(hooks.starts),
        total_time=result.total_time,
    )


def _smooth(series: np.ndarray, window: int) -> np.ndarray:
    if len(series) < window:
        return series
    kernel = np.ones(window) / window
    return np.convolve(series, kernel, mode="valid")
