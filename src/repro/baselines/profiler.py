"""mpiP-like profiler baseline.

Accumulates, per rank, the total time spent inside MPI calls; computation
time is everything else.  This is exactly the information Figs. 18–19 plot
— and exactly why profiling cannot localize injected noise: the time
dimension is integrated away, and noise scheduled during communication
waits inflates the *MPI* column, misleading the user toward the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.hooks import RuntimeHooks


@dataclass(slots=True)
class MpiProfile:
    """The profiler's end-of-run output."""

    n_ranks: int
    mpi_time: list[float]
    total_time: list[float]
    call_counts: dict[str, int]

    def comp_time(self) -> list[float]:
        return [t - m for t, m in zip(self.total_time, self.mpi_time)]

    def rows(self) -> list[tuple[int, float, float]]:
        """(rank, computation seconds, MPI seconds) rows, Fig. 18 style."""
        return [
            (rank, (self.total_time[rank] - self.mpi_time[rank]) / 1e6, self.mpi_time[rank] / 1e6)
            for rank in range(self.n_ranks)
        ]


class MpiProfiler(RuntimeHooks):
    """Install on a run to collect an mpiP-style profile."""

    def __init__(self) -> None:
        self._mpi_time: dict[int, float] = {}
        self._finish: dict[int, float] = {}
        self._calls: dict[str, int] = {}
        self._n_ranks = 0

    def on_program_start(self, n_ranks: int) -> None:
        self._n_ranks = n_ranks
        self._mpi_time = {r: 0.0 for r in range(n_ranks)}
        self._finish = {r: 0.0 for r in range(n_ranks)}

    def on_mpi_end(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:
        self._mpi_time[rank] = self._mpi_time.get(rank, 0.0) + (t_end - t_begin)
        self._calls[op] = self._calls.get(op, 0) + 1

    def on_program_end(self, rank: int, t: float) -> None:
        self._finish[rank] = t

    def profile(self) -> MpiProfile:
        return MpiProfile(
            n_ranks=self._n_ranks,
            mpi_time=[self._mpi_time.get(r, 0.0) for r in range(self._n_ranks)],
            total_time=[self._finish.get(r, 0.0) for r in range(self._n_ranks)],
            call_counts=dict(self._calls),
        )
