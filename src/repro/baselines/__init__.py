"""Baseline observation tools the paper compares against (§1, §6.4).

* :mod:`repro.baselines.profiler` — an mpiP-like profiler: per-rank split
  of total time into MPI and computation.  Cannot localize variance in
  time, and injected CPU noise shows up as *MPI* time (Figs. 18–19).
* :mod:`repro.baselines.tracer` — an ITAC-like tracer recording every MPI
  event; accurate but orders of magnitude more data than vSensor (501.5 MB
  vs 8.8 MB in the paper's run).
* :mod:`repro.baselines.fwq` — external fixed-work-quanta benchmarking:
  detects variance but is intrusive when co-run with the application.
* :mod:`repro.baselines.rerun` — run-to-run comparison (Fig. 1).
"""

from repro.baselines.profiler import MpiProfile, MpiProfiler
from repro.baselines.tracer import EventTracer, TraceStats
from repro.baselines.fwq import FwqObservation, run_fwq_probe
from repro.baselines.rerun import RerunStudy, rerun_study

__all__ = [
    "EventTracer",
    "FwqObservation",
    "MpiProfile",
    "MpiProfiler",
    "RerunStudy",
    "TraceStats",
    "rerun_study",
    "run_fwq_probe",
]
