"""Exception hierarchy for the vSensor reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the whole family with one clause.  Compiler-side errors
carry a :class:`~repro.frontend.location.SourceLoc` when one is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """Raised when the lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class LoweringError(ReproError):
    """Raised when an AST construct cannot be lowered to IR."""


class AnalysisError(ReproError):
    """Raised when a static analysis is asked something ill-formed."""


class InstrumentError(ReproError):
    """Raised when instrumentation selection or rewriting fails."""


class SimulationError(ReproError):
    """Raised by the cluster simulator (deadlock, bad config, ...)."""


class RuntimeDetectionError(ReproError):
    """Raised by the online detection module."""


class InterpError(SimulationError):
    """Raised when the interpreter meets an invalid runtime operation."""
