"""Call-graph construction from the IR."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.ir.function import IRFunction
from repro.ir.instructions import CallInstr
from repro.ir.irmodule import IRModule


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call instruction with its resolution status."""

    caller: str
    callee: str
    instr: CallInstr
    #: "defined"  — callee has a body in the module
    #: "extern"   — callee has no body (libc / MPI / unknown)
    #: "indirect" — call through a function pointer (unresolvable)
    kind: str


@dataclass(slots=True)
class CallGraph:
    """The program call graph.

    ``graph`` holds one node per *defined* function; edges carry the list of
    call sites.  Extern and indirect call sites are kept aside — they do not
    produce edges but the sensors layer consults them.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    extern_sites: list[CallSite] = field(default_factory=list)
    indirect_sites: list[CallSite] = field(default_factory=list)
    sites: list[CallSite] = field(default_factory=list)

    def callees_of(self, name: str) -> list[str]:
        return sorted(self.graph.successors(name)) if name in self.graph else []

    def callers_of(self, name: str) -> list[str]:
        return sorted(self.graph.predecessors(name)) if name in self.graph else []

    def sites_in(self, caller: str) -> list[CallSite]:
        return [s for s in self.sites if s.caller == caller]

    def address_taken(self) -> set[str]:
        """Functions whose address is taken (potential indirect targets)."""
        return set(self.graph.graph.get("address_taken", set()))


def build_call_graph(module: IRModule) -> CallGraph:
    """Build the call graph of ``module``.

    Every defined function becomes a node even if never called.  Calls to
    names without a definition are recorded as extern sites; indirect calls
    (through funcptr variables) are recorded separately — the paper removes
    them from the graph because their targets cannot be identified at
    compile time.
    """
    cg = CallGraph()
    address_taken: set[str] = set()
    for name in module.functions:
        cg.graph.add_node(name)

    for fn in module.functions.values():
        for instr in fn.instructions():
            from repro.ir.instructions import AddrOfInstr

            if isinstance(instr, AddrOfInstr):
                address_taken.add(instr.func_name)
            if not isinstance(instr, CallInstr):
                continue
            if instr.is_indirect:
                site = CallSite(caller=fn.name, callee=instr.callee, instr=instr, kind="indirect")
                cg.indirect_sites.append(site)
            elif module.has_function(instr.callee):
                site = CallSite(caller=fn.name, callee=instr.callee, instr=instr, kind="defined")
                if cg.graph.has_edge(fn.name, instr.callee):
                    cg.graph.edges[fn.name, instr.callee]["sites"].append(site)
                else:
                    cg.graph.add_edge(fn.name, instr.callee, sites=[site])
            else:
                site = CallSite(caller=fn.name, callee=instr.callee, instr=instr, kind="extern")
                cg.extern_sites.append(site)
            cg.sites.append(site)

    cg.graph.graph["address_taken"] = address_taken
    return cg
