"""Program call graph: construction, preprocessing, and analysis order.

Implements workflow step 2a (Fig. 10 of the paper): build the call graph,
remove recursion cycles and calls through function pointers, then
topologically sort so callees are analyzed before callers (bottom-up).
"""

from repro.callgraph.graph import CallGraph, CallSite, build_call_graph
from repro.callgraph.preprocess import PreprocessResult, preprocess_call_graph

__all__ = [
    "CallGraph",
    "CallSite",
    "PreprocessResult",
    "build_call_graph",
    "preprocess_call_graph",
]
