"""Call-graph preprocessing (Fig. 10): prune cycles and function pointers,
then produce the bottom-up analysis order.

Recursive invocations create cycles that prevent a topological sort, so
every edge participating in a strongly connected component of size > 1 (or a
self-loop) is removed and the functions involved are marked *recursive*.
Functions whose address is taken may be reached through pointers the
analysis cannot see, so they are marked *pointer-targets*.  Both groups are
treated as never-fixed-workload by the sensors layer (a conservative
policy: it can miss sensors, never fabricate them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.callgraph.graph import CallGraph


@dataclass(slots=True)
class PreprocessResult:
    """Pruned graph plus the bottom-up (callee-first) analysis order."""

    pruned: nx.DiGraph
    order: list[str]
    recursive_functions: set[str] = field(default_factory=set)
    pointer_targets: set[str] = field(default_factory=set)
    removed_edges: list[tuple[str, str]] = field(default_factory=list)

    def never_fixed(self) -> set[str]:
        """Functions the sensors layer must treat as never-fixed workload."""
        return self.recursive_functions | self.pointer_targets


def preprocess_call_graph(cg: CallGraph) -> PreprocessResult:
    """Remove cycles and pointer targets; return callee-first order."""
    pruned = cg.graph.copy()
    recursive: set[str] = set()
    removed: list[tuple[str, str]] = []

    # Self-recursion.
    for name in list(pruned.nodes):
        if pruned.has_edge(name, name):
            pruned.remove_edge(name, name)
            recursive.add(name)
            removed.append((name, name))

    # Mutual recursion: break every edge inside a non-trivial SCC.
    for scc in list(nx.strongly_connected_components(pruned)):
        if len(scc) <= 1:
            continue
        recursive |= set(scc)
        for u in scc:
            for v in list(pruned.successors(u)):
                if v in scc:
                    pruned.remove_edge(u, v)
                    removed.append((u, v))

    pointer_targets = cg.address_taken()

    # Callee-first order = reverse of a topological order of the call graph.
    order = list(reversed(list(nx.topological_sort(pruned))))
    return PreprocessResult(
        pruned=pruned,
        order=order,
        recursive_functions=recursive,
        pointer_targets=pointer_targets,
        removed_edges=removed,
    )
