"""IR modules: lowered functions plus global-variable metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.ast_nodes import Module
from repro.ir.function import IRFunction


@dataclass(eq=False, slots=True)
class IRModule:
    """A lowered translation unit."""

    functions: dict[str, IRFunction] = field(default_factory=dict)
    #: global name -> array size (None for scalars)
    globals: dict[str, int | None] = field(default_factory=dict)
    ast: Module | None = None

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def is_global(self, name: str) -> bool:
        return name in self.globals
