"""IR value and instruction classes.

Design notes
------------
* Expression temporaries live in virtual registers (``Reg``); each register
  is written by exactly one instruction (single static assignment within the
  function by construction — there are no phi nodes because named variables
  go through memory).
* Named variables (locals, parameters, globals, arrays) are memory
  locations accessed with ``Load``/``Store``/``LoadElem``/``StoreElem``.
  Reaching-definition analysis and the use–define chains the paper's
  dependency propagation relies on are computed over these memory accesses.
* Every instruction records ``ast_node`` — the frontend node it was lowered
  from.  Snippet membership ("does this instruction belong to loop L?") is
  decided by AST-subtree containment, which is how v-sensors are mapped back
  to source locations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.frontend.ast_nodes import Node

_INSTR_IDS = itertools.count(1)


# ---------------------------------------------------------------------------
# Values (instruction operands)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Value:
    """Base class for operand values."""


@dataclass(frozen=True, slots=True)
class Reg(Value):
    """A virtual register, unique within its function."""

    index: int

    def __str__(self) -> str:
        return f"%{self.index}"


@dataclass(frozen=True, slots=True)
class ConstInt(Value):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class ConstFloat(Value):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class ConstStr(Value):
    value: str

    def __str__(self) -> str:
        return repr(self.value)


def is_const(value: Value) -> bool:
    return isinstance(value, (ConstInt, ConstFloat, ConstStr))


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(eq=False, slots=True)
class Instr:
    """Base instruction.  ``block`` is set when appended to a BasicBlock."""

    ast_node: Node | None
    instr_id: int = field(default_factory=lambda: next(_INSTR_IDS), init=False)
    block: "object" = field(default=None, init=False, repr=False)

    def __hash__(self) -> int:
        return self.instr_id

    def operands(self) -> list[Value]:
        """Register/constant operands read by this instruction."""
        return []

    @property
    def dst(self) -> Reg | None:
        """The register written, if any."""
        return None


@dataclass(eq=False, slots=True)
class BinInstr(Instr):
    """``dst = lhs <op> rhs``"""

    dest: Reg = None  # type: ignore[assignment]
    op: str = "+"
    lhs: Value = None  # type: ignore[assignment]
    rhs: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    @property
    def dst(self) -> Reg | None:
        return self.dest


@dataclass(eq=False, slots=True)
class UnaryInstr(Instr):
    """``dst = <op> src``"""

    dest: Reg = None  # type: ignore[assignment]
    op: str = "-"
    src: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.src]

    @property
    def dst(self) -> Reg | None:
        return self.dest


@dataclass(eq=False, slots=True)
class Load(Instr):
    """``dst = load var`` — read a scalar local/param/global."""

    dest: Reg = None  # type: ignore[assignment]
    var: str = ""

    @property
    def dst(self) -> Reg | None:
        return self.dest


@dataclass(eq=False, slots=True)
class Store(Instr):
    """``store var, src`` — write a scalar local/param/global."""

    var: str = ""
    src: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.src]


@dataclass(eq=False, slots=True)
class LoadElem(Instr):
    """``dst = load arr[index]``"""

    dest: Reg = None  # type: ignore[assignment]
    arr: str = ""
    index: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.index]

    @property
    def dst(self) -> Reg | None:
        return self.dest


@dataclass(eq=False, slots=True)
class StoreElem(Instr):
    """``store arr[index], src``"""

    arr: str = ""
    index: Value = None  # type: ignore[assignment]
    src: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.index, self.src]


@dataclass(eq=False, slots=True)
class CallInstr(Instr):
    """``dst = call callee(args)``.

    ``callee`` is the spelled name.  ``is_indirect`` marks calls through a
    funcptr variable (the spelled name is then the variable name); indirect
    targets are unresolvable at compile time and get pruned from the call
    graph exactly as the paper prescribes (Fig. 10).
    """

    dest: Reg | None = None
    callee: str = ""
    args: list[Value] = field(default_factory=list)
    is_indirect: bool = False

    def operands(self) -> list[Value]:
        return list(self.args)

    @property
    def dst(self) -> Reg | None:
        return self.dest


@dataclass(eq=False, slots=True)
class AddrOfInstr(Instr):
    """``dst = &func``"""

    dest: Reg = None  # type: ignore[assignment]
    func_name: str = ""

    @property
    def dst(self) -> Reg | None:
        return self.dest


# -- terminators -------------------------------------------------------------


@dataclass(eq=False, slots=True)
class Branch(Instr):
    """``br cond, true_block, false_block``"""

    cond: Value = None  # type: ignore[assignment]
    true_block: "object" = None
    false_block: "object" = None

    def operands(self) -> list[Value]:
        return [self.cond]


@dataclass(eq=False, slots=True)
class Jump(Instr):
    """``jmp target``"""

    target: "object" = None


@dataclass(eq=False, slots=True)
class Ret(Instr):
    """``ret value?``"""

    value: Value | None = None

    def operands(self) -> list[Value]:
        return [self.value] if self.value is not None else []


TERMINATORS = (Branch, Jump, Ret)


def is_terminator(instr: Instr) -> bool:
    return isinstance(instr, TERMINATORS)
