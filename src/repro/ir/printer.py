"""Textual dump of the IR, for debugging and golden tests."""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    AddrOfInstr,
    BinInstr,
    Branch,
    CallInstr,
    Instr,
    Jump,
    Load,
    LoadElem,
    Ret,
    Store,
    StoreElem,
    UnaryInstr,
)
from repro.ir.irmodule import IRModule


def format_instr(instr: Instr) -> str:
    if isinstance(instr, BinInstr):
        return f"{instr.dest} = {instr.lhs} {instr.op} {instr.rhs}"
    if isinstance(instr, UnaryInstr):
        return f"{instr.dest} = {instr.op}{instr.src}"
    if isinstance(instr, Load):
        return f"{instr.dest} = load {instr.var}"
    if isinstance(instr, Store):
        return f"store {instr.var}, {instr.src}"
    if isinstance(instr, LoadElem):
        return f"{instr.dest} = load {instr.arr}[{instr.index}]"
    if isinstance(instr, StoreElem):
        return f"store {instr.arr}[{instr.index}], {instr.src}"
    if isinstance(instr, CallInstr):
        args = ", ".join(str(a) for a in instr.args)
        prefix = f"{instr.dest} = " if instr.dest is not None else ""
        kind = "icall" if instr.is_indirect else "call"
        return f"{prefix}{kind} {instr.callee}({args})"
    if isinstance(instr, AddrOfInstr):
        return f"{instr.dest} = &{instr.func_name}"
    if isinstance(instr, Branch):
        false = instr.false_block.label if instr.false_block is not None else "<none>"
        return f"br {instr.cond}, {instr.true_block.label}, {false}"
    if isinstance(instr, Jump):
        return f"jmp {instr.target.label}"
    if isinstance(instr, Ret):
        return f"ret {instr.value}" if instr.value is not None else "ret"
    raise TypeError(type(instr).__name__)


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"  {format_instr(i)}" for i in block.instrs)
    return "\n".join(lines)


def format_ir_function(fn: IRFunction) -> str:
    params = ", ".join(fn.params)
    lines = [f"func {fn.name}({params}) -> {fn.ret_type} {{"]
    for block in fn.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_ir_module(module: IRModule) -> str:
    parts = [f"global {name}" + (f"[{size}]" if size is not None else "") for name, size in module.globals.items()]
    parts.extend(format_ir_function(fn) for fn in module.functions.values())
    return "\n\n".join(parts) + "\n"
