"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.ir.instructions import Branch, Instr, Jump, is_terminator

_BLOCK_IDS = itertools.count(1)


@dataclass(eq=False, slots=True)
class BasicBlock:
    """One node of a function's control-flow graph.

    Successor edges come from the terminator; predecessor lists are
    maintained by :meth:`seal` on the owning function once construction is
    done.
    """

    label: str
    instrs: list[Instr] = field(default_factory=list)
    preds: list["BasicBlock"] = field(default_factory=list)
    block_id: int = field(default_factory=lambda: next(_BLOCK_IDS), init=False)

    def __hash__(self) -> int:
        return self.block_id

    def append(self, instr: Instr) -> Instr:
        if self.is_terminated:
            raise ValueError(f"block {self.label} already terminated")
        instr.block = self
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and is_terminator(self.instrs[-1]):
            return self.instrs[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Branch):
            # A branch may degenerate to one successor (e.g. `if` without else).
            succs = [term.true_block, term.false_block]
            return [s for i, s in enumerate(succs) if s is not None and s not in succs[:i]]
        if isinstance(term, Jump):
            return [term.target]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"
