"""Lowering: frontend AST to the three-address IR.

The lowering is deliberately straightforward (no optimization): every named
variable stays a memory location, every expression produces a fresh virtual
register.  Logical ``&&``/``||`` are lowered as strict (non-short-circuit)
integer operations — a documented deviation from C that keeps the CFG free
of synthetic branches so that branch conditions in the IR correspond 1:1 to
source-level control expressions.

``break``/``continue`` lower to jumps to the loop's exit/step blocks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import LoweringError
from repro.frontend import ast_nodes as A
from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    AddrOfInstr,
    BinInstr,
    Branch,
    CallInstr,
    ConstFloat,
    ConstInt,
    ConstStr,
    Jump,
    Load,
    LoadElem,
    Reg,
    Ret,
    Store,
    StoreElem,
    UnaryInstr,
    Value,
)
from repro.ir.irmodule import IRModule


@dataclass(slots=True)
class _LoopCtx:
    """Targets for break/continue inside the innermost enclosing loop."""

    continue_block: BasicBlock
    exit_block: BasicBlock


class _FunctionLowering:
    """Lowers one function body."""

    def __init__(self, module: IRModule, fn_ast: A.FunctionDef) -> None:
        self.module = module
        self.fn = IRFunction(
            name=fn_ast.name,
            params=[p.name for p in fn_ast.params],
            ret_type=fn_ast.ret_type,
            ast=fn_ast,
        )
        self.fn.param_types = {p.name: p.var_type for p in fn_ast.params}
        self._reg_counter = itertools.count(0)
        self._current: BasicBlock = self.fn.new_block("entry")
        self._loops: list[_LoopCtx] = []
        #: names visible as scalars/arrays in this function (params + locals)
        self._local_arrays: set[str] = set()
        self._funcptr_vars: set[str] = set()

    # -- small helpers -------------------------------------------------------

    def _reg(self) -> Reg:
        return Reg(next(self._reg_counter))

    def _emit(self, instr) -> None:
        self._current.append(instr)

    def _switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def _ensure_jump(self, target: BasicBlock, node: A.Node) -> None:
        """Terminate the current block with a jump if it is still open."""
        if not self._current.is_terminated:
            self._emit(Jump(ast_node=node, target=target))

    def _is_array(self, name: str) -> bool:
        if name in self.fn.locals:
            return self.fn.locals[name] is not None
        if name in self._local_arrays:
            return True
        return self.module.globals.get(name, None) is not None

    # -- driver ---------------------------------------------------------------

    def lower(self) -> IRFunction:
        body = self.fn.ast.body
        if body is not None:
            self._lower_block(body)
        if not self._current.is_terminated:
            default = None if self.fn.ret_type == "void" else ConstInt(0)
            self._emit(Ret(ast_node=self.fn.ast, value=default))
        self.fn.seal()
        return self.fn

    # -- statements ------------------------------------------------------------

    def _lower_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            if self._current.is_terminated:
                # Dead code after break/continue/return: skip.
                return
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, A.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, A.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, A.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, A.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, A.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, A.ReturnStmt):
            value = self._lower_expr(stmt.value) if stmt.value is not None else None
            self._emit(Ret(ast_node=stmt, value=value))
        elif isinstance(stmt, A.BreakStmt):
            if not self._loops:
                raise LoweringError(f"{stmt.loc}: break outside loop")
            self._emit(Jump(ast_node=stmt, target=self._loops[-1].exit_block))
        elif isinstance(stmt, A.ContinueStmt):
            if not self._loops:
                raise LoweringError(f"{stmt.loc}: continue outside loop")
            self._emit(Jump(ast_node=stmt, target=self._loops[-1].continue_block))
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__}")

    def _lower_var_decl(self, stmt: A.VarDecl) -> None:
        if stmt.name in self.fn.locals or stmt.name in self.fn.params:
            raise LoweringError(f"{stmt.loc}: redeclaration of {stmt.name!r}")
        self.fn.locals[stmt.name] = stmt.array_size
        if stmt.array_size is not None:
            self._local_arrays.add(stmt.name)
        if stmt.var_type == "funcptr":
            self._funcptr_vars.add(stmt.name)
        if stmt.init is not None:
            value = self._lower_expr(stmt.init)
            self._emit(Store(ast_node=stmt, var=stmt.name, src=value))

    def _lower_assign(self, stmt: A.Assign) -> None:
        value = self._lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, A.VarRef):
            if isinstance(stmt.value, A.AddrOf):
                self._funcptr_vars.add(target.name)
            self._emit(Store(ast_node=stmt, var=target.name, src=value))
        elif isinstance(target, A.ArrayRef):
            index = self._lower_expr(target.index)
            self._emit(StoreElem(ast_node=stmt, arr=target.name, index=index, src=value))
        else:
            raise LoweringError(f"{stmt.loc}: bad assignment target")

    def _lower_if(self, stmt: A.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self.fn.new_block("if.then")
        merge_block = self.fn.new_block("if.end")
        else_block = self.fn.new_block("if.else") if stmt.else_body is not None else merge_block
        self._emit(Branch(ast_node=stmt, cond=cond, true_block=then_block, false_block=else_block))

        self._switch_to(then_block)
        self._lower_block(stmt.then_body)
        self._ensure_jump(merge_block, stmt)

        if stmt.else_body is not None:
            self._switch_to(else_block)
            self._lower_block(stmt.else_body)
            self._ensure_jump(merge_block, stmt)

        self._switch_to(merge_block)

    def _lower_for(self, stmt: A.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.fn.new_block("for.header")
        body = self.fn.new_block("for.body")
        step = self.fn.new_block("for.step")
        exit_block = self.fn.new_block("for.end")
        self._ensure_jump(header, stmt)

        self._switch_to(header)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._emit(Branch(ast_node=stmt, cond=cond, true_block=body, false_block=exit_block))
        else:
            self._emit(Jump(ast_node=stmt, target=body))

        self._loops.append(_LoopCtx(continue_block=step, exit_block=exit_block))
        self._switch_to(body)
        self._lower_block(stmt.body)
        self._ensure_jump(step, stmt)
        self._loops.pop()

        self._switch_to(step)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._ensure_jump(header, stmt)

        self._switch_to(exit_block)

    def _lower_while(self, stmt: A.WhileStmt) -> None:
        header = self.fn.new_block("while.header")
        body = self.fn.new_block("while.body")
        exit_block = self.fn.new_block("while.end")
        self._ensure_jump(header, stmt)

        self._switch_to(header)
        cond = self._lower_expr(stmt.cond)
        self._emit(Branch(ast_node=stmt, cond=cond, true_block=body, false_block=exit_block))

        self._loops.append(_LoopCtx(continue_block=header, exit_block=exit_block))
        self._switch_to(body)
        self._lower_block(stmt.body)
        self._ensure_jump(header, stmt)
        self._loops.pop()

        self._switch_to(exit_block)

    # -- expressions -------------------------------------------------------------

    def _lower_expr(self, expr: A.Expr, want_value: bool = True) -> Value:
        if isinstance(expr, A.IntLit):
            return ConstInt(expr.value)
        if isinstance(expr, A.FloatLit):
            return ConstFloat(expr.value)
        if isinstance(expr, A.StringLit):
            return ConstStr(expr.value)
        if isinstance(expr, A.VarRef):
            dest = self._reg()
            self._emit(Load(ast_node=expr, dest=dest, var=expr.name))
            return dest
        if isinstance(expr, A.ArrayRef):
            index = self._lower_expr(expr.index)
            dest = self._reg()
            self._emit(LoadElem(ast_node=expr, dest=dest, arr=expr.name, index=index))
            return dest
        if isinstance(expr, A.BinOp):
            lhs = self._lower_expr(expr.left)
            rhs = self._lower_expr(expr.right)
            dest = self._reg()
            self._emit(BinInstr(ast_node=expr, dest=dest, op=expr.op, lhs=lhs, rhs=rhs))
            return dest
        if isinstance(expr, A.UnaryOp):
            src = self._lower_expr(expr.operand)
            dest = self._reg()
            self._emit(UnaryInstr(ast_node=expr, dest=dest, op=expr.op, src=src))
            return dest
        if isinstance(expr, A.CallExpr):
            args = [self._lower_expr(a) for a in expr.args]
            dest = self._reg() if want_value else None
            is_indirect = self._is_funcptr_name(expr.callee)
            instr = CallInstr(
                ast_node=expr, dest=dest, callee=expr.callee, args=args, is_indirect=is_indirect
            )
            self._emit(instr)
            return dest if dest is not None else ConstInt(0)
        if isinstance(expr, A.AddrOf):
            dest = self._reg()
            self._emit(AddrOfInstr(ast_node=expr, dest=dest, func_name=expr.func_name))
            return dest
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def _is_funcptr_name(self, name: str) -> bool:
        """A call through a variable declared funcptr is indirect."""
        if name in self._funcptr_vars:
            return True
        return self.fn.param_types.get(name) == "funcptr"


def lower_function(module: IRModule, fn_ast: A.FunctionDef) -> IRFunction:
    """Lower one function definition into ``module``'s context."""
    return _FunctionLowering(module, fn_ast).lower()


def lower_module(ast_module: A.Module) -> IRModule:
    """Lower a parsed module to IR (workflow step 1, 'Compile')."""
    module = IRModule(ast=ast_module)
    for gv in ast_module.globals:
        module.globals[gv.name] = gv.array_size
    for fn_ast in ast_module.functions:
        module.functions[fn_ast.name] = lower_function(module, fn_ast)
    return module
