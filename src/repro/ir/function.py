"""IR functions: a CFG of basic blocks plus symbol tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.ast_nodes import FunctionDef
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instr


@dataclass(eq=False, slots=True)
class IRFunction:
    """A lowered function.

    ``params`` are the names of parameter memory locations (defined at
    entry).  ``locals`` maps local variable name to array size (``None`` for
    scalars).  ``ast`` links back to the frontend definition.
    """

    name: str
    params: list[str]
    ret_type: str
    ast: FunctionDef | None = None
    blocks: list[BasicBlock] = field(default_factory=list)
    locals: dict[str, int | None] = field(default_factory=dict)
    param_types: dict[str, str] = field(default_factory=dict)

    def __hash__(self) -> int:
        return id(self)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def new_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label=f"{label}.{len(self.blocks)}")
        self.blocks.append(block)
        return block

    def seal(self) -> None:
        """Recompute predecessor lists and drop unreachable blocks."""
        reachable: list[BasicBlock] = []
        seen: set[BasicBlock] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            reachable.append(block)
            stack.extend(block.successors())
        # Preserve construction order for determinism.
        self.blocks = [b for b in self.blocks if b in seen]
        for block in self.blocks:
            block.preds = []
        for block in self.blocks:
            for succ in block.successors():
                succ.preds.append(block)

    def instructions(self):
        """Yield every instruction, block by block."""
        for block in self.blocks:
            yield from block.instrs

    def instr_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)

    def find_instr(self, instr_id: int) -> Instr:
        for instr in self.instructions():
            if instr.instr_id == instr_id:
                return instr
        raise KeyError(instr_id)
