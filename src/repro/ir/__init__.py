"""Three-address intermediate representation.

The paper's identification algorithm runs on LLVM-IR; this package provides
the equivalent substrate: functions made of basic blocks holding
three-address instructions over virtual registers and named memory locations
(locals, params, globals).  Every instruction carries a back-link to the AST
node it was lowered from, which implements workflow step 3 ("map to
source").

Public surface: :func:`lower_module` (AST → IR) and the instruction /
block / function / module classes.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    AddrOfInstr,
    BinInstr,
    Branch,
    CallInstr,
    ConstFloat,
    ConstInt,
    ConstStr,
    Instr,
    Jump,
    Load,
    LoadElem,
    Reg,
    Ret,
    Store,
    StoreElem,
    UnaryInstr,
    Value,
)
from repro.ir.irmodule import IRModule
from repro.ir.lower import lower_module
from repro.ir.printer import format_ir_function, format_ir_module

__all__ = [
    "AddrOfInstr",
    "BasicBlock",
    "BinInstr",
    "Branch",
    "CallInstr",
    "ConstFloat",
    "ConstInt",
    "ConstStr",
    "IRFunction",
    "IRModule",
    "Instr",
    "Jump",
    "Load",
    "LoadElem",
    "Reg",
    "Ret",
    "Store",
    "StoreElem",
    "UnaryInstr",
    "Value",
    "format_ir_function",
    "format_ir_module",
    "lower_module",
]
