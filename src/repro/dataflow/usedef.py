"""Use-define chains layered over reaching definitions.

Two kinds of chains exist in this IR:

* **Register chains** are trivial: each virtual register has exactly one
  defining instruction (``reg_def``).
* **Memory chains** link each ``Load``/``LoadElem`` to the set of
  definitions of that variable reaching the load (``defs_for_load``).

The sensors layer walks these chains backwards to slice out the inputs that
determine a snippet's quantity of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataflow.reaching import Definition, ReachingDefinitions, compute_reaching_definitions
from repro.ir.function import IRFunction
from repro.ir.instructions import CallInstr, Instr, Load, LoadElem, Reg


@dataclass(slots=True)
class UseDefChains:
    """Use-def query interface for one function."""

    fn: IRFunction
    reaching: ReachingDefinitions
    reg_def: dict[Reg, Instr]

    def def_of_reg(self, reg: Reg) -> Instr:
        """The unique instruction that writes ``reg``."""
        return self.reg_def[reg]

    def defs_for_load(self, load: Load | LoadElem) -> list[Definition]:
        """Definitions reaching a scalar or array load."""
        var = load.var if isinstance(load, Load) else load.arr
        return self.reaching.reaching_before(load, var)

    def defs_before(self, instr: Instr, var: str) -> list[Definition]:
        """Definitions of ``var`` reaching immediately before ``instr``."""
        return self.reaching.reaching_before(instr, var)


def build_use_def_chains(
    fn: IRFunction,
    global_names: set[str],
    call_mod_sets: Callable[[CallInstr], set[str]] | None = None,
) -> UseDefChains:
    """Build chains for ``fn`` (solving reaching definitions first)."""
    reaching = compute_reaching_definitions(fn, global_names, call_mod_sets)
    reg_def: dict[Reg, Instr] = {}
    for instr in fn.instructions():
        dst = instr.dst
        if dst is not None:
            reg_def[dst] = instr
    return UseDefChains(fn=fn, reaching=reaching, reg_def=reg_def)
