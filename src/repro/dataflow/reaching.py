"""Reaching-definition analysis over the memory-based IR.

Definitions tracked:

* ``Store var, v``          — a *must* definition of ``var`` (kills).
* ``StoreElem arr[i], v``   — a *may* definition of array ``arr`` (no kill).
* ``CallInstr``             — a *may* definition of every global in the
  callee's mod-set (provided by the caller of this analysis via
  ``call_mod_sets``; the set for unresolved callees is decided by the
  sensors layer's conservative policy).
* function entry            — a synthetic definition of every parameter and
  every global (their incoming values).

The analysis is a classic forward may-analysis solved with a worklist over
reverse postorder.  Results are exposed per instruction: the set of
definitions of a variable reaching *immediately before* each instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cfa.cfg import reverse_postorder
from repro.ir.basicblock import BasicBlock
from repro.ir.function import IRFunction
from repro.ir.instructions import CallInstr, Instr, Store, StoreElem


@dataclass(frozen=True, slots=True)
class Definition:
    """One definition site of a named variable.

    ``instr`` is ``None`` for the synthetic entry definition (parameter or
    incoming global value).  ``is_may`` marks definitions that do not kill
    (array stores, call mod-effects).
    """

    var: str
    instr: Instr | None
    is_may: bool = False

    @property
    def is_entry(self) -> bool:
        return self.instr is None


class ReachingDefinitions:
    """Solved reaching-definition facts for one function."""

    def __init__(
        self,
        fn: IRFunction,
        block_in: dict[BasicBlock, frozenset[Definition]],
        defs_of_instr: Callable[[Instr], list[Definition]],
    ) -> None:
        self._fn = fn
        self._block_in = block_in
        # Per-instruction IN sets, materialized up front.  The transfer
        # function is only needed during materialization and is often a
        # closure — holding on to it would make solved facts unpicklable
        # (and the artifact cache's disk layer silently useless).
        self._instr_in: dict[int, frozenset[Definition]] = {}
        self._materialize(defs_of_instr)

    def _materialize(self, defs_of_instr: Callable[[Instr], list[Definition]]) -> None:
        for block in self._fn.blocks:
            current = set(self._block_in.get(block, frozenset()))
            for instr in block.instrs:
                self._instr_in[instr.instr_id] = frozenset(current)
                _apply_transfer(current, defs_of_instr(instr))

    def reaching_before(self, instr: Instr, var: str) -> list[Definition]:
        """Definitions of ``var`` reaching immediately before ``instr``."""
        facts = self._instr_in.get(instr.instr_id)
        if facts is None:
            raise KeyError(f"instruction {instr.instr_id} not in analyzed function")
        return [d for d in facts if d.var == var]

    def reaching_at_block_entry(self, block: BasicBlock, var: str) -> list[Definition]:
        return [d for d in self._block_in.get(block, frozenset()) if d.var == var]


def _apply_transfer(current: set[Definition], new_defs: list[Definition]) -> None:
    """Apply one instruction's definitions to the running fact set."""
    for d in new_defs:
        if not d.is_may:
            current.difference_update({old for old in current if old.var == d.var})
        current.add(d)


def compute_reaching_definitions(
    fn: IRFunction,
    global_names: set[str],
    call_mod_sets: Callable[[CallInstr], set[str]] | None = None,
) -> ReachingDefinitions:
    """Solve reaching definitions for ``fn``.

    ``call_mod_sets`` maps a call instruction to the set of *global* variable
    names it may modify; when ``None``, calls are treated as modifying no
    globals (callers wanting the paper's conservative treatment pass a
    resolver built from function summaries and extern models).
    """
    mods = call_mod_sets or (lambda call: set())

    def defs_of_instr(instr: Instr) -> list[Definition]:
        if isinstance(instr, Store):
            return [Definition(var=instr.var, instr=instr)]
        if isinstance(instr, StoreElem):
            return [Definition(var=instr.arr, instr=instr, is_may=True)]
        if isinstance(instr, CallInstr):
            return [
                Definition(var=g, instr=instr, is_may=True)
                for g in sorted(mods(instr))
            ]
        return []

    entry_defs = frozenset(
        [Definition(var=p, instr=None) for p in fn.params]
        + [Definition(var=g, instr=None) for g in sorted(global_names)]
        + [Definition(var=v, instr=None) for v in fn.locals]
    )
    # Locals get an entry definition too: an uninitialized read is then
    # traced to "function entry", which the sensors layer treats as an
    # unknown (non-fixed) input — conservative and safe.

    block_in: dict[BasicBlock, set[Definition]] = {b: set() for b in fn.blocks}
    block_out: dict[BasicBlock, set[Definition]] = {b: set() for b in fn.blocks}
    block_in[fn.entry] = set(entry_defs)

    rpo = reverse_postorder(fn)
    worklist = list(rpo)
    in_worklist = set(rpo)
    while worklist:
        block = worklist.pop(0)
        in_worklist.discard(block)
        if block is not fn.entry:
            merged: set[Definition] = set()
            for pred in block.preds:
                merged |= block_out[pred]
            block_in[block] = merged
        # Transfer by walking the block: this handles ordering between may-
        # and must-definitions of the same variable exactly.
        out = set(block_in[block])
        for instr in block.instrs:
            _apply_transfer(out, defs_of_instr(instr))
        if out != block_out[block]:
            block_out[block] = out
            for succ in block.successors():
                if succ not in in_worklist:
                    worklist.append(succ)
                    in_worklist.add(succ)

    return ReachingDefinitions(
        fn,
        {b: frozenset(s) for b, s in block_in.items()},
        defs_of_instr,
    )
