"""Dataflow analyses: reaching definitions and use-define chains.

These are the compiler primitives the paper's dependency-propagation
algorithm is built on ("The dependency between variables is analyzed using a
compiler technique — use-define chain analysis", §3.2).
"""

from repro.dataflow.reaching import Definition, ReachingDefinitions, compute_reaching_definitions
from repro.dataflow.usedef import UseDefChains, build_use_def_chains

__all__ = [
    "Definition",
    "ReachingDefinitions",
    "UseDefChains",
    "build_use_def_chains",
    "compute_reaching_definitions",
]
