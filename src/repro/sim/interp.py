"""AST interpreter for one simulated MPI rank.

Each rank runs the (possibly instrumented) program against its own virtual
clock.  Computation charges abstract work units which are converted to time
lazily at observation boundaries (probes, MPI, IO); MPI operations suspend
the rank by yielding an :class:`MpiRequest` to the engine, which resumes it
with the operation's completion time.

Performance notes (this is the simulator's hot loop):

* statements whose subtree contains no call execute through a plain
  recursive fast path — compute kernels never touch the generator machinery;
* expression/statement call-sites are classified once per program and
  memoized by node id;
* intrinsics (math, ``compute_units``, probes, IO) run inline; only MPI
  rendezvous and user-function calls go through ``yield``.

Work accounting is split into an integer count of half work units plus a
float residual for charges that are not multiples of 0.5 (``MPI_Comm_rank``'s
0.1, data-dependent extern costs).  Integer accumulation is exact and
associative, so the bytecode tier (:mod:`repro.sim.bytecode`) may fold the
constant charges of a whole basic block into one addition and still produce
bit-identical virtual times; the residual stream is charged in program
order by both tiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InterpError
from repro.frontend import ast_nodes as A
from repro.instrument.rewrite import TICK, TOCK, SensorInfo
from repro.sim.clock import RankClock
from repro.sim.faults import Fault
from repro.sim.hooks import RuntimeHooks
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel
from repro.sim.noise import NodeNoise
from repro.sim.pmu import Pmu

# Work-unit costs of interpreted operations.
COST_BINOP = 1.0
COST_UNARY = 0.5
COST_LOAD = 0.5
COST_STORE = 0.5
COST_INDEX = 0.5
COST_CALL = 2.0
COST_BRANCH = 0.5

_MPI_COLLECTIVES = {
    "MPI_Barrier": "barrier",
    "MPI_Allreduce": "allreduce",
    "MPI_Alltoall": "alltoall",
    "MPI_Allgather": "allgather",
    "MPI_Bcast": "bcast",
    "MPI_Reduce": "reduce",
}

_MATH_FUNCS = {
    "sqrt": lambda a: math.sqrt(abs(a)),
    "fabs": abs,
    "abs": abs,
    "exp": lambda a: math.exp(min(a, 60.0)),
    "log": lambda a: math.log(abs(a) + 1e-12),
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": lambda a, b: math.pow(abs(a) + 1e-12, b),
    "fmod": lambda a, b: math.fmod(a, b if b != 0 else 1.0),
    "min": min,
    "max": max,
}


@dataclass(slots=True)
class MpiRequest:
    """A blocked MPI operation, yielded to the engine."""

    rank: int
    op: str            # "barrier"|"allreduce"|...|"send"|"recv"|"sendrecv"
    size: float
    peer: int          # dest/src/root; -1 when not applicable
    arrive: float      # local time the rank entered the operation


class _Return(Exception):
    """Unwinds a user function call."""

    def __init__(self, value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class RankInterp:
    """Interpreter state for one rank."""

    def __init__(
        self,
        module: A.Module,
        rank: int,
        n_ranks: int,
        machine: MachineConfig,
        faults: tuple[Fault, ...],
        hooks: RuntimeHooks,
        sensors: dict[int, SensorInfo] | None = None,
        entry: str = "main",
        shared_has_call: dict[int, bool] | None = None,
        externs=None,
        probe_control=None,
    ) -> None:
        self.module = module
        #: optional governor control table; ``None`` keeps probes unconditional
        self.probe_control = probe_control
        self.rank = rank
        self.n_ranks = n_ranks
        self.machine = machine
        self.faults = faults
        self.hooks = hooks
        self.sensors = sensors or {}
        self.entry = entry
        node = machine.node_of_rank(rank)
        self.clock = RankClock(
            rank=rank,
            node=node,
            noise=NodeNoise(machine.noise, machine.seed, node.node_id),
            machine=machine,
            faults=faults,
        )
        self.network = NetworkModel(machine=machine, faults=faults)
        self.pmu = Pmu(machine.seed, rank, faults, node.node_id)
        self._rng = np.random.default_rng(
            np.random.SeedSequence([machine.seed & 0x7FFFFFFF, 31_000 + rank])
        )
        self.globals: dict[str, object] = {}
        self._frames: list[dict[str, object]] = []
        # Work accounting: integer half-units (exact, grouping-invariant)
        # plus a float residual charged in program order.
        self._pending_half = 0
        self._pending_frac = 0.0
        self._total_half = 0
        self._total_frac = 0.0
        #: open Tick records: sensor id -> (t_start, half units, residual)
        self._open_ticks: dict[int, tuple[float, int, float]] = {}
        self.sensor_record_count = 0
        self._has_call_memo = shared_has_call if shared_has_call is not None else {}
        self._functions = {fn.name: fn for fn in module.functions}
        if externs is None:
            from repro.sensors.extern import default_extern_registry

            externs = default_extern_registry()
        self._externs = externs

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def run(self):
        """Generator: yields MpiRequest; receives completion times."""
        self._init_globals()
        main = self._functions.get(self.entry)
        if main is None:
            raise InterpError(f"no entry function {self.entry!r}")
        try:
            yield from self._call_function(main, [])
        except _Return:
            pass
        self._flush()
        self.hooks.on_program_end(self.rank, self.clock.now)

    def _init_globals(self) -> None:
        for gv in self.module.globals:
            if gv.array_size is not None:
                self.globals[gv.name] = [0.0 if gv.var_type == "float" else 0] * gv.array_size
            elif gv.init is not None:
                self.globals[gv.name] = self._eval_fast(gv.init)
            else:
                self.globals[gv.name] = 0.0 if gv.var_type == "float" else 0

    # ------------------------------------------------------------------
    # Time bookkeeping
    # ------------------------------------------------------------------

    @property
    def pending_work(self) -> float:
        return self._pending_half * 0.5 + self._pending_frac

    @property
    def total_work(self) -> float:
        return self._total_half * 0.5 + self._total_frac

    def _flush(self) -> None:
        """Convert pending work units into elapsed virtual time."""
        if self._pending_half or self._pending_frac:
            amount = self._pending_half * 0.5 + self._pending_frac
            if amount > 0.0:
                self.clock.advance_compute(amount)
            self._pending_half = 0
            self._pending_frac = 0.0

    def _charge(self, units: float) -> None:
        doubled = units + units
        if doubled < 1e15 and doubled == int(doubled):
            n = int(doubled)
            self._pending_half += n
            self._total_half += n
        else:
            self._pending_frac += units
            self._total_frac += units

    # ------------------------------------------------------------------
    # Variable access
    # ------------------------------------------------------------------

    @property
    def _frame(self) -> dict[str, object]:
        return self._frames[-1]

    def _read_var(self, name: str):
        frame = self._frames[-1]
        if name in frame:
            return frame[name]
        if name in self.globals:
            return self.globals[name]
        raise InterpError(f"rank {self.rank}: read of undefined variable {name!r}")

    def _write_var(self, name: str, value) -> None:
        frame = self._frames[-1]
        if name in frame:
            frame[name] = value
        elif name in self.globals:
            self.globals[name] = value
        else:
            frame[name] = value

    def _read_elem(self, name: str, index):
        arr = self._read_var(name)
        if not isinstance(arr, list):
            raise InterpError(f"{name!r} is not an array")
        return arr[int(index) % len(arr)]

    def _write_elem(self, name: str, index, value) -> None:
        arr = self._read_var(name)
        if not isinstance(arr, list):
            raise InterpError(f"{name!r} is not an array")
        arr[int(index) % len(arr)] = value

    # ------------------------------------------------------------------
    # Call classification
    # ------------------------------------------------------------------

    def _has_call(self, node: A.Node) -> bool:
        memo = self._has_call_memo
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        result = False
        if isinstance(node, A.CallExpr):
            result = True
        elif isinstance(node, A.Stmt):
            for expr in A.walk_all_exprs(node):
                if isinstance(expr, A.CallExpr):
                    result = True
                    break
        else:
            for expr in A.walk_exprs(node):
                if isinstance(expr, A.CallExpr):
                    result = True
                    break
        memo[node.node_id] = result
        return result

    # ------------------------------------------------------------------
    # Fast (call-free) execution
    # ------------------------------------------------------------------

    def _eval_fast(self, expr: A.Expr):
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            return expr.value
        if isinstance(expr, A.StringLit):
            return expr.value
        if isinstance(expr, A.VarRef):
            self._charge(COST_LOAD)
            return self._read_var(expr.name)
        if isinstance(expr, A.ArrayRef):
            index = self._eval_fast(expr.index)
            self._charge(COST_LOAD + COST_INDEX)
            return self._read_elem(expr.name, index)
        if isinstance(expr, A.BinOp):
            left = self._eval_fast(expr.left)
            right = self._eval_fast(expr.right)
            self._charge(COST_BINOP)
            return _binop(expr.op, left, right)
        if isinstance(expr, A.UnaryOp):
            value = self._eval_fast(expr.operand)
            self._charge(COST_UNARY)
            return -value if expr.op == "-" else (0 if value else 1)
        if isinstance(expr, A.AddrOf):
            return expr.func_name
        raise InterpError(f"fast path cannot evaluate {type(expr).__name__}")

    def _exec_fast(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            for child in stmt.stmts:
                self._exec_fast(child)
            return
        if isinstance(stmt, A.VarDecl):
            if stmt.array_size is not None:
                self._frame[stmt.name] = [0.0 if stmt.var_type == "float" else 0] * stmt.array_size
            else:
                self._frame[stmt.name] = (
                    self._eval_fast(stmt.init) if stmt.init is not None else 0
                )
            self._charge(COST_STORE)
            return
        if isinstance(stmt, A.Assign):
            value = self._eval_fast(stmt.value)
            target = stmt.target
            self._charge(COST_STORE)
            if isinstance(target, A.VarRef):
                self._write_var(target.name, value)
            else:
                index = self._eval_fast(target.index)
                self._write_elem(target.name, index, value)
            return
        if isinstance(stmt, A.IfStmt):
            self._charge(COST_BRANCH)
            if _truthy(self._eval_fast(stmt.cond)):
                self._exec_fast(stmt.then_body)
            elif stmt.else_body is not None:
                self._exec_fast(stmt.else_body)
            return
        if isinstance(stmt, A.ForStmt):
            if stmt.init is not None:
                self._exec_fast(stmt.init)
            while True:
                self._charge(COST_BRANCH)
                if stmt.cond is not None and not _truthy(self._eval_fast(stmt.cond)):
                    break
                try:
                    self._exec_fast(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._exec_fast(stmt.step)
            return
        if isinstance(stmt, A.WhileStmt):
            while True:
                self._charge(COST_BRANCH)
                if not _truthy(self._eval_fast(stmt.cond)):
                    break
                try:
                    self._exec_fast(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
            return
        if isinstance(stmt, A.ReturnStmt):
            value = self._eval_fast(stmt.value) if stmt.value is not None else None
            raise _Return(value)
        if isinstance(stmt, A.BreakStmt):
            raise _Break()
        if isinstance(stmt, A.ContinueStmt):
            raise _Continue()
        if isinstance(stmt, A.ExprStmt):
            self._eval_fast(stmt.expr)
            return
        raise InterpError(f"fast path cannot execute {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # General (call-capable) execution — generators
    # ------------------------------------------------------------------

    def _exec(self, stmt: A.Stmt):
        if not self._has_call(stmt):
            self._exec_fast(stmt)
            return
        if isinstance(stmt, A.Block):
            for child in stmt.stmts:
                if self._has_call(child):
                    yield from self._exec(child)
                else:
                    self._exec_fast(child)
            return
        if isinstance(stmt, A.VarDecl):
            if stmt.array_size is not None:
                self._frame[stmt.name] = [0.0 if stmt.var_type == "float" else 0] * stmt.array_size
            else:
                value = 0
                if stmt.init is not None:
                    value = yield from self._eval(stmt.init)
                self._frame[stmt.name] = value
            self._charge(COST_STORE)
            return
        if isinstance(stmt, A.Assign):
            value = yield from self._eval(stmt.value)
            target = stmt.target
            self._charge(COST_STORE)
            if isinstance(target, A.VarRef):
                self._write_var(target.name, value)
            else:
                index = yield from self._eval(target.index)
                self._write_elem(target.name, index, value)
            return
        if isinstance(stmt, A.IfStmt):
            self._charge(COST_BRANCH)
            cond = yield from self._eval(stmt.cond)
            if _truthy(cond):
                yield from self._exec(stmt.then_body)
            elif stmt.else_body is not None:
                yield from self._exec(stmt.else_body)
            return
        if isinstance(stmt, A.ForStmt):
            if stmt.init is not None:
                yield from self._exec(stmt.init)
            body_has_call = self._has_call(stmt.body) if stmt.body is not None else False
            while True:
                self._charge(COST_BRANCH)
                if stmt.cond is not None:
                    cond = yield from self._eval(stmt.cond)
                    if not _truthy(cond):
                        break
                try:
                    if body_has_call:
                        yield from self._exec(stmt.body)
                    else:
                        self._exec_fast(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    yield from self._exec(stmt.step)
            return
        if isinstance(stmt, A.WhileStmt):
            body_has_call = self._has_call(stmt.body) if stmt.body is not None else False
            while True:
                self._charge(COST_BRANCH)
                cond = yield from self._eval(stmt.cond)
                if not _truthy(cond):
                    break
                try:
                    if body_has_call:
                        yield from self._exec(stmt.body)
                    else:
                        self._exec_fast(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
            return
        if isinstance(stmt, A.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = yield from self._eval(stmt.value)
            raise _Return(value)
        if isinstance(stmt, A.ExprStmt):
            yield from self._eval(stmt.expr)
            return
        raise InterpError(f"cannot execute {type(stmt).__name__}")

    def _eval(self, expr: A.Expr):
        if not self._has_call(expr):
            return self._eval_fast(expr)
        if isinstance(expr, A.BinOp):
            left = yield from self._eval(expr.left)
            right = yield from self._eval(expr.right)
            self._charge(COST_BINOP)
            return _binop(expr.op, left, right)
        if isinstance(expr, A.UnaryOp):
            value = yield from self._eval(expr.operand)
            self._charge(COST_UNARY)
            return -value if expr.op == "-" else (0 if value else 1)
        if isinstance(expr, A.ArrayRef):
            index = yield from self._eval(expr.index)
            self._charge(COST_LOAD + COST_INDEX)
            return self._read_elem(expr.name, index)
        if isinstance(expr, A.CallExpr):
            result = yield from self._eval_call(expr)
            return result
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _eval_call(self, expr: A.CallExpr):
        name = expr.callee
        # Indirect call through a funcptr variable holding a function name.
        if name not in self._functions and name not in _INTRINSIC_NAMES:
            frame = self._frames[-1] if self._frames else {}
            if name in frame or name in self.globals:
                target = self._read_var(name)
                if isinstance(target, str) and target in self._functions:
                    name = target
        args = []
        for arg in expr.args:
            value = yield from self._eval(arg)
            args.append(value)
        self._charge(COST_CALL)

        fn = self._functions.get(name)
        if fn is not None:
            result = yield from self._call_function(fn, args)
            return result
        result = yield from self._intrinsic(name, args, expr)
        return result

    def _call_function(self, fn: A.FunctionDef, args: list):
        frame: dict[str, object] = {}
        for i, param in enumerate(fn.params):
            frame[param.name] = args[i] if i < len(args) else 0
        self._frames.append(frame)
        trace = self.hooks.wants_function_events
        if trace:
            self.hooks.on_func_enter(self.rank, fn.name, self.clock.now)
        try:
            if fn.body is not None:
                if self._has_call(fn.body):
                    yield from self._exec(fn.body)
                else:
                    self._exec_fast(fn.body)
            return 0
        except _Return as ret:
            return ret.value if ret.value is not None else 0
        finally:
            self._frames.pop()
            if trace:
                self.hooks.on_func_exit(self.rank, fn.name, self.clock.now)

    # ------------------------------------------------------------------
    # Intrinsics
    # ------------------------------------------------------------------

    def _intrinsic(self, name: str, args: list, expr: A.CallExpr):
        if name == "compute_units":
            self._charge(max(0.0, float(args[0])) if args else 0.0)
            return 0
        if name == TICK:
            self._probe_tick(int(args[0]))
            return 0
        if name == TOCK:
            self._probe_tock(int(args[0]))
            return 0
        if name == "MPI_Comm_rank":
            self._charge(0.1)
            return self.rank
        if name == "MPI_Comm_size":
            self._charge(0.1)
            return self.n_ranks
        if name == "MPI_Wtime":
            self._flush()
            return self.clock.now
        if name in _MPI_COLLECTIVES:
            result = yield from self._mpi_collective(name, args)
            return result
        if name in ("MPI_Send", "MPI_Recv", "MPI_Sendrecv"):
            result = yield from self._mpi_p2p(name, args)
            return result
        if name in _MATH_FUNCS:
            self._charge(2.0)
            try:
                return _MATH_FUNCS[name](*args[: 2 if name in ("pow", "fmod", "min", "max") else 1])
            except (ValueError, OverflowError):
                return 0.0
        if name == "printf":
            self._io_op("printf", 1.0)
            return 0
        if name in ("fread", "fwrite"):
            size = float(args[0]) if args else 1.0
            self._io_op(name, size)
            return 0
        if name in ("fopen", "fclose"):
            self._io_op(name, 1.0)
            return 0
        if name == "rand":
            self._charge(0.5)
            return int(self._rng.integers(0, 2**31 - 1))
        if name == "srand":
            return 0
        if name == "clock":
            self._flush()
            return int(self.clock.now)
        if name == "gethostname":
            self._charge(0.5)
            return self.clock.node.node_id
        model = self._externs.lookup(name)
        if model is not None:
            # A user-described external function: costed from its model.
            units = 1.0
            for idx in model.workload_args:
                if idx < len(args):
                    units *= max(0.0, float(args[idx]))
            cost = model.base_cost + model.unit_cost * (units if model.workload_args else 0.0)
            if model.category == "net":
                self._flush()
                t0 = self.clock.now
                self.clock.advance_wall(cost * self.network.stretch_at(t0))
                self.hooks.on_mpi_end(self.rank, name, t0, self.clock.now, units)
            elif model.category == "io":
                self._io_op(name, units)
            else:
                self._charge(cost)
            return 0
        raise InterpError(f"rank {self.rank}: call to unknown function {name!r}")
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Probes (the instrumented Tick/Tock runtime entry, §4/§5)
    # ------------------------------------------------------------------

    def _probe_tick(self, sensor_id: int) -> None:
        ctl = self.probe_control
        if ctl is not None and not ctl.decide(self.rank, sensor_id):
            # Governor says skip: charge only the table check, open nothing.
            # The decision is latched here; the matching tock pops it.
            self._charge(ctl.check_cost)
            return
        self._charge(self.machine.probe_cost)
        self._flush()
        self._open_ticks[sensor_id] = (self.clock.now, self._total_half, self._total_frac)

    def _probe_tock(self, sensor_id: int) -> None:
        ctl = self.probe_control
        if ctl is not None and ctl.pop_skip(self.rank, sensor_id):
            self._charge(ctl.check_cost)
            return
        self._flush()
        open_entry = self._open_ticks.pop(sensor_id, None)
        self._charge(self.machine.probe_cost)
        if open_entry is None:
            raise InterpError(f"vs_tock({sensor_id}) without matching vs_tick")
        t_start, half_at_tick, frac_at_tick = open_entry
        true_work = (self._total_half - half_at_tick) * 0.5 + (
            self._total_frac - frac_at_tick
        )
        sample = self.pmu.read(true_work, self.clock.now)
        self.sensor_record_count += 1
        self.hooks.on_sensor_record(self.rank, sensor_id, t_start, self.clock.now, sample)

    # ------------------------------------------------------------------
    # MPI + IO
    # ------------------------------------------------------------------

    def _mpi_collective(self, name: str, args: list):
        op = _MPI_COLLECTIVES[name]
        if op in ("barrier",):
            size = 0.0
        elif op in ("bcast", "reduce"):
            size = float(args[1]) if len(args) > 1 else 0.0
        else:
            size = float(args[0]) if args else 0.0
        self._flush()
        t0 = self.clock.now
        self.hooks.on_mpi_begin(self.rank, name, t0)
        completion = yield MpiRequest(rank=self.rank, op=op, size=size, peer=-1, arrive=t0)
        self.clock.wait_until(completion)
        self.hooks.on_mpi_end(self.rank, name, t0, self.clock.now, size)
        return 0

    def _mpi_p2p(self, name: str, args: list):
        peer = int(args[0]) if args else 0
        size = float(args[1]) if len(args) > 1 else 0.0
        op = {"MPI_Send": "send", "MPI_Recv": "recv", "MPI_Sendrecv": "sendrecv"}[name]
        self._flush()
        t0 = self.clock.now
        self.hooks.on_mpi_begin(self.rank, name, t0)
        completion = yield MpiRequest(
            rank=self.rank, op=op, size=size, peer=peer % max(1, self.n_ranks), arrive=t0
        )
        self.clock.wait_until(completion)
        self.hooks.on_mpi_end(self.rank, name, t0, self.clock.now, size)
        return 0

    def _io_op(self, op: str, size: float) -> None:
        from repro.sim.faults import io_factor_at

        self._flush()
        t0 = self.clock.now
        cost = self.machine.io_alpha + self.machine.io_beta * size
        cost /= max(io_factor_at(self.faults, self.clock.node.node_id, t0), 1e-6)
        self.clock.advance_wall(cost)
        self.hooks.on_io(self.rank, op, t0, self.clock.now, size)


_INTRINSIC_NAMES = frozenset(
    list(_MPI_COLLECTIVES)
    + list(_MATH_FUNCS)
    + [
        "MPI_Comm_rank",
        "MPI_Comm_size",
        "MPI_Wtime",
        "MPI_Send",
        "MPI_Recv",
        "MPI_Sendrecv",
        "compute_units",
        TICK,
        TOCK,
        "printf",
        "fread",
        "fwrite",
        "fopen",
        "fclose",
        "rand",
        "srand",
        "clock",
        "gethostname",
    ]
)


def _truthy(value) -> bool:
    return bool(value)


def _binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return 0
        if isinstance(left, int) and isinstance(right, int):
            return left // right if (left >= 0) == (right >= 0) else -((-left) // right)
        return left / right
    if op == "%":
        return left % right if right != 0 else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&&":
        return 1 if (left and right) else 0
    if op == "||":
        return 1 if (left or right) else 0
    raise InterpError(f"unknown operator {op!r}")
