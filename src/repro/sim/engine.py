"""Rendezvous engine: coordinates the per-rank interpreters.

All MPI operations in the mini language are blocking, so the simulation
reduces to a rendezvous protocol: run every rank until it blocks on an MPI
request (pure computation advances each rank's private clock
independently), then resolve matching requests — collectives complete when
every rank has arrived; point-to-point operations complete when both ends
have arrived — and resume the participants at the completion time.  If no
request can be resolved while ranks are still blocked, the program has
deadlocked and the engine raises.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.frontend import ast_nodes as A
from repro.instrument.rewrite import SensorInfo
from repro.sim.faults import Fault
from repro.sim.hooks import NullHooks, RuntimeHooks
from repro.sim.interp import MpiRequest, RankInterp
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel


@dataclass(slots=True)
class RankResult:
    rank: int
    finish_time: float
    total_work: float
    sensor_records: int


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulated run."""

    ranks: list[RankResult] = field(default_factory=list)
    total_time: float = 0.0
    mpi_matches: int = 0

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def finish_times(self) -> list[float]:
        return [r.finish_time for r in self.ranks]


@dataclass(slots=True)
class _Blocked:
    request: MpiRequest
    gen: object


class Simulator:
    """Runs one program on one machine configuration."""

    def __init__(
        self,
        module: A.Module,
        machine: MachineConfig,
        faults: tuple[Fault, ...] | list[Fault] = (),
        sensors: dict[int, SensorInfo] | None = None,
        entry: str = "main",
        externs=None,
    ) -> None:
        self.module = module
        self.machine = machine
        self.faults = tuple(faults)
        self.sensors = sensors or {}
        self.entry = entry
        self.externs = externs
        self.network = NetworkModel(machine=machine, faults=self.faults)

    def run(self, hooks: RuntimeHooks | None = None) -> SimResult:
        hooks = hooks or NullHooks()
        n = self.machine.n_ranks
        hooks.on_program_start(n)
        shared_memo: dict[int, bool] = {}
        interps = [
            RankInterp(
                module=self.module,
                rank=rank,
                n_ranks=n,
                machine=self.machine,
                faults=self.faults,
                hooks=hooks,
                sensors=self.sensors,
                entry=self.entry,
                shared_has_call=shared_memo,
                externs=self.externs,
            )
            for rank in range(n)
        ]
        gens = [interp.run() for interp in interps]

        blocked: dict[int, _Blocked] = {}
        finished: set[int] = set()
        matches = 0

        # Ranks whose generator should be advanced (value to send in).
        runnable: deque[tuple[int, float | None]] = deque((r, None) for r in range(n))

        while runnable or blocked:
            while runnable:
                rank, send_value = runnable.popleft()
                gen = gens[rank]
                try:
                    request = gen.send(send_value) if send_value is not None else next(gen)
                except StopIteration:
                    finished.add(rank)
                    continue
                blocked[rank] = _Blocked(request=request, gen=gen)
            if not blocked:
                break
            resolved = self._resolve(blocked)
            if not resolved:
                pending = {r: (b.request.op, b.request.peer) for r, b in blocked.items()}
                raise SimulationError(
                    f"MPI deadlock: {len(blocked)} rank(s) blocked, none resolvable: "
                    f"{dict(list(pending.items())[:8])}"
                )
            matches += 1
            for rank, completion in resolved:
                del blocked[rank]
                runnable.append((rank, completion))

        result = SimResult(mpi_matches=matches)
        for interp in interps:
            result.ranks.append(
                RankResult(
                    rank=interp.rank,
                    finish_time=interp.clock.now,
                    total_work=interp.total_work,
                    sensor_records=interp.sensor_record_count,
                )
            )
        result.total_time = max((r.finish_time for r in result.ranks), default=0.0)
        return result

    # -- request resolution -------------------------------------------------

    def _resolve(self, blocked: dict[int, _Blocked]) -> list[tuple[int, float]]:
        """Find one resolvable group and return [(rank, completion)].

        Collectives need all ranks; p2p needs both ends.  One group per call
        keeps the engine simple; the outer loop re-enters until quiescent.
        """
        n = self.machine.n_ranks

        # Collective: every rank blocked on the same collective op.
        if len(blocked) == n:
            ops = {b.request.op for b in blocked.values()}
            if len(ops) == 1 and next(iter(ops)) not in ("send", "recv", "sendrecv"):
                op = next(iter(ops))
                arrive = max(b.request.arrive for b in blocked.values())
                size = max(b.request.size for b in blocked.values())
                cost = self.network.collective(op, arrive, size, n)
                completion = arrive + cost
                return [(rank, completion) for rank in list(blocked)]

        # Point-to-point matching.
        for rank, entry in blocked.items():
            req = entry.request
            if req.op == "send":
                peer_entry = blocked.get(req.peer)
                if peer_entry and peer_entry.request.op == "recv" and peer_entry.request.peer == rank:
                    return self._complete_p2p(rank, req, req.peer, peer_entry.request)
            elif req.op == "sendrecv":
                if req.peer == rank:
                    # Self-exchange completes locally.
                    return [(rank, req.arrive + self.network.p2p(req.arrive, req.size))]
                resolved = self._try_sendrecv(rank, blocked)
                if resolved:
                    return resolved
        return []

    def _try_sendrecv(self, rank: int, blocked: dict[int, _Blocked]) -> list[tuple[int, float]]:
        """Resolve the sendrecv exchange group containing ``rank``.

        ``MPI_Sendrecv(dest, n)`` sends to ``dest`` and receives from
        whichever rank targets us.  An exchange pattern (pair, ring, or any
        permutation) can only complete as a unit: each participant needs
        both its destination and its source posted, and completing one rank
        alone would strand its neighbours.  We therefore compute the stable
        set — pending sendrecvs iteratively pruned of members with a
        missing destination or source — and complete every member of it.
        Per-rank completion is pinned at the latest arrival among itself,
        its destination and its source, which propagates skew around the
        ring exactly like a real exchange.
        """
        pending = {
            r: e.request for r, e in blocked.items() if e.request.op == "sendrecv"
        }
        if rank not in pending:
            return []
        # Iteratively prune until stable.
        changed = True
        while changed:
            changed = False
            sources = {req.peer for req in pending.values()}
            for r in list(pending):
                req = pending[r]
                if req.peer not in pending or r not in sources:
                    del pending[r]
                    changed = True
        if rank not in pending:
            return []
        source_of: dict[int, int] = {}
        for r, req in pending.items():
            source_of[req.peer] = r
        out: list[tuple[int, float]] = []
        for r, req in pending.items():
            src = source_of[r]
            arrive = max(req.arrive, pending[req.peer].arrive, pending[src].arrive)
            cost = self.network.p2p(arrive, max(req.size, pending[src].size))
            out.append((r, arrive + cost))
        return out

    def _complete_p2p(
        self, rank_a: int, req_a: MpiRequest, rank_b: int, req_b: MpiRequest
    ) -> list[tuple[int, float]]:
        arrive = max(req_a.arrive, req_b.arrive)
        size = max(req_a.size, req_b.size)
        cost = self.network.p2p(arrive, size)
        completion = arrive + cost
        return [(rank_a, completion), (rank_b, completion)]
