"""Rendezvous engine: coordinates the per-rank interpreters.

All MPI operations in the mini language are blocking, so the simulation
reduces to a rendezvous protocol: run every rank until it blocks on an MPI
request (pure computation advances each rank's private clock
independently), then resolve matching requests — collectives complete when
every rank has arrived; point-to-point operations complete when both ends
have arrived — and resume the participants at the completion time.  If no
request can be resolved while ranks are still blocked, the program has
deadlocked and the engine raises.

Matching is *indexed* rather than scanned: a send (resp. recv) checks one
``(src, dst)`` hash slot for its partner at the moment it blocks, and each
collective keeps a counter of arrived ranks, so a rendezvous round costs
O(participants) instead of the O(n²) of re-scanning every blocked rank per
match.  Sendrecv exchange groups (rings and permutations) still need the
stable-set computation, but it runs at most once per drain of the runnable
queue instead of once per blocked rank.

Completion times are pure functions of the participating requests (arrival
times and sizes), and every request has a unique partner or group, so the
resolution *order* — which differs from the old scanning engine — cannot
change any rank's clock, the match count, or any hook payload.

The interpreter tier is selectable: ``engine="bytecode"`` (default) runs
the compiled register VM (:mod:`repro.sim.bytecode`); ``engine="ast"``
runs the tree-walking reference interpreter; ``engine="lockstep"`` runs
the SIMD-over-ranks vectorized VM (:mod:`repro.sim.lockstep`), which
fetches each instruction once for the whole fused rank batch and drains
diverging ranks onto per-rank bytecode interpreters.  All tiers produce
bit-identical results; the AST tier is kept as the executable
specification.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.frontend import ast_nodes as A
from repro.instrument.rewrite import SensorInfo
from repro.obs import NULL_OBS, Obs
from repro.sim.faults import Fault
from repro.sim.hooks import NullHooks, RuntimeHooks
from repro.sim.interp import MpiRequest, RankInterp
from repro.sim.machine import MachineConfig
from repro.sim.network import NetworkModel

_P2P_OPS = ("send", "recv", "sendrecv")

#: rank count at and above which ``engine="auto"`` picks the lockstep
#: tier.  BENCH_interp.json: at 8 ranks lockstep is a net slowdown over
#: bytecode (CG 0.95x uninstrumented, LULESH 0.56x) because batch setup
#: and divergence draining dominate narrow lanes; from 32 ranks up every
#: measured workload is >1x and the gap widens with width.  The
#: crossover is pinned between those measured points.
AUTO_LOCKSTEP_MIN_RANKS = 16


def resolve_engine(engine: str, n_ranks: int) -> str:
    """Resolve the ``"auto"`` interpreter tier for a rank count.

    ``"auto"`` maps to ``"bytecode"`` below
    :data:`AUTO_LOCKSTEP_MIN_RANKS` ranks and ``"lockstep"`` at or above
    it; any concrete tier name passes through unchanged.  All tiers are
    bit-identical, so auto-selection can only change wall-clock speed.
    """
    if engine != "auto":
        return engine
    return "lockstep" if n_ranks >= AUTO_LOCKSTEP_MIN_RANKS else "bytecode"


@dataclass(slots=True)
class RankResult:
    rank: int
    finish_time: float
    total_work: float
    sensor_records: int


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulated run."""

    ranks: list[RankResult] = field(default_factory=list)
    total_time: float = 0.0
    mpi_matches: int = 0

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def finish_times(self) -> list[float]:
        return [r.finish_time for r in self.ranks]


class Simulator:
    """Runs one program on one machine configuration."""

    def __init__(
        self,
        module: A.Module,
        machine: MachineConfig,
        faults: tuple[Fault, ...] | list[Fault] = (),
        sensors: dict[int, SensorInfo] | None = None,
        entry: str = "main",
        externs=None,
        engine: str = "bytecode",
        obs: Obs | None = None,
        probe_control=None,
    ) -> None:
        if engine not in ("bytecode", "ast", "lockstep", "auto"):
            raise ValueError(
                f"unknown engine {engine!r} (bytecode|ast|lockstep|auto)"
            )
        engine = resolve_engine(engine, machine.n_ranks)
        self.module = module
        #: optional governor :class:`~repro.runtime.governor.SensorControlTable`
        #: consulted per probe execution; ``None`` keeps probes unconditional
        self.probe_control = probe_control
        self.machine = machine
        self.faults = tuple(faults)
        self.sensors = sensors or {}
        self.entry = entry
        self.externs = externs
        self.engine = engine
        self.obs = obs or NULL_OBS
        self.network = NetworkModel(machine=machine, faults=self.faults)
        self._program_code = None  # compiled lazily, shared across runs/ranks
        self._lockstep_runner = None  # set per run when engine="lockstep"

    # -- interpreter construction -------------------------------------------

    def _compiled_program(self):
        if self._program_code is None:
            from repro.sim.bytecode import compile_module

            externs = self.externs
            if externs is None:
                from repro.sensors.extern import default_extern_registry

                externs = default_extern_registry()
            with self.obs.tracer.span("sim.compile_bytecode"):
                self._program_code = compile_module(self.module, externs)
        return self._program_code

    def _build_interps(self, hooks: RuntimeHooks) -> list:
        n = self.machine.n_ranks
        self._lockstep_runner = None
        if self.engine in ("bytecode", "lockstep"):
            from repro.sim.bytecode import BytecodeInterp

            program = self._compiled_program()
            interps = [
                BytecodeInterp(
                    program=program,
                    module=self.module,
                    rank=rank,
                    n_ranks=n,
                    machine=self.machine,
                    faults=self.faults,
                    hooks=hooks,
                    sensors=self.sensors,
                    entry=self.entry,
                    externs=self.externs,
                    probe_control=self.probe_control,
                )
                for rank in range(n)
            ]
            if self.engine == "bytecode":
                return interps
            from repro.sim.lockstep import LockstepRunner

            self._lockstep_runner = LockstepRunner(interps, hooks, self.obs)
            return self._lockstep_runner.lanes()
        shared_memo: dict[int, bool] = {}
        return [
            RankInterp(
                module=self.module,
                rank=rank,
                n_ranks=n,
                machine=self.machine,
                faults=self.faults,
                hooks=hooks,
                sensors=self.sensors,
                entry=self.entry,
                shared_has_call=shared_memo,
                externs=self.externs,
                probe_control=self.probe_control,
            )
            for rank in range(n)
        ]

    # -- main loop ----------------------------------------------------------

    def run(self, hooks: RuntimeHooks | None = None) -> SimResult:
        tracer = self.obs.tracer
        run_span = tracer.span("sim.run", engine=self.engine, n_ranks=self.machine.n_ranks)
        try:
            result, rounds = self._run_loop(hooks or NullHooks())
        except BaseException:
            # Close the span on the failure path too (deadlocks, program
            # errors surfacing from an interpreter) so the tracer's stack
            # stays well-formed for whoever catches the exception.
            run_span.set("failed", True)
            tracer.exit(run_span)
            raise
        if tracer.enabled:
            # Per-rank virtual-time spans on the sim track: one leaf per
            # rank under sim.run, timestamped by the rank's own clock.
            for r in result.ranks:
                tracer.emit(
                    "sim.rank",
                    0.0,
                    r.finish_time,
                    rank=r.rank,
                    sensor_records=r.sensor_records,
                )
        run_span.set("mpi_matches", result.mpi_matches)
        run_span.set("rounds", rounds)
        tracer.exit(run_span)
        metrics = self.obs.metrics
        metrics.counter("sim.mpi_matches").inc(result.mpi_matches)
        metrics.counter("sim.rendezvous_rounds").inc(rounds)
        metrics.counter("sim.ranks_finished").inc(len(result.ranks))
        return result

    def _run_loop(self, hooks: RuntimeHooks) -> tuple[SimResult, int]:
        n = self.machine.n_ranks
        hooks.on_program_start(n)
        with self.obs.tracer.span("sim.build_interps"):
            interps = self._build_interps(hooks)
        gens = [interp.run() for interp in interps]
        network = self.network
        runner = self._lockstep_runner
        rounds = 0

        blocked: dict[int, MpiRequest] = {}
        finished: set[int] = set()
        matches = 0

        # Indexed matching state.
        coll_count: dict[str, int] = {}
        send_index: dict[tuple[int, int], int] = {}  # (src, dst) -> src rank
        recv_index: dict[tuple[int, int], int] = {}  # (src, dst) -> dst rank
        n_sendrecv = 0

        # Resolved groups awaiting resumption, and ranks ready to advance.
        groups: deque[list[tuple[int, float]]] = deque()
        runnable: deque[tuple[int, float | None]] = deque((r, None) for r in range(n))

        while True:
            rounds += 1
            while runnable:
                rank, send_value = runnable.popleft()
                gen = gens[rank]
                try:
                    request = gen.send(send_value) if send_value is not None else next(gen)
                except StopIteration:
                    finished.add(rank)
                    continue
                blocked[rank] = request
                op = request.op
                if op == "send":
                    key = (rank, request.peer)
                    other = recv_index.pop(key, None)
                    if other is None:
                        send_index[key] = rank
                    else:
                        groups.append(
                            self._complete_p2p(rank, request, other, blocked[other])
                        )
                elif op == "recv":
                    key = (request.peer, rank)
                    other = send_index.pop(key, None)
                    if other is None:
                        recv_index[key] = rank
                    else:
                        groups.append(
                            self._complete_p2p(other, blocked[other], rank, request)
                        )
                elif op == "sendrecv":
                    if request.peer == rank:
                        # Self-exchange completes locally.
                        groups.append(
                            [(rank, request.arrive + network.p2p(request.arrive, request.size))]
                        )
                    else:
                        n_sendrecv += 1
                else:  # collective
                    count = coll_count.get(op, 0) + 1
                    if count == n:
                        # Every rank is blocked on this collective.
                        coll_count[op] = 0
                        arrive = max(r.arrive for r in blocked.values())
                        size = max(r.size for r in blocked.values())
                        completion = arrive + network.collective(op, arrive, size, n)
                        groups.append([(r, completion) for r in blocked])
                    else:
                        coll_count[op] = count

            if not groups and n_sendrecv:
                group = self._resolve_sendrecv(blocked)
                if group:
                    n_sendrecv -= len(group)
                    groups.append(group)
            if not groups:
                if blocked:
                    self._raise_deadlock(blocked, finished)
                break
            while groups:
                matches += 1
                group = groups.popleft()
                if runner is not None:
                    # Let a fused lockstep batch absorb every completion in
                    # the group before any member is resumed; this is also
                    # where fully-drained batches re-fuse.
                    runner.on_group(group)
                for rank, completion in group:
                    del blocked[rank]
                    runnable.append((rank, completion))

        if runner is not None:
            runner.flush_counters()
        result = SimResult(mpi_matches=matches)
        for interp in interps:
            result.ranks.append(
                RankResult(
                    rank=interp.rank,
                    finish_time=interp.clock.now,
                    total_work=interp.total_work,
                    sensor_records=interp.sensor_record_count,
                )
            )
        result.total_time = max((r.finish_time for r in result.ranks), default=0.0)
        return result, rounds

    # -- request resolution -------------------------------------------------

    def _complete_p2p(
        self, rank_a: int, req_a: MpiRequest, rank_b: int, req_b: MpiRequest
    ) -> list[tuple[int, float]]:
        arrive = max(req_a.arrive, req_b.arrive)
        size = max(req_a.size, req_b.size)
        completion = arrive + self.network.p2p(arrive, size)
        return [(rank_a, completion), (rank_b, completion)]

    def _resolve_sendrecv(self, blocked: dict[int, MpiRequest]) -> list[tuple[int, float]]:
        """Resolve the stable set of pending sendrecv exchanges.

        ``MPI_Sendrecv(dest, n)`` sends to ``dest`` and receives from
        whichever rank targets us.  An exchange pattern (pair, ring, or any
        permutation) can only complete as a unit: each participant needs
        both its destination and its source posted, and completing one rank
        alone would strand its neighbours.  We therefore compute the stable
        set — pending sendrecvs iteratively pruned of members with a
        missing destination or source — and complete every member of it.
        Per-rank completion is pinned at the latest arrival among itself,
        its destination and its source, which propagates skew around the
        ring exactly like a real exchange.
        """
        pending = {r: req for r, req in blocked.items() if req.op == "sendrecv"}
        changed = True
        while changed:
            changed = False
            sources = {req.peer for req in pending.values()}
            for r in list(pending):
                req = pending[r]
                if req.peer not in pending or r not in sources:
                    del pending[r]
                    changed = True
        if not pending:
            return []
        source_of: dict[int, int] = {}
        for r, req in pending.items():
            source_of[req.peer] = r
        out: list[tuple[int, float]] = []
        for r, req in pending.items():
            src = source_of[r]
            arrive = max(req.arrive, pending[req.peer].arrive, pending[src].arrive)
            cost = self.network.p2p(arrive, max(req.size, pending[src].size))
            out.append((r, arrive + cost))
        return out

    def _raise_deadlock(
        self, blocked: dict[int, MpiRequest], finished: set[int]
    ) -> None:
        pending = {r: (blocked[r].op, blocked[r].peer) for r in sorted(blocked)}
        message = (
            f"MPI deadlock: {len(blocked)} rank(s) blocked, none resolvable: "
            f"{dict(list(pending.items())[:8])}"
        )
        if finished:
            done = sorted(finished)
            shown = ", ".join(str(r) for r in done[:16])
            if len(done) > 16:
                shown += ", ..."
            message += (
                f"; {len(done)} rank(s) already finished ({shown}) — a rank "
                "exiting before a collective is the usual cause"
            )
        raise SimulationError(message)
