"""OS and system background-noise models (§5.1 context).

Two layers, both deterministic given the machine seed:

* **Fine-grained jitter** — per-time-slice multiplicative speed variation
  modelling cache effects, SMT interference and short OS activity.  This is
  what makes 10 µs-resolution sensor readings look chaotic (Fig. 12) while
  1000 µs averages are smooth.
* **Periodic interrupts** — the classic OS timer tick / daemon activity:
  every ``period`` µs the node loses ``duration`` µs of compute entirely.

Episode-style disturbances (contention from an injected noiser, network
congestion, a bad node) are *faults*, not noise — see
:mod:`repro.sim.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class NoiseConfig:
    """Background-noise parameters for every node of a machine."""

    #: std-dev of the per-slice lognormal speed jitter (0 disables)
    jitter_sigma: float = 0.08
    #: jitter correlation slice length (µs): speed is resampled per slice
    jitter_slice_us: float = 50.0
    #: OS interrupt period (µs); 0 disables periodic interrupts
    interrupt_period_us: float = 4000.0
    #: compute lost per interrupt (µs)
    interrupt_duration_us: float = 18.0
    #: probability per millisecond of a long daemon spike
    spike_rate_per_ms: float = 0.003
    #: daemon spike duration (µs)
    spike_duration_us: float = 300.0


# Noise draws are pure functions of (node seed, slice index) — there is no
# stream state — so repeated queries of the same slice (every few work units
# while a rank computes through it) can be served from a cache instead of
# re-building a numpy Generator each time.  Shared across NodeNoise
# instances: ranks co-located on a node draw identical noise and hit the
# same entries.
_JITTER_CACHE: dict[tuple[int, int, float], float] = {}
_SPIKE_CACHE: dict[tuple[int, int], tuple[float, float]] = {}


class NodeNoise:
    """Deterministic noise stream for one node.

    The jitter multiplier for slice ``k`` is a hash-seeded lognormal draw,
    so queries are random-access (no state to replay) and two runs over the
    same machine see identical noise.
    """

    def __init__(self, config: NoiseConfig, seed: int, node_id: int) -> None:
        self.config = config
        self._seed = np.uint64((seed * 1_000_003 + node_id) & 0xFFFFFFFF)

    def _slice_rng(self, slice_index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([int(self._seed), int(slice_index) & 0x7FFFFFFFFFFF])
        )

    def speed_multiplier(self, time_us: float) -> float:
        """Instantaneous speed multiplier (<=1 mostly) at ``time_us``."""
        cfg = self.config
        mult = 1.0
        if cfg.jitter_sigma > 0:
            k = int(time_us / cfg.jitter_slice_us)
            key = (int(self._seed), k, cfg.jitter_sigma)
            jitter = _JITTER_CACHE.get(key)
            if jitter is None:
                rng = self._slice_rng(k)
                # Lognormal centred slightly below 1: noise only ever slows.
                jitter = min(1.0, float(np.exp(-abs(rng.normal(0.0, cfg.jitter_sigma)))))
                _JITTER_CACHE[key] = jitter
            mult *= jitter
        if cfg.spike_rate_per_ms > 0:
            ms = int(time_us / 1000.0)
            key = (int(self._seed), ms)
            draws = _SPIKE_CACHE.get(key)
            if draws is None:
                rng = self._slice_rng(1_000_000_000 + ms)
                draws = (float(rng.random()), float(rng.random()))
                _SPIKE_CACHE[key] = draws
            if draws[0] < cfg.spike_rate_per_ms:
                start = ms * 1000.0 + draws[1] * 1000.0
                if start <= time_us < start + cfg.spike_duration_us:
                    mult *= 0.25
        return mult

    def interrupt_loss(self, start_us: float, end_us: float) -> float:
        """Total compute time (µs) lost to periodic interrupts in a window."""
        cfg = self.config
        if cfg.interrupt_period_us <= 0 or end_us <= start_us:
            return 0.0
        first = int(start_us // cfg.interrupt_period_us) + 1
        last = int(end_us // cfg.interrupt_period_us)
        n = max(0, last - first + 1)
        return n * cfg.interrupt_duration_us
